package linnos

import (
	"testing"

	"guardrails/internal/featurestore"
	"guardrails/internal/kernel"
	"guardrails/internal/storage"
	"guardrails/internal/trace"
)

// testArray builds a two-replica array with write-pressure GC.
func testArray(t *testing.T, seed int64) *storage.Array {
	t.Helper()
	mk := func(name string, s int64) *storage.Device {
		cfg := storage.DefaultDeviceConfig(name, s)
		cfg.BackgroundGCRate = 0.5
		d, err := storage.NewDevice(cfg)
		if err != nil {
			t.Fatal(err)
		}
		return d
	}
	arr, err := storage.NewArray(mk("primary", seed), mk("replica", seed+1))
	if err != nil {
		t.Fatal(err)
	}
	return arr
}

func calmWorkload(seed int64) *MixedWorkload {
	keys := trace.NewZipfKeys(trace.Split(seed, "keys"), 1<<16, 1.2, true)
	return NewMixedWorkload(seed, 20000, 0.05, keys)
}

func TestFeaturesShapeAndScaling(t *testing.T) {
	arr := testArray(t, 1)
	d := arr.Replica(0)
	f := Features(d, 0)
	if len(f) != NumFeatures {
		t.Fatalf("features = %d, want %d", len(f), NumFeatures)
	}
	for i, v := range f {
		if v != 0 {
			t.Errorf("fresh device feature %d = %v", i, v)
		}
	}
	// After a slow access the latency features are non-zero and clipped.
	for i := 0; i < 70; i++ {
		d.Submit(0, 0, true) // hammer one chip into GC
	}
	d.Submit(0, 0, false)
	f = Features(d, 0)
	if f[1] == 0 {
		t.Error("recent latency feature not populated")
	}
	for _, v := range f {
		if v < 0 || v > 4 {
			t.Errorf("feature out of [0,4]: %v", v)
		}
	}
}

func TestClassifierTrainsOnCalmWorkload(t *testing.T) {
	arr := testArray(t, 10)
	wl := calmWorkload(11)
	c, samples, err := TrainedClassifier(arr, wl, 40000, kernel.Millisecond, 12, 0.85)
	if err != nil {
		t.Fatal(err)
	}
	if len(samples) < 30000 {
		t.Fatalf("samples = %d", len(samples))
	}
	m := Confusion(c, samples)
	if m.TrueSlow == 0 {
		t.Error("model never predicts slow correctly")
	}
	if m.FalseSubmitRate() > 0.05 {
		t.Errorf("in-distribution false submit rate = %v", m.FalseSubmitRate())
	}
}

func TestClassifierTrainValidation(t *testing.T) {
	c := NewClassifier(1)
	if _, err := c.Train(nil); err == nil {
		t.Error("empty training set should error")
	}
	oneClass := []Sample{{Features: make([]float64, NumFeatures), Slow: false}}
	if _, err := c.Train(oneClass); err == nil {
		t.Error("single-class set should error")
	}
	badWidth := []Sample{
		{Features: []float64{1}, Slow: false},
		{Features: []float64{1}, Slow: true},
	}
	if _, err := c.Train(badWidth); err == nil {
		t.Error("bad feature width should error")
	}
}

func TestQuantizedClassifierAgrees(t *testing.T) {
	arr := testArray(t, 20)
	wl := calmWorkload(21)
	c, samples, err := TrainedClassifier(arr, wl, 30000, kernel.Millisecond, 22, 0.85)
	if err != nil {
		t.Fatal(err)
	}
	if c.Quantized() {
		t.Fatal("quantization should be off by default")
	}
	floatPreds := make([]bool, 0, 2000)
	for i := 0; i < 2000 && i < len(samples); i++ {
		floatPreds = append(floatPreds, c.PredictSlow(samples[i].Features))
	}
	if err := c.EnableQuantized(); err != nil {
		t.Fatal(err)
	}
	if !c.Quantized() {
		t.Fatal("quantization flag not set")
	}
	agree := 0
	for i := range floatPreds {
		if c.PredictSlow(samples[i].Features) == floatPreds[i] {
			agree++
		}
	}
	if frac := float64(agree) / float64(len(floatPreds)); frac < 0.97 {
		t.Errorf("quantized agreement = %v", frac)
	}
}

func TestEngineConfigValidation(t *testing.T) {
	arr := testArray(t, 30)
	k := kernel.New()
	st := featurestore.New()
	bad := []Config{
		{SlowThreshold: 0, RevokeTimeout: 1, RateWindow: 1, MAWindow: 1},
		{SlowThreshold: 1, RevokeTimeout: 0, RateWindow: 1, MAWindow: 1},
		{SlowThreshold: 1, RevokeTimeout: 1, RateWindow: 0, MAWindow: 1},
		{SlowThreshold: 1, RevokeTimeout: 1, RateWindow: 1, MAWindow: 0},
	}
	for i, cfg := range bad {
		if _, err := NewEngine(k, st, arr, nil, cfg); err == nil {
			t.Errorf("config %d should be rejected", i)
		}
	}
}

func TestBaselineHedgesSlowReads(t *testing.T) {
	arr := testArray(t, 40)
	k := kernel.New()
	st := featurestore.New()
	e, err := NewEngine(k, st, arr, nil, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if e.MLEnabled() {
		t.Error("no-model engine claims ML")
	}
	// Force GC on chip 0 of the primary, then read it.
	for i := 0; i < 70; i++ {
		arr.Replica(0).Submit(0, 0, true)
	}
	// Read while the write queue + GC still back the chip up.
	lat, route := e.Read(5*kernel.Millisecond, 0)
	if route != RouteHedged {
		t.Fatalf("route = %v, want hedged", route)
	}
	// Hedged latency is bounded: timeout + replica service (+ jitter),
	// far below the primary's multi-ms backlog.
	if lat > 2*kernel.Millisecond {
		t.Errorf("hedged latency = %v, want bounded", lat)
	}
	if e.Stats().Hedged != 1 {
		t.Errorf("hedged count = %d", e.Stats().Hedged)
	}
	// A fast read takes the primary.
	_, route = e.Read(100*kernel.Millisecond, 12345)
	if route != RoutePrimary {
		t.Errorf("fast read route = %v", route)
	}
}

func TestMLEnabledKnobSwitchesPath(t *testing.T) {
	arr := testArray(t, 50)
	k := kernel.New()
	st := featurestore.New()
	wl := calmWorkload(51)
	scratch := testArray(t, 52)
	model, _, err := TrainedClassifier(scratch, wl, 30000, kernel.Millisecond, 53, 0.8)
	if err != nil {
		t.Fatal(err)
	}
	e, err := NewEngine(k, st, arr, model, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if !e.MLEnabled() {
		t.Fatal("model engine should start ML-enabled")
	}
	e.Read(0, 1)
	if e.Stats().MLRouted != 1 {
		t.Error("read not ML-routed")
	}
	st.Save(KeyMLEnabled, 0)
	if e.MLEnabled() {
		t.Error("knob did not disable ML")
	}
	e.Read(kernel.Millisecond, 2)
	if e.Stats().MLRouted != 1 {
		t.Error("disabled ML still routed")
	}
	if e.Stats().Reads != 2 {
		t.Errorf("reads = %d", e.Stats().Reads)
	}
}

func TestEnginePublishesStoreKeysAndHook(t *testing.T) {
	arr := testArray(t, 60)
	k := kernel.New()
	st := featurestore.New()
	e, err := NewEngine(k, st, arr, nil, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	var hookLats []float64
	k.Attach(HookIOComplete, func(_ *kernel.Kernel, _ string, args []float64) {
		hookLats = append(hookLats, args[0])
	})
	e.Read(0, 1)
	e.Read(kernel.Millisecond, 2)
	if len(hookLats) != 2 {
		t.Fatalf("hook fired %d times", len(hookLats))
	}
	if st.Load(KeyLatencyMA) == 0 {
		t.Error("latency MA not published")
	}
}

func TestDistributionShiftRaisesFalseSubmits(t *testing.T) {
	// The heart of Figure 2: train on a calm phase, then shift to a
	// write-heavy phase and watch the false-submit rate cross the 5%
	// guardrail threshold.
	scratch := testArray(t, 70)
	trainWL := calmWorkload(71)
	model, _, err := TrainedClassifier(scratch, trainWL, 40000, kernel.Millisecond, 72, 0.82)
	if err != nil {
		t.Fatal(err)
	}

	arr := testArray(t, 73)
	k := kernel.New()
	st := featurestore.New()
	e, err := NewEngine(k, st, arr, model, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	// Calm phase on the live array.
	wl := calmWorkload(74)
	for i := 0; i < 30000; i++ {
		op := wl.Next()
		if op.Write {
			e.Write(op.At, op.LBA)
		} else {
			e.Read(op.At, op.LBA)
		}
	}
	calmRate := st.Load(KeyFalseSubmitRate)
	if calmRate > 0.05 {
		t.Fatalf("calm-phase false submit rate = %v, want <= 0.05", calmRate)
	}

	// Shift: write-heavy, bursty queues the model never saw.
	wl.SetWriteFraction(0.4)
	for i := 0; i < 30000; i++ {
		op := wl.Next()
		if op.Write {
			e.Write(op.At, op.LBA)
		} else {
			e.Read(op.At, op.LBA)
		}
	}
	shiftRate := st.Load(KeyFalseSubmitRate)
	if shiftRate <= 0.05 {
		t.Errorf("post-shift false submit rate = %v, want > 0.05 (calm was %v)", shiftRate, calmRate)
	}
	if shiftRate <= calmRate {
		t.Errorf("shift did not raise the rate: %v -> %v", calmRate, shiftRate)
	}
}

func TestRouteString(t *testing.T) {
	if RoutePrimary.String() != "primary" || RouteFailover.String() != "failover" || RouteHedged.String() != "hedged" {
		t.Error("route names wrong")
	}
}

func TestSliceWorkloadReplay(t *testing.T) {
	gen := NewMixedWorkload(5, 1000, 0.2, trace.NewUniformKeys(6, 100))
	recorded := Record(gen, 50)
	w := NewSliceWorkload(recorded)
	if w.Remaining() != 50 {
		t.Fatalf("remaining = %d", w.Remaining())
	}
	for i, want := range recorded {
		if got := w.Next(); got != want {
			t.Fatalf("op %d: %+v != %+v", i, got, want)
		}
	}
	if w.Remaining() != 0 {
		t.Errorf("remaining after drain = %d", w.Remaining())
	}
	// Replay determinism: a second replay yields the identical stream.
	w2 := NewSliceWorkload(recorded)
	for i := 0; i < 50; i++ {
		if w2.Next() != recorded[i] {
			t.Fatal("replay diverged")
		}
	}
	// Exhausted trace keeps time moving forward.
	prev := recorded[len(recorded)-1].At
	for i := 0; i < 5; i++ {
		op := w.Next()
		if op.At <= prev {
			t.Fatal("time stalled after trace end")
		}
		prev = op.At
	}
	defer func() {
		if recover() == nil {
			t.Error("empty trace should panic")
		}
	}()
	NewSliceWorkload(nil)
}

func TestWorkloadValidationAndShift(t *testing.T) {
	keys := trace.NewUniformKeys(1, 100)
	mustPanic := func(name string, f func()) {
		defer func() {
			if recover() == nil {
				t.Errorf("%s should panic", name)
			}
		}()
		f()
	}
	mustPanic("zero-rate", func() { NewMixedWorkload(1, 0, 0.1, keys) })
	mustPanic("bad-frac", func() { NewMixedWorkload(1, 100, 1.0, keys) })
	w := NewMixedWorkload(1, 1000, 0.1, keys)
	mustPanic("set-zero-rate", func() { w.SetRate(0) })
	mustPanic("set-bad-frac", func() { w.SetWriteFraction(-0.1) })

	prev := kernel.Time(0)
	writes := 0
	for i := 0; i < 1000; i++ {
		op := w.Next()
		if op.At <= prev {
			t.Fatal("ops must be strictly ordered")
		}
		prev = op.At
		if op.Write {
			writes++
		}
		if op.LBA >= 100 {
			t.Fatal("key out of universe")
		}
	}
	if writes < 50 || writes > 200 {
		t.Errorf("writes = %d, want ~100", writes)
	}
	if w.Now() != prev {
		t.Error("Now() mismatch")
	}
	// Rate shift: gaps shrink.
	w.SetRate(100000)
	start := w.Now()
	for i := 0; i < 100; i++ {
		w.Next()
	}
	if gap := w.Now() - start; gap > 10*kernel.Millisecond {
		t.Errorf("post-shift 100 ops took %v", gap)
	}
}
