package linnos

import (
	"testing"

	"guardrails/internal/featurestore"
	"guardrails/internal/kernel"
	"guardrails/internal/storage"
)

// stubPredictor returns scripted predictions in order, then repeats the
// last one.
type stubPredictor struct {
	answers []bool
	i       int
}

func (s *stubPredictor) PredictSlow([]float64) bool {
	if s.i < len(s.answers) {
		v := s.answers[s.i]
		s.i++
		return v
	}
	if len(s.answers) == 0 {
		return false
	}
	return s.answers[len(s.answers)-1]
}

func pathEngine(t *testing.T, pred Predictor, cfg Config) (*Engine, *storage.Array, *featurestore.Store) {
	t.Helper()
	arr := testArray(t, 400)
	k := kernel.New()
	st := featurestore.New()
	e, err := NewEngine(k, st, arr, pred, cfg)
	if err != nil {
		t.Fatal(err)
	}
	return e, arr, st
}

// congest floods chip 0 of the device with writes so the next read on
// lba 0 is slow.
func congest(d *storage.Device) {
	for i := 0; i < 70; i++ {
		d.Submit(0, 0, true)
	}
}

func TestMLPredictedFastStaysOnPrimary(t *testing.T) {
	e, _, _ := pathEngine(t, &stubPredictor{answers: []bool{false}}, DefaultConfig())
	lat, route := e.Read(0, 1)
	if route != RoutePrimary {
		t.Fatalf("route = %v", route)
	}
	// Fast read + one inference cost.
	if lat > 200*kernel.Microsecond {
		t.Errorf("latency = %v", lat)
	}
	s := e.Stats()
	if s.Inferences != 1 || s.Failovers != 0 || s.FalseSubmits != 0 {
		t.Errorf("stats = %+v", s)
	}
}

func TestMLPredictedSlowFailsOverWhenReplicaFast(t *testing.T) {
	e, arr, _ := pathEngine(t, &stubPredictor{answers: []bool{true, false}}, DefaultConfig())
	congest(arr.Replica(0))
	lat, route := e.Read(5*kernel.Millisecond, 0)
	if route != RouteFailover {
		t.Fatalf("route = %v", route)
	}
	// Served from the healthy replica: fast plus two inferences.
	if lat > 500*kernel.Microsecond {
		t.Errorf("failover latency = %v", lat)
	}
	s := e.Stats()
	if s.Inferences != 2 || s.Failovers != 1 {
		t.Errorf("stats = %+v", s)
	}
	// Predicted-slow reads never count as false submits.
	if s.FalseSubmits != 0 {
		t.Errorf("false submits = %d", s.FalseSubmits)
	}
}

func TestMLBothSlowWaitsOnPrimary(t *testing.T) {
	cfg := DefaultConfig()
	cfg.MLSafetyTimeout = 0
	e, arr, st := pathEngine(t, &stubPredictor{answers: []bool{true, true}}, cfg)
	congest(arr.Replica(0))
	lat, route := e.Read(5*kernel.Millisecond, 0)
	if route != RoutePrimary {
		t.Fatalf("route = %v", route)
	}
	if lat < kernel.Millisecond {
		t.Errorf("both-slow read should wait out the backlog, got %v", lat)
	}
	s := e.Stats()
	if s.Failovers != 0 {
		t.Errorf("failovers = %d", s.Failovers)
	}
	// Not a false submit: the model said slow.
	if s.FalseSubmits != 0 || st.Load(KeyFalseSubmitRate) != 0 {
		t.Errorf("false submit accounting wrong: %+v", s)
	}
}

func TestMLFalseSubmitCountsAndHedges(t *testing.T) {
	// Model says fast, chip is congested: with the safety backstop on,
	// the read is revoked at MLSafetyTimeout and finished on the replica.
	cfg := DefaultConfig()
	cfg.MLSafetyTimeout = 2 * kernel.Millisecond
	e, arr, st := pathEngine(t, &stubPredictor{answers: []bool{false}}, cfg)
	congest(arr.Replica(0))
	lat, route := e.Read(5*kernel.Millisecond, 0)
	if route != RoutePrimary {
		t.Fatalf("route = %v", route)
	}
	s := e.Stats()
	if s.FalseSubmits != 1 {
		t.Errorf("false submits = %d", s.FalseSubmits)
	}
	if s.Hedged != 1 {
		t.Errorf("hedged = %d", s.Hedged)
	}
	// Bounded by the fuse plus a replica read, far below the backlog.
	if lat > 4*kernel.Millisecond {
		t.Errorf("hedged false submit latency = %v", lat)
	}
	if st.Load(KeyFalseSubmitRate) != 1 {
		t.Errorf("published rate = %v", st.Load(KeyFalseSubmitRate))
	}
}

func TestMLFalseSubmitUnhedgedEatsFullExposure(t *testing.T) {
	cfg := DefaultConfig()
	cfg.MLSafetyTimeout = 0
	e, arr, _ := pathEngine(t, &stubPredictor{answers: []bool{false}}, cfg)
	congest(arr.Replica(0))
	lat, _ := e.Read(5*kernel.Millisecond, 0)
	if lat < 4*kernel.Millisecond {
		t.Errorf("unhedged false submit should eat the backlog, got %v", lat)
	}
	if e.Stats().Hedged != 0 {
		t.Errorf("hedged = %d", e.Stats().Hedged)
	}
}
