package monitor

import (
	"fmt"

	"guardrails/internal/actions"
	"guardrails/internal/kernel"
	"guardrails/internal/telemetry"
	"guardrails/internal/vm"
)

// The guardrails watch the system; this file watches the guardrails.
// A monitor whose program traps, whose feature reads are corrupt, or
// whose action backends fail must not be allowed to take the system
// down with it — and must not fail silently either. The runtime
// degrades each monitor down an explicit ladder:
//
//	StateActive ──over budget──▶ StateShadow ──window reset──▶ StateActive
//	StateActive ──breaker trip─▶ StateQuarantined ──cooldown/Rearm──▶ StateActive
//
// Every step down the ladder is reported; what a quarantined guardrail
// stops doing is governed by its FaultPolicy.

// State is a monitor's position on the degradation ladder.
type State int

const (
	// StateActive: evaluating normally, actions enabled.
	StateActive State = iota
	// StateShadow: over its overhead budget — still evaluating and
	// counting violations, but actions are suppressed until the next
	// budget window ("degrade before disable").
	StateShadow
	// StateQuarantined: the circuit breaker tripped — evaluation is
	// suspended until the cooldown elapses or Rearm is called.
	StateQuarantined
)

// String names the state.
func (s State) String() string {
	switch s {
	case StateActive:
		return "active"
	case StateShadow:
		return "shadow"
	case StateQuarantined:
		return "quarantined"
	default:
		return fmt.Sprintf("state(%d)", int(s))
	}
}

// FaultPolicy decides what a guardrail's quarantine means for the
// system it was protecting.
type FaultPolicy int

const (
	// FailOpen (the default): a quarantined guardrail simply stops
	// enforcing; the guarded policy keeps running unguarded. Right for
	// advisory guardrails whose actions are worse than no actions.
	FailOpen FaultPolicy = iota
	// FailClosed: losing the guardrail means losing trust in the
	// policy it guards — on quarantine the monitor's Fallback runs
	// (default: dispatch every compiled action once, driving the
	// system to its safe configuration), and Restore runs on rearm.
	// Note that SAVE actions are inlined into the monitor program, not
	// in the compiled action list, so fail-closed guardrails whose
	// safe state is a SAVE should set an explicit Fallback.
	FailClosed
)

// String names the policy.
func (p FaultPolicy) String() string {
	if p == FailClosed {
		return "fail-closed"
	}
	return "fail-open"
}

// FaultInjector is the seam through which a fault-injection plan
// (package faults) reaches the monitor runtime. Every method is called
// on the evaluation path; implementations must be cheap and safe for
// concurrent use. A nil injector (the default) costs one atomic load
// per evaluation.
type FaultInjector interface {
	// EvalFault, when non-nil, aborts the evaluation before the
	// program runs, as if the VM had trapped.
	EvalFault(guardrail string) error
	// LoadFault may replace the value read from a feature-store key
	// (returning the corrupted value and true), e.g. with NaN or a
	// stale snapshot.
	LoadFault(guardrail, key string, value float64) (float64, bool)
	// HelperFault, when non-nil, fails the given helper call, which
	// the VM surfaces as a TrapHelper.
	HelperFault(guardrail string, h vm.HelperID) error
	// ActionFault, when non-nil, fails the dispatch of the named
	// action (e.g. "RETRAIN(linnos)") before its backend runs.
	ActionFault(guardrail, action string) error
}

// State returns the monitor's position on the degradation ladder.
func (m *Monitor) State() State {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.state
}

// Rearm manually returns a quarantined monitor to active duty,
// regardless of any cooldown. It is a no-op unless quarantined.
func (m *Monitor) Rearm() { m.rearm("manual") }

// recordFault counts a monitor fault, surfaces it in the report log
// with a structured note ("monitor fault [<kind>]: ..."), and feeds the
// circuit breaker. kind is a stable marker chaos experiments grep for.
func (m *Monitor) recordFault(kind string, err error) {
	now := m.rt.k.Now()
	m.mu.Lock()
	m.stats.Traps++
	m.mu.Unlock()
	m.rt.Telemetry().Fault(int64(now), m.Name(), kind)
	if rec := m.rt.Provenance(); rec != nil {
		m.provFault(rec, kind, now)
	}
	m.rt.Log.Append(actions.Violation{
		Time: now, Guardrail: m.Name(),
		Note: fmt.Sprintf("monitor fault [%s]: %v", kind, err),
	})
	m.breakerHit(now)
}

// trapKind maps a VM error to its note marker.
func trapKind(err error) string {
	if c := vm.Classify(err); c != vm.TrapNone {
		return c.String() + "-trap"
	}
	return "vm-error"
}

// breakerHit records one fault against the sliding-window circuit
// breaker and quarantines the monitor when the threshold is reached.
func (m *Monitor) breakerHit(now kernel.Time) {
	m.mu.Lock()
	if m.opts.BreakerThreshold <= 0 || m.state == StateQuarantined {
		m.mu.Unlock()
		return
	}
	cutoff := now - m.opts.BreakerWindow
	kept := m.faultTimes[:0]
	for _, t := range m.faultTimes {
		if t >= cutoff {
			kept = append(kept, t)
		}
	}
	m.faultTimes = append(kept, now)
	if len(m.faultTimes) < m.opts.BreakerThreshold {
		m.mu.Unlock()
		return
	}
	m.faultTimes = m.faultTimes[:0]
	m.mu.Unlock()
	m.quarantine(fmt.Sprintf("%d faults within %s", m.opts.BreakerThreshold, m.opts.BreakerWindow))
}

// quarantine trips the breaker: evaluation stops, the event is
// reported, the fail-closed fallback runs, and the cooldown rearm is
// scheduled. Idempotent.
func (m *Monitor) quarantine(reason string) {
	now := m.rt.k.Now()
	m.mu.Lock()
	if m.state == StateQuarantined {
		m.mu.Unlock()
		return
	}
	m.state = StateQuarantined
	m.stats.Quarantines++
	policy := m.opts.OnFault
	cooldown := m.opts.Cooldown
	m.mu.Unlock()
	m.rt.Telemetry().Transition(int64(now), m.Name(), telemetry.KindQuarantine, reason)
	m.rt.Log.Append(actions.Violation{
		Time: now, Guardrail: m.Name(),
		Note: fmt.Sprintf("quarantined (%s): %s", policy, reason),
	})
	if policy == FailClosed {
		if m.opts.Fallback != nil {
			m.opts.Fallback(m)
		} else {
			for i := range m.c.Actions {
				m.dispatchAction(i, nil, now)
			}
		}
	}
	if cooldown > 0 {
		m.rt.k.After(cooldown, func() { m.rearm("cooldown") })
	}
}

// rearm returns a quarantined monitor to active duty.
func (m *Monitor) rearm(how string) {
	m.mu.Lock()
	if m.state != StateQuarantined || !m.enabled {
		m.mu.Unlock()
		return
	}
	m.state = StateActive
	m.stats.Rearms++
	m.faultTimes = m.faultTimes[:0]
	policy := m.opts.OnFault
	m.mu.Unlock()
	m.rt.Telemetry().Transition(int64(m.rt.k.Now()), m.Name(), telemetry.KindRearm, how)
	m.rt.Log.Append(actions.Violation{
		Time: m.rt.k.Now(), Guardrail: m.Name(),
		Note: fmt.Sprintf("rearmed (%s)", how),
	})
	if policy == FailClosed && m.opts.Restore != nil {
		m.opts.Restore(m)
	}
}

// accountBudget charges an evaluation's VM steps against the monitor's
// per-window overhead budget (property P5 turned from accounting into
// enforcement). Over budget demotes to shadow mode; the demotion is
// undone when a fresh window begins.
func (m *Monitor) accountBudget(steps uint64, now kernel.Time) {
	m.mu.Lock()
	if m.opts.StepBudget == 0 {
		m.mu.Unlock()
		return
	}
	epoch := int64(now / m.opts.BudgetWindow)
	if epoch != m.budgetEpoch {
		m.budgetEpoch = epoch
		m.windowSteps = 0
		if m.state == StateShadow {
			m.state = StateActive
			m.stats.ShadowPromotions++
			m.mu.Unlock()
			m.rt.Telemetry().Transition(int64(now), m.Name(), telemetry.KindShadowExit, "budget window reset")
			m.rt.Log.Append(actions.Violation{
				Time: now, Guardrail: m.Name(),
				Note: "budget window reset: promoted from shadow mode",
			})
			m.mu.Lock()
		}
	}
	m.windowSteps += steps
	if m.state == StateActive && m.windowSteps > m.opts.StepBudget {
		m.state = StateShadow
		m.stats.ShadowDemotions++
		used := m.windowSteps
		m.mu.Unlock()
		m.rt.Telemetry().Transition(int64(now), m.Name(), telemetry.KindShadowEnter, "over budget")
		m.rt.Log.Append(actions.Violation{
			Time: now, Guardrail: m.Name(),
			Note: fmt.Sprintf("over budget (%d VM steps > %d per %s): degraded to shadow mode",
				used, m.opts.StepBudget, m.opts.BudgetWindow),
		})
		return
	}
	m.mu.Unlock()
}

// runAction executes one dispatched action with injection, retry, and
// dead-letter semantics. attempt is zero-based; failures retry with
// exponential backoff (RetryBase << attempt) until RetryMax retries
// are spent, then land in the runtime's dead-letter queue. trig is the
// simulated time of the triggering hook; retry notes carry it so a log
// reader can correlate a late retry back to the violation that caused
// it.
func (m *Monitor) runAction(name string, exec func() error, attempt int, trig kernel.Time) {
	var err error
	if inj := m.rt.injector(); inj != nil {
		err = inj.ActionFault(m.Name(), name)
	}
	if err == nil {
		err = exec()
	}
	now := m.rt.k.Now()
	sink := m.rt.Telemetry()
	sink.Action(int64(now), m.Name(), name, attempt, err == nil)
	if err == nil {
		m.provAction(name, "ok", attempt)
		if attempt > 0 {
			m.rt.Log.Append(actions.Violation{
				Time: now, Guardrail: m.Name(),
				Note: fmt.Sprintf("action %s recovered (attempt %d) [triggered at %s]", name, attempt+1, trig),
			})
		}
		return
	}
	m.mu.Lock()
	m.stats.DispatchErrors++
	retryMax := m.opts.RetryMax
	base := m.opts.RetryBase
	m.mu.Unlock()
	m.rt.Log.Append(actions.Violation{
		Time: now, Guardrail: m.Name(),
		Note: fmt.Sprintf("action %s failed (attempt %d) [triggered at %s]: %v", name, attempt+1, trig, err),
	})
	m.breakerHit(now)
	if attempt >= retryMax {
		m.provAction(name, "dead-letter", attempt)
		m.mu.Lock()
		m.stats.DeadLetters++
		m.mu.Unlock()
		sink.DeadLetter(int64(now), m.Name(), name)
		if m.rt.DeadLetter != nil {
			m.rt.DeadLetter.Add(actions.FailedAction{
				Time: now, Guardrail: m.Name(), Action: name,
				Attempts: attempt + 1, Err: err.Error(),
			})
		}
		return
	}
	m.provAction(name, "retry", attempt)
	m.mu.Lock()
	m.stats.Retries++
	m.mu.Unlock()
	sink.ActionRetry(int64(now), m.Name(), name, attempt+1)
	m.rt.k.After(base<<attempt, func() { m.runAction(name, exec, attempt+1, trig) })
}
