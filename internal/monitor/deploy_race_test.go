package monitor

import (
	"sync"
	"testing"
)

// deployRaceSpec is a degraded deployment: ml-off and ml-on write
// opposing values to ml_enabled from the same hook (GI001 conflict →
// shadow quarantine under DeployWarn), and busy-watch sits on a hook
// site whose step budget is deliberately too small (GI005 → disabled).
const deployRaceSpec = `
guardrail ml-off {
    trigger: { FUNCTION(io_submit) },
    rule: { LOAD(err_rate) <= 0.01 },
    action: { SAVE(ml_enabled, 0) }
}
guardrail ml-on {
    trigger: { FUNCTION(io_submit) },
    rule: { LOAD(lat_p99) <= 5e6 },
    action: { SAVE(ml_enabled, 1) }
}
guardrail busy-watch {
    trigger: { FUNCTION(busy_site) },
    rule: { LOAD(err_rate) <= 0.01 },
    action: { REPORT(LOAD(err_rate)) }
}`

// TestDeployWarnQuarantineUnderConcurrentFire loads a degraded
// deployment while hook sites fire from concurrent goroutines — the
// admission test, the quarantine classification, and the arm/disarm
// transitions must all be safe against in-flight dispatches (run under
// go test -race). Conflict-implicated monitors land in shadow (they
// evaluate but never reach the feature store), the over-budget monitor
// lands disabled (it never evaluates at all).
func TestDeployWarnQuarantineUnderConcurrentFire(t *testing.T) {
	rt, k, st := newRT()
	st.Save("ml_enabled", 1)
	st.Save("err_rate", 0.5) // violates ml-off and busy-watch
	st.Save("lat_p99", 1e9)  // violates ml-on

	stop := make(chan struct{})
	var wg sync.WaitGroup
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func(n int) {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				k.Fire("io_submit", float64(n))
				k.Fire("busy_site", float64(n))
			}
		}(i)
	}

	cs, feats := compileAll(t, deployRaceSpec)
	res, err := rt.LoadDeployment(cs, DeployConfig{
		Policy:      DeployWarn,
		Features:    feats,
		HookBudgets: map[string]int{"busy_site": 1},
	})
	if err != nil {
		t.Fatalf("DeployWarn refused: %v", err)
	}
	// Let the firers hammer the freshly armed deployment, then stop.
	for i := 0; i < 1000; i++ {
		k.Fire("io_submit", float64(i))
	}
	close(stop)
	wg.Wait()

	if len(res.Shadowed) != 2 {
		t.Fatalf("Shadowed = %v, want the conflicting pair", res.Shadowed)
	}
	if len(res.Disabled) != 1 || res.Disabled[0] != "busy-watch" {
		t.Fatalf("Disabled = %v, want [busy-watch]", res.Disabled)
	}

	// One more uncontended round so every shadowed monitor has at least
	// one completed evaluation on the books (concurrent rounds can
	// bounce off the single-evaluation CAS).
	k.Fire("io_submit", 0)

	for _, m := range res.Monitors {
		s := m.Stats()
		switch m.Name() {
		case "busy-watch":
			if s.Evals != 0 {
				t.Errorf("disabled monitor evaluated %d times on the over-budget hook", s.Evals)
			}
		default:
			if s.Evals == 0 {
				t.Errorf("shadowed monitor %s never evaluated", m.Name())
			}
			if s.ActionsFired != 0 {
				t.Errorf("shadowed monitor %s fired %d actions", m.Name(), s.ActionsFired)
			}
		}
	}
	if got := st.Load("ml_enabled"); got != 1 {
		t.Errorf("ml_enabled = %v; quarantined SAVEs leaked through under concurrency", got)
	}
}

// TestQuarantineTogglesUnderConcurrentFire flips a live monitor through
// the quarantine transitions (enabled→disabled→enabled,
// live→forced-shadow→released) while hooks fire from other goroutines.
// Under go test -race this pins the transition paths as safe against
// in-flight evaluations; functionally, the monitor must end live.
func TestQuarantineTogglesUnderConcurrentFire(t *testing.T) {
	rt, k, st := newRT()
	st.Save("ml_enabled", 1)
	st.Save("err_rate", 0.5)
	cs, feats := compileAll(t, `
guardrail flip {
    trigger: { FUNCTION(io_submit) },
    rule: { LOAD(err_rate) <= 0.01 },
    action: { SAVE(ml_enabled, 0) }
}`)
	res, err := rt.LoadDeployment(cs, DeployConfig{Features: feats})
	if err != nil {
		t.Fatal(err)
	}
	m := res.Monitors[0]

	stop := make(chan struct{})
	var wg sync.WaitGroup
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func(n int) {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				k.Fire("io_submit", float64(n))
			}
		}(i)
	}
	for i := 0; i < 500; i++ {
		m.SetEnabled(false)
		m.ForceShadow(true)
		m.ForceShadow(false)
		m.SetEnabled(true)
	}
	close(stop)
	wg.Wait()

	st.Save("ml_enabled", 1)
	k.Fire("io_submit", 0)
	if got := st.Load("ml_enabled"); got != 0 {
		t.Errorf("monitor did not act after the quarantine toggles settled (ml_enabled = %v)", got)
	}
	if m.Stats().Evals == 0 {
		t.Error("monitor never evaluated under concurrent fire")
	}
}
