package monitor

import (
	"testing"

	"guardrails/internal/kernel"
)

// TestOOMKillerGuardrail is the end-to-end A4 scenario from Figure 1:
// "Deprioritize/kill tasks to free resources or relax constraints.
// Example use: out-of-memory killer (P6)." A memory subsystem publishes
// available memory; low-priority batch tasks leak; when availability
// crosses the liveness floor, the guardrail kills the batch group and
// the subsystem reclaims its memory.
func TestOOMKillerGuardrail(t *testing.T) {
	rt, k, st := newRT()

	const totalMemory = 1 << 30 // 1 GiB
	web, err := k.CreateTask("web", -5)
	if err != nil {
		t.Fatal(err)
	}
	batch1, err := k.CreateTask("batch1", 10)
	if err != nil {
		t.Fatal(err)
	}
	batch2, err := k.CreateTask("batch2", 10)
	if err != nil {
		t.Fatal(err)
	}
	rt.Deprioritizer.RegisterGroup("batch_jobs", batch1.ID, batch2.ID)

	// The "memory manager": recomputes availability every 10ms from the
	// live task set (killed tasks release their memory).
	recompute := func() {
		var used int64
		for _, task := range k.Tasks() {
			if task.State != kernel.TaskKilled {
				used += task.MemoryBytes
			}
		}
		st.Save("mem_available_mb", float64(totalMemory-used)/(1<<20))
	}
	k.Every(0, 10*kernel.Millisecond, 0, func(kernel.Time) { recompute() })

	// The leak: each batch task grows 8 MiB per 50ms.
	k.Every(0, 50*kernel.Millisecond, 0, func(kernel.Time) {
		for _, task := range []*kernel.Task{batch1, batch2} {
			if task.State != kernel.TaskKilled {
				task.MemoryBytes += 8 << 20
			}
		}
	})
	web.MemoryBytes = 128 << 20

	// The guardrail: liveness floor at 256 MiB available; on violation,
	// report and kill the batch group. Spec-level priorities cap at the
	// nice range, so the kill semantics come from loading with
	// DefaultPriority = actions.KillPriority (20).
	src := `
guardrail oom-killer {
    trigger: { TIMER(0, 1e8) }, // every 100ms
    rule: { LOAD(mem_available_mb) >= 256 },
    action: {
        REPORT(LOAD(mem_available_mb));
        DEPRIORITIZE(batch_jobs)
    }
}`
	ms, err := rt.LoadSource(src, Options{DefaultPriority: 20 /* actions.KillPriority */})
	if err != nil {
		t.Fatal(err)
	}

	// Run until well past the projected OOM point. Leak rate: 16 MiB /
	// 50ms = 320 MiB/s across the group; available starts at ~896 MiB,
	// crosses 256 MiB around t ≈ 2 s.
	k.RunUntil(5 * kernel.Second)

	if batch1.State != kernel.TaskKilled || batch2.State != kernel.TaskKilled {
		t.Fatalf("batch tasks not killed: %v / %v", batch1.State, batch2.State)
	}
	if web.State == kernel.TaskKilled {
		t.Fatal("high-priority task was killed")
	}
	// Memory was reclaimed and the property recovered.
	if avail := st.Load("mem_available_mb"); avail < 256 {
		t.Errorf("available after kill = %v MiB", avail)
	}
	s := ms[0].Stats()
	if s.ActionsFired == 0 || rt.Log.Total() == 0 {
		t.Errorf("guardrail accounting: %+v, log %d", s, rt.Log.Total())
	}
	// The violation report carries the memory level that triggered it.
	v := rt.Log.Recent(1)[0]
	if len(v.Values) != 1 || v.Values[0] >= 256 {
		t.Errorf("reported value = %v", v.Values)
	}
	_, killed := rt.Deprioritizer.Stats()
	if killed != 2 {
		t.Errorf("killed = %d", killed)
	}
	// After recovery the rule holds again and no further kills happen.
	evalsAt5s := ms[0].Stats().Evals
	k.RunUntil(6 * kernel.Second)
	if ms[0].Stats().Evals <= evalsAt5s {
		t.Error("monitor stopped evaluating")
	}
	if ms[0].Stats().LastResult != 1 {
		t.Error("property did not recover after the kill")
	}
}
