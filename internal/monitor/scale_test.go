package monitor

import (
	"fmt"
	"testing"

	"guardrails/internal/featurestore"
	"guardrails/internal/kernel"
)

// TestIncrementalDeploymentScale exercises §3.3's incremental-deployment
// claim at fleet scale: dozens of guardrails with independent keys and
// staggered timers coexist on one kernel, each evaluating and acting
// only on its own property; half are then unloaded mid-run without
// disturbing the rest.
func TestIncrementalDeploymentScale(t *testing.T) {
	rt, k, st := newRT()
	const n = 64
	for i := 0; i < n; i++ {
		src := fmt.Sprintf(`
guardrail g%d {
    trigger: { TIMER(%d, 1e8) },
    rule: { LOAD(sig%d) <= %d },
    action: { SAVE(alarm%d, 1) }
}`, i, i*100, i, i, i)
		if _, err := rt.LoadSource(src, Options{}); err != nil {
			t.Fatalf("loading guardrail %d: %v", i, err)
		}
	}
	if len(rt.Monitors()) != n {
		t.Fatalf("monitors = %d", len(rt.Monitors()))
	}
	// Violate even-numbered signals only.
	for i := 0; i < n; i += 2 {
		st.Save(fmt.Sprintf("sig%d", i), float64(i+100))
	}
	k.RunUntil(kernel.Second)
	for i := 0; i < n; i++ {
		want := 0.0
		if i%2 == 0 {
			want = 1
		}
		if got := st.Load(fmt.Sprintf("alarm%d", i)); got != want {
			t.Errorf("alarm%d = %v, want %v", i, got, want)
		}
	}
	// Unload half; the rest keep running.
	for i := 0; i < n; i += 2 {
		if err := rt.Unload(fmt.Sprintf("g%d", i)); err != nil {
			t.Fatal(err)
		}
	}
	if len(rt.Monitors()) != n/2 {
		t.Fatalf("after unload: %d monitors", len(rt.Monitors()))
	}
	evalsBefore := make(map[string]uint64)
	for _, m := range rt.Monitors() {
		evalsBefore[m.Name()] = m.Stats().Evals
	}
	k.RunUntil(2 * kernel.Second)
	for _, m := range rt.Monitors() {
		if m.Stats().Evals <= evalsBefore[m.Name()] {
			t.Errorf("%s stopped evaluating after unrelated unloads", m.Name())
		}
	}
}

// BenchmarkManyMonitors measures aggregate monitor overhead with 100
// loaded guardrails ticking at 10ms over one simulated second — the
// "more guardrails, more properties, more frequently" scaling the paper
// proposes (§3.3).
func BenchmarkManyMonitors(b *testing.B) {
	for iter := 0; iter < b.N; iter++ {
		b.StopTimer()
		k := kernel.New()
		st := featurestore.New()
		rt := New(k, st)
		for i := 0; i < 100; i++ {
			src := fmt.Sprintf(`
guardrail g%d {
    trigger: { TIMER(%d, 1e7) },
    rule: { LOAD(sig%d) <= 100 },
    action: { SAVE(alarm%d, 1) }
}`, i, i, i, i)
			if _, err := rt.LoadSource(src, Options{}); err != nil {
				b.Fatal(err)
			}
		}
		b.StartTimer()
		k.RunUntil(kernel.Second) // 100 monitors x 100 evals
		b.StopTimer()
		var steps uint64
		for _, m := range rt.Monitors() {
			steps += m.Stats().VMSteps
		}
		b.ReportMetric(float64(steps)/100, "vm_steps/monitor")
	}
}
