package monitor

import (
	"guardrails/internal/featurestore"
	"guardrails/internal/kernel"
	"guardrails/internal/provenance"
	"guardrails/internal/vm"
)

// Provenance capture. The monitor owns one reusable scratch Record and
// one reusable VM branch trace; while an evaluation is in flight
// (provLive, under the running CAS) the VM appends branch decisions
// and LoadCell/action sites append their observations. At the end the
// scratch is committed to the runtime's recorder if the decision is
// always-on (violation) or admitted by the per-monitor head-based
// healthy sample; monitor faults commit their own copy immediately in
// recordFault so every Stats.Traps increment has exactly one
// KindFault record. Capture is allocation-free: every string stored is
// interned (monitor name, symbol-table keys) or a compile-time
// constant, and Commit copies into the recorder's preallocated ring.

// provInit prefills the scratch record's static fields (monitor name,
// verifier proof metadata) and the per-cell *_global classification at
// load time, so the per-evaluation provBegin touches only what changes
// between evaluations.
func (m *Monitor) provInit() {
	r := &m.prov
	r.Monitor = m.c.Name
	r.Gen = m.gen // immutable per Monitor: updates construct a new one
	meta := m.c.Program.Meta
	r.TrapFree = meta.TrapFree
	r.DivProven = meta.DivProven
	r.MaxSteps = meta.MaxSteps
	m.provSyms = m.c.Program.Symbols
	m.provGlobal = make([]bool, len(m.provSyms))
	for i, sym := range m.provSyms {
		m.provGlobal[i] = featurestore.IsGlobalKey(sym)
	}
}

// provBegin starts capture for the in-flight evaluation and installs
// the branch trace on the VM. The scratch is not fully Reset per
// evaluation (that is a measurable fraction of a steady-state eval):
// static fields were prefilled by provInit, Commit stamps
// Seq/Shard/Epoch, the rollout-only fields are never touched by a
// monitor, and every other field (At, Site, Held, Kind, ...) is
// written by whichever commit path runs (provEnd for evaluations,
// provFault for faults) — so only the state appended to during the
// run is cleared here.
func (m *Monitor) provBegin(arg float64, shadow bool, shadowReason string) {
	r := &m.prov
	r.NFeatures, r.FeaturesTruncated = 0, false
	r.NActions, r.ActionsTruncated = 0, false
	r.Arg = arg
	// Shadow state is stable across steady-state evaluations; compare
	// before storing so the common case does not dirty the fields.
	if r.Shadow != shadow || r.ShadowReason != shadowReason {
		r.Shadow, r.ShadowReason = shadow, shadowReason
	}
	m.provTrace.N, m.provTrace.Truncated = 0, false
	if m.machine.Trace == nil {
		m.machine.Trace = &m.provTrace
	}
	m.provLive = true
}

// provAbandon tears down an in-flight capture without committing an
// evaluation record — the trap paths, whose fault record recordFault
// already committed. The branch trace stays installed on the machine:
// the next provBegin resets it, nothing reads it in between, and
// detaching would put an extra store on every evaluation.
func (m *Monitor) provAbandon() {
	m.provLive = false
}

// provEnd finishes the in-flight capture and commits it if the
// decision is a violation (always-on) or admitted by the healthy
// sample (1 in HealthyEvery healthy fires per monitor, head-based on
// the monitor's own healthy-evaluation counter so a seeded run always
// samples the same fires).
func (m *Monitor) provEnd(rec *provenance.Recorder, held, twoPhase bool, steps uint64) {
	if !m.provLive {
		return
	}
	m.provLive = false
	// Decide admission before finishing the capture: the common case is
	// a healthy fire outside the sample, and it should pay nothing
	// beyond the countdown (a decrement, not a modulo — a 64-bit divide
	// is measurable at this grain).
	if held {
		every := rec.HealthyEvery()
		if every == 0 {
			return
		}
		if m.provSkip != 0 {
			m.provSkip--
			return
		}
		m.provSkip = every - 1
	}
	r := &m.prov
	m.provSyncTrace(r)
	r.At = int64(m.trigAt)
	r.Site = m.provSite
	r.Held = held
	r.TwoPhase = twoPhase
	r.Steps = steps
	if held {
		r.Kind = provenance.KindEval
	} else {
		r.Kind = provenance.KindViolation
	}
	rec.Commit(r)
}

// provSyncTrace copies the VM branch trace into the record.
func (m *Monitor) provSyncTrace(r *provenance.Record) {
	t := &m.provTrace
	n := t.N
	if n > provenance.MaxBranches {
		n = provenance.MaxBranches
	}
	for i := 0; i < n; i++ {
		r.Branches[i] = provenance.BranchDecision{PC: t.PC[i], Taken: t.Taken[i]}
	}
	r.NBranches = n
	r.BranchesTruncated = t.Truncated
}

// provFault commits one KindFault record for a recordFault call. A
// fault during an in-flight evaluation carries everything captured so
// far (features read, branch path, proof metadata); a fault outside
// one (a late action-retry failure) carries the minimal header.
func (m *Monitor) provFault(rec *provenance.Recorder, kind string, now kernel.Time) {
	if m.provLive {
		f := m.prov
		m.provSyncTrace(&f)
		f.Kind = provenance.KindFault
		f.FaultKind = kind
		f.At = int64(now)
		f.Site = m.provSite
		// provBegin's slim reset leaves these to the commit paths: the
		// snapshot may carry them from the previous committed record.
		f.Held, f.TwoPhase, f.Steps = false, false, 0
		rec.Commit(&f)
		return
	}
	var f provenance.Record
	f.Kind = provenance.KindFault
	f.FaultKind = kind
	f.At = int64(now)
	f.Monitor = m.c.Name
	f.Gen = m.Generation()
	rec.Commit(&f)
}

// provFeature records one feature read (called from LoadCell while
// capture is live). The symbol-table key is interned, so storing it
// allocates nothing; the *_global / fs_epoch classification marking
// cross-shard epoch snapshots was precomputed per cell by provInit so
// the hot path does no string work.
func (m *Monitor) provFeature(i int32, v float64, patched bool) {
	m.prov.AddFeature(m.provSyms[i], v, patched, m.provGlobal[i])
}

// provAction records one action outcome against the in-flight capture.
// Only first attempts are recorded here — retries dispatch from timers
// after the evaluation finished and surface through the telemetry
// retry/dead-letter counters and, on terminal failure, recordFault.
func (m *Monitor) provAction(name, outcome string, attempt int) {
	if attempt != 0 || !m.provLive {
		return
	}
	m.prov.AddAction(name, outcome)
}

func init() {
	if vm.TraceCap != provenance.MaxBranches {
		panic("monitor: vm.TraceCap and provenance.MaxBranches out of sync")
	}
}
