package monitor

import (
	"errors"
	"strings"
	"testing"

	"guardrails/internal/compile"
	"guardrails/internal/kernel"
	"guardrails/internal/spec"
	"guardrails/internal/telemetry"
)

const conflictingPair = `
guardrail ml-off {
    trigger: { FUNCTION(io_submit) },
    rule: { LOAD(err_rate) <= 0.01 },
    action: { SAVE(ml_enabled, 0) }
}
guardrail ml-on {
    trigger: { FUNCTION(io_submit) },
    rule: { LOAD(lat_p99) <= 5e6 },
    action: { SAVE(ml_enabled, 1) }
}`

const cleanPair = `
guardrail watch-a {
    trigger: { FUNCTION(io_submit) },
    rule: { LOAD(err_rate) <= 0.01 },
    action: { REPORT(LOAD(err_rate)) }
}
guardrail watch-b {
    trigger: { FUNCTION(page_alloc) },
    rule: { LOAD(lat_p99) <= 5e6 },
    action: { REPORT(LOAD(lat_p99)) }
}`

func compileAll(t *testing.T, src string) ([]*compile.Compiled, []*spec.FeatureDecl) {
	t.Helper()
	f, err := spec.Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	if err := spec.Check(f); err != nil {
		t.Fatal(err)
	}
	cs, err := compile.File(f)
	if err != nil {
		t.Fatal(err)
	}
	return cs, f.Features
}

// TestDuplicateLoadIsCoded: loading the same spec twice into one
// runtime fails with the GI007-coded duplicate-deployment error, and
// the failed second load does not disturb the first.
func TestDuplicateLoadIsCoded(t *testing.T) {
	rt, k, st := newRT()
	st.Save("false_submit_rate", 0.01)
	if _, err := rt.LoadSource(listing2, Options{}); err != nil {
		t.Fatal(err)
	}
	_, err := rt.LoadSource(listing2, Options{})
	var dup *DuplicateLoadError
	if !errors.As(err, &dup) {
		t.Fatalf("second load returned %v, want *DuplicateLoadError", err)
	}
	if dup.Name != "low-false-submit" {
		t.Errorf("DuplicateLoadError.Name = %q", dup.Name)
	}
	if !strings.Contains(err.Error(), "GI007") {
		t.Errorf("error %q missing the GI007 code", err)
	}
	if m := rt.Monitor("low-false-submit"); m == nil {
		t.Fatal("first load was disturbed by the failed duplicate")
	}
	k.RunUntil(1500 * kernel.Millisecond)
	if got := rt.Monitor("low-false-submit").Stats().Evals; got == 0 {
		t.Error("original monitor stopped evaluating after duplicate load attempt")
	}
}

// TestLoadDeploymentEnforceRefusesConflicts: the default policy refuses
// a conflicting deployment atomically — nothing loaded, the error
// carries the report.
func TestLoadDeploymentEnforceRefusesConflicts(t *testing.T) {
	rt, _, _ := newRT()
	cs, feats := compileAll(t, conflictingPair)
	res, err := rt.LoadDeployment(cs, DeployConfig{Features: feats})
	var derr *DeployError
	if !errors.As(err, &derr) {
		t.Fatalf("got %v, want *DeployError", err)
	}
	if !strings.Contains(err.Error(), "GI001") {
		t.Errorf("refusal does not cite GI001: %s", err)
	}
	if len(res.Monitors) != 0 || len(rt.Monitors()) != 0 {
		t.Error("refused deployment still loaded monitors")
	}
	if res.Report == nil || res.Report.Clean() {
		t.Error("result must carry the dirty report")
	}
}

// TestLoadDeploymentEnforceAdmitsClean: a clean deployment loads every
// monitor and records the kernel-side admission.
func TestLoadDeploymentEnforceAdmitsClean(t *testing.T) {
	rt, k, _ := newRT()
	sink := telemetry.New(nil, 16)
	k.SetTelemetry(sink)
	cs, feats := compileAll(t, cleanPair)
	res, err := rt.LoadDeployment(cs, DeployConfig{Features: feats, HookBudget: 64})
	if err != nil {
		t.Fatalf("clean deployment refused: %v", err)
	}
	if len(res.Monitors) != 2 {
		t.Fatalf("loaded %d monitors, want 2", len(res.Monitors))
	}
	if got := sink.Counters.DeployAdmitted.Value(); got != 1 {
		t.Errorf("deployment_admitted_total = %d, want 1", got)
	}
}

// TestLoadDeploymentWarnQuarantines: under DeployWarn a conflicting
// pair loads in shadow mode — rules evaluate, actions are suppressed —
// so the conflict cannot reach the feature store.
func TestLoadDeploymentWarnQuarantines(t *testing.T) {
	rt, k, st := newRT()
	st.Save("ml_enabled", 1)
	st.Save("err_rate", 0.5) // ml-off's rule is violated
	st.Save("lat_p99", 1e9)  // ml-on's rule is violated
	cs, feats := compileAll(t, conflictingPair)
	res, err := rt.LoadDeployment(cs, DeployConfig{Policy: DeployWarn, Features: feats})
	if err != nil {
		t.Fatalf("DeployWarn refused: %v", err)
	}
	if len(res.Monitors) != 2 || len(res.Shadowed) != 2 {
		t.Fatalf("monitors=%d shadowed=%v, want both loaded and shadowed", len(res.Monitors), res.Shadowed)
	}
	k.Fire("io_submit")
	k.RunUntil(100 * kernel.Millisecond)
	for _, m := range res.Monitors {
		if m.Stats().Evals == 0 {
			t.Errorf("shadowed monitor %s did not evaluate", m.Name())
		}
	}
	if got := st.Load("ml_enabled"); got != 1 {
		t.Errorf("quarantined deployment wrote ml_enabled = %v; conflicting SAVEs must be suppressed", got)
	}
}

// TestLoadDeploymentWarnDisablesOverBudget: a hook site over its step
// budget loads its monitors disabled under DeployWarn.
func TestLoadDeploymentWarnDisablesOverBudget(t *testing.T) {
	rt, k, st := newRT()
	st.Save("err_rate", 0.5)
	cs, feats := compileAll(t, `
guardrail watch-a {
    trigger: { FUNCTION(io_submit) },
    rule: { LOAD(err_rate) <= 0.01 },
    action: { REPORT(LOAD(err_rate)) }
}
guardrail watch-b {
    trigger: { FUNCTION(io_submit) },
    rule: { LOAD(err_rate) >= 0 },
    action: { REPORT(LOAD(err_rate)) }
}`)
	res, err := rt.LoadDeployment(cs, DeployConfig{Policy: DeployWarn, Features: feats, HookBudget: 4})
	if err != nil {
		t.Fatalf("DeployWarn refused: %v", err)
	}
	if len(res.Disabled) != 2 {
		t.Fatalf("Disabled = %v, want both monitors", res.Disabled)
	}
	k.Fire("io_submit")
	k.RunUntil(100 * kernel.Millisecond)
	for _, m := range res.Monitors {
		if m.Stats().Evals != 0 {
			t.Errorf("disabled monitor %s evaluated on the over-budget hook", m.Name())
		}
	}
}

// TestLoadDeploymentWarnSkipsDuplicates: duplicate names load once.
func TestLoadDeploymentWarnSkipsDuplicates(t *testing.T) {
	rt, _, _ := newRT()
	a, _ := compileAll(t, testDupSolo)
	b, _ := compileAll(t, testDupSolo)
	res, err := rt.LoadDeployment(append(a, b...), DeployConfig{Policy: DeployWarn})
	if err != nil {
		t.Fatalf("DeployWarn refused: %v", err)
	}
	if len(res.Monitors) != 1 || len(res.Skipped) != 1 {
		t.Errorf("monitors=%d skipped=%v, want 1 loaded + 1 skipped", len(res.Monitors), res.Skipped)
	}
}

const testDupSolo = `
guardrail solo {
    trigger: { TIMER(start_time, 1e9) },
    rule: { LOAD(x) <= 1 },
    action: { REPORT(LOAD(x)) }
}`

// oscillatingPair flips the mode key between 0 and 1 forever; the
// declared property says it must stay 0.
const oscillatingPair = `
assert always LOAD(mode) <= 0

guardrail osc-up {
    trigger: { TIMER(0, 1000) },
    rule: { LOAD(mode) >= 1 },
    action: { SAVE(mode, 1) }
}
guardrail osc-down {
    trigger: { TIMER(500, 1000) },
    rule: { LOAD(mode) < 1 },
    action: { SAVE(mode, 0) }
}`

// compileWithProps is compileAll plus the file's assert property
// blocks.
func compileWithProps(t *testing.T, src string) ([]*compile.Compiled, []*spec.FeatureDecl, []*spec.PropertyDecl) {
	t.Helper()
	f, err := spec.Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	if err := spec.Check(f); err != nil {
		t.Fatal(err)
	}
	cs, err := compile.File(f)
	if err != nil {
		t.Fatal(err)
	}
	return cs, f.Features, f.Properties
}

// TestLoadDeploymentEnforceRefusesBrokenProperty: a deployment whose
// declared temporal property the model checker refutes is refused
// atomically under the default policy — GM001 cited, nothing loaded.
func TestLoadDeploymentEnforceRefusesBrokenProperty(t *testing.T) {
	rt, _, _ := newRT()
	cs, feats, props := compileWithProps(t, oscillatingPair)
	res, err := rt.LoadDeployment(cs, DeployConfig{Features: feats, Properties: props})
	var derr *DeployError
	if !errors.As(err, &derr) {
		t.Fatalf("got %v, want *DeployError", err)
	}
	if derr.Temporal == nil {
		t.Fatal("refusal does not carry the temporal report")
	}
	if !strings.Contains(err.Error(), "GM001") {
		t.Errorf("refusal does not cite GM001: %s", err)
	}
	if len(res.Monitors) != 0 || len(rt.Monitors()) != 0 {
		t.Error("refused deployment still loaded monitors")
	}
	if res.Temporal == nil || res.Temporal.Clean() {
		t.Error("result must carry the refuting temporal report")
	}
}

// TestLoadDeploymentWarnShadowsPropertyBreakers: under DeployWarn the
// monitors implicated in the refuted property load in shadow mode.
func TestLoadDeploymentWarnShadowsPropertyBreakers(t *testing.T) {
	rt, k, st := newRT()
	cs, feats, props := compileWithProps(t, oscillatingPair)
	res, err := rt.LoadDeployment(cs, DeployConfig{
		Policy: DeployWarn, Features: feats, Properties: props,
	})
	if err != nil {
		t.Fatalf("DeployWarn refused: %v", err)
	}
	if len(res.Monitors) != 2 {
		t.Fatalf("loaded %d monitors, want 2", len(res.Monitors))
	}
	if len(res.Shadowed) != 2 {
		t.Fatalf("shadowed = %v, want both oscillators", res.Shadowed)
	}
	// Shadowed oscillators evaluate but cannot SAVE: mode never flips.
	k.RunUntil(3 * kernel.Second)
	if got := st.Load("mode"); got != 0 {
		t.Errorf("mode = %v; shadowed oscillator wrote the store", got)
	}
	for _, m := range res.Monitors {
		if m.Stats().Evals == 0 {
			t.Errorf("shadowed monitor %s did not evaluate", m.Name())
		}
	}
}

// TestLoadDeploymentProvedPropertyAdmits: a deployment that satisfies
// its declared property loads normally and the result carries the
// proof.
func TestLoadDeploymentProvedPropertyAdmits(t *testing.T) {
	rt, _, _ := newRT()
	cs, feats, props := compileWithProps(t, `
assert always LOAD(mode) <= 1

guardrail mode-set {
    trigger: { TIMER(0, 1000) },
    rule: { LOAD(mode) >= 1 },
    action: { SAVE(mode, 1) }
}`)
	res, err := rt.LoadDeployment(cs, DeployConfig{Features: feats, Properties: props})
	if err != nil {
		t.Fatalf("proved deployment refused: %v", err)
	}
	if res.Temporal == nil || !res.Temporal.Clean() {
		t.Error("result does not carry the clean temporal report")
	}
}
