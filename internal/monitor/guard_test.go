package monitor

import (
	"errors"
	"fmt"
	"math"
	"strings"
	"sync"
	"sync/atomic"
	"testing"

	"guardrails/internal/compile"
	"guardrails/internal/kernel"
	"guardrails/internal/vm"
)

// testInjector is a programmable FaultInjector for monitor tests.
type testInjector struct {
	evalFault   func(guardrail string) error
	loadFault   func(guardrail, key string, value float64) (float64, bool)
	helperFault func(guardrail string, h vm.HelperID) error
	actionFault func(guardrail, action string) error
}

func (i *testInjector) EvalFault(g string) error {
	if i.evalFault == nil {
		return nil
	}
	return i.evalFault(g)
}

func (i *testInjector) LoadFault(g, key string, v float64) (float64, bool) {
	if i.loadFault == nil {
		return 0, false
	}
	return i.loadFault(g, key, v)
}

func (i *testInjector) HelperFault(g string, h vm.HelperID) error {
	if i.helperFault == nil {
		return nil
	}
	return i.helperFault(g, h)
}

func (i *testInjector) ActionFault(g, action string) error {
	if i.actionFault == nil {
		return nil
	}
	return i.actionFault(g, action)
}

func logNotes(rt *Runtime) []string {
	var notes []string
	for _, v := range rt.Log.Recent(10000) {
		if v.Note != "" {
			notes = append(notes, v.Note)
		}
	}
	return notes
}

func countNotes(rt *Runtime, substr string) int {
	n := 0
	for _, note := range logNotes(rt) {
		if strings.Contains(note, substr) {
			n++
		}
	}
	return n
}

// A run of injected evaluation faults must trip the breaker, suspend
// evaluation, and rearm after the cooldown — with every transition
// reported.
func TestBreakerQuarantinesAndRearms(t *testing.T) {
	rt, k, st := newRT()
	st.Save("false_submit_rate", 0.01)
	st.Save("ml_enabled", 1)
	ms, err := rt.LoadSource(listing2, Options{
		BreakerThreshold: 3,
		BreakerWindow:    10 * kernel.Second,
		Cooldown:         2 * kernel.Second,
	})
	if err != nil {
		t.Fatal(err)
	}
	m := ms[0]

	// Faults at t=0,1s,2s trip the breaker on the third.
	rt.SetFaultInjector(&testInjector{
		evalFault: func(string) error {
			if k.Now() < 2500*kernel.Millisecond {
				return errors.New("injected crash")
			}
			return nil
		},
	})
	k.RunUntil(2500 * kernel.Millisecond)
	if got := m.State(); got != StateQuarantined {
		t.Fatalf("state after 3 faults = %v, want quarantined", got)
	}
	s := m.Stats()
	if s.Traps != 3 || s.Quarantines != 1 {
		t.Errorf("stats = %+v, want 3 traps 1 quarantine", s)
	}
	evalsAtQuarantine := s.Evals

	// While quarantined the timer still ticks but nothing evaluates.
	k.RunUntil(4 * kernel.Second)
	if got := m.Stats().Evals; got != evalsAtQuarantine {
		t.Errorf("evals advanced to %d during quarantine", got)
	}

	// Cooldown expires 2s after the trip (t≈4s): evaluation resumes.
	k.RunUntil(6500 * kernel.Millisecond)
	if got := m.State(); got != StateActive {
		t.Fatalf("state after cooldown = %v, want active", got)
	}
	s = m.Stats()
	if s.Rearms != 1 {
		t.Errorf("rearms = %d, want 1", s.Rearms)
	}
	if s.Evals <= evalsAtQuarantine {
		t.Error("evaluation did not resume after rearm")
	}
	if countNotes(rt, "monitor fault [injected-trap]") != 3 {
		t.Errorf("fault notes = %d, want 3; notes: %v", countNotes(rt, "monitor fault"), logNotes(rt))
	}
	if countNotes(rt, "quarantined (fail-open)") != 1 || countNotes(rt, "rearmed (cooldown)") != 1 {
		t.Errorf("transition notes missing: %v", logNotes(rt))
	}
}

// FailClosed quarantine drives the system to its safe configuration via
// Fallback and undoes it via Restore on rearm.
func TestFailClosedFallbackAndRestore(t *testing.T) {
	rt, k, st := newRT()
	st.Save("false_submit_rate", 0.01)
	st.Save("ml_enabled", 1)
	_, err := rt.LoadSource(listing2, Options{
		OnFault:          FailClosed,
		BreakerThreshold: 2,
		Cooldown:         kernel.Second,
		Fallback:         func(m *Monitor) { st.Save("ml_enabled", 0) },
		Restore:          func(m *Monitor) { st.Save("ml_enabled", 1) },
	})
	if err != nil {
		t.Fatal(err)
	}
	rt.SetFaultInjector(&testInjector{
		evalFault: func(string) error {
			if k.Now() < 1500*kernel.Millisecond {
				return errors.New("boom")
			}
			return nil
		},
	})
	k.RunUntil(1200 * kernel.Millisecond) // faults at t=0,1s → trip
	if st.Load("ml_enabled") != 0 {
		t.Fatal("fail-closed quarantine did not run the fallback")
	}
	k.RunUntil(3 * kernel.Second) // cooldown rearm at ~2s
	if st.Load("ml_enabled") != 1 {
		t.Fatal("rearm did not run the restore")
	}
}

// Going over the per-window step budget demotes the monitor to shadow
// mode: violations are still observed but actions no longer fire, until
// the next budget window.
func TestBudgetDemotesToShadow(t *testing.T) {
	rt, k, st := newRT()
	st.Save("false_submit_rate", 0.5) // always violated
	st.Save("ml_enabled", 1)
	ms, err := rt.LoadSource(listing2, Options{
		StepBudget:   1, // any evaluation exceeds this
		BudgetWindow: 10 * kernel.Second,
	})
	if err != nil {
		t.Fatal(err)
	}
	m := ms[0]

	k.RunUntil(500 * kernel.Millisecond) // t=0: active eval, fires SAVE, then demotes
	if st.Load("ml_enabled") != 0 {
		t.Fatal("first (active) evaluation should have fired the SAVE")
	}
	if got := m.State(); got != StateShadow {
		t.Fatalf("state = %v, want shadow after blowing the budget", got)
	}

	st.Save("ml_enabled", 1) // re-arm the knob; shadow evals must not flip it
	k.RunUntil(3 * kernel.Second)
	if st.Load("ml_enabled") != 1 {
		t.Error("shadow-mode evaluation fired an action")
	}
	s := m.Stats()
	if s.ShadowDemotions == 0 {
		t.Error("no shadow demotion recorded")
	}
	if s.Violations < 3 {
		t.Errorf("violations = %d; shadow mode must keep observing", s.Violations)
	}
	if countNotes(rt, "degraded to shadow mode") == 0 {
		t.Errorf("demotion not reported: %v", logNotes(rt))
	}

	// A fresh window promotes back to active (before re-accounting).
	k.RunUntil(11 * kernel.Second)
	if got := m.Stats().ShadowPromotions; got == 0 {
		t.Error("no promotion at budget window boundary")
	}
}

// A failing action backend is retried with exponential backoff and
// dead-lettered when retries are exhausted; a backend that recovers
// mid-retry is logged as recovered.
func TestActionRetryAndDeadLetter(t *testing.T) {
	rt, k, st := newRT()
	src := `
guardrail fallback {
    trigger: { TIMER(0, 1e9) },
    rule: { LOAD(accuracy) >= 0.9 },
    action: { REPLACE(learned, heuristic) }
}`
	if err := rt.Policies.DefineSlot("io_predictor",
		map[string]any{"learned": "L", "heuristic": "H"}, "learned"); err != nil {
		t.Fatal(err)
	}
	ms, err := rt.LoadSource(src, Options{
		RetryMax:  2,
		RetryBase: 100 * kernel.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	m := ms[0]
	st.Save("accuracy", 0.5)

	rt.SetFaultInjector(&testInjector{
		actionFault: func(_, action string) error {
			if strings.HasPrefix(action, "REPLACE") && k.Now() < 250*kernel.Millisecond {
				return errors.New("backend unavailable")
			}
			return nil
		},
	})

	// t=0: dispatch fails; retries at 100ms (fails) and 100+200=300ms
	// (injection window closed → succeeds).
	k.RunUntil(900 * kernel.Millisecond)
	if name, _, _ := rt.Policies.Current("io_predictor"); name != "heuristic" {
		t.Fatal("retried REPLACE never landed")
	}
	s := m.Stats()
	if s.Retries != 2 || s.DispatchErrors != 2 || s.DeadLetters != 0 {
		t.Errorf("stats = %+v, want 2 retries, 2 dispatch errors, 0 dead letters", s)
	}
	if countNotes(rt, "action REPLACE(learned, heuristic) failed (attempt") != 2 {
		t.Errorf("failure notes: %v", logNotes(rt))
	}
	if countNotes(rt, "recovered (attempt 3)") != 1 {
		t.Errorf("recovery note missing: %v", logNotes(rt))
	}

	// Now fail permanently: REPLACE back to learned cannot run, and the
	// third failed attempt lands in the dead-letter queue.
	rt.SetFaultInjector(&testInjector{
		actionFault: func(_, action string) error { return errors.New("backend gone") },
	})
	if _, err := rt.Policies.Replace("heuristic", "learned", k.Now()); err != nil {
		t.Fatal(err)
	}
	k.RunUntil(2 * kernel.Second) // next tick dispatches REPLACE again
	k.RunUntil(3 * kernel.Second) // drain retries
	if got := rt.DeadLetter.Total(); got == 0 {
		t.Fatal("exhausted retries never dead-lettered")
	}
	f := rt.DeadLetter.Recent(1)[0]
	if f.Guardrail != "fallback" || !strings.HasPrefix(f.Action, "REPLACE") || f.Attempts != 3 {
		t.Errorf("dead letter = %+v", f)
	}
}

// A NaN feature read must not poison the rule: the monitor substitutes
// the cell's last known good value, reports the corruption, and keeps
// enforcing.
func TestCorruptLoadPatchedWithLastGood(t *testing.T) {
	rt, k, st := newRT()
	st.Save("false_submit_rate", 0.01)
	st.Save("ml_enabled", 1)
	ms, err := rt.LoadSource(listing2, Options{})
	if err != nil {
		t.Fatal(err)
	}
	m := ms[0]

	k.RunUntil(500 * kernel.Millisecond) // t=0: good read seeds lastGood
	st.Save("false_submit_rate", math.NaN())
	k.RunUntil(2500 * kernel.Millisecond) // t=1s,2s read NaN
	s := m.Stats()
	if s.LoadFaults != 2 {
		t.Errorf("load faults = %d, want 2", s.LoadFaults)
	}
	if s.Violations != 0 || st.Load("ml_enabled") != 1 {
		t.Error("NaN read flipped the guardrail; last-good substitution failed")
	}
	if countNotes(rt, "monitor fault [corrupt-load]") != 2 {
		t.Errorf("corruption not reported: %v", logNotes(rt))
	}

	// The store recovers; a genuine violation still enforces.
	st.Save("false_submit_rate", 0.2)
	k.RunUntil(3500 * kernel.Millisecond)
	if st.Load("ml_enabled") != 0 {
		t.Error("guardrail dead after corruption window")
	}
}

// Regression (was: silently treated as a violation with no classified
// note): a deliberately corrupted monitor image must surface every VM
// trap in the report log with a structured note, not crash, and not
// count as a property violation.
func TestCorruptedImageSurfacesTrap(t *testing.T) {
	rt, k, st := newRT()
	st.Save("false_submit_rate", 0.01)
	st.Save("ml_enabled", 1)
	cs, err := compile.Source(listing2)
	if err != nil {
		t.Fatal(err)
	}
	c := cs[0]
	// Corrupt the image the way a bad loader or flipped bit would:
	// an opcode outside the ISA.
	c.Program.Code[0].Op = vm.Op(200)
	m, err := rt.Load(c, Options{})
	if err != nil {
		t.Fatal(err)
	}
	k.RunUntil(2500 * kernel.Millisecond)
	s := m.Stats()
	if s.Traps != 3 {
		t.Errorf("traps = %d, want 3 (t=0,1s,2s)", s.Traps)
	}
	if s.Violations != 0 {
		t.Errorf("a trap must not count as a violation; stats = %+v", s)
	}
	if st.Load("ml_enabled") != 1 {
		t.Error("trapped evaluation fired an action")
	}
	if countNotes(rt, "monitor fault [bad-opcode-trap]") != 3 {
		t.Errorf("trap notes missing or unclassified: %v", logNotes(rt))
	}
}

// Regression for the silent error drop: an error in the action phase of
// a two-phase (hysteresis) evaluation must be reported, not just counted.
func TestTwoPhaseActionErrorSurfaced(t *testing.T) {
	rt, k, st := newRT()
	src := `
guardrail reporter {
    trigger: { TIMER(0, 1e9) },
    rule: { LOAD(err_rate) <= 0.1 },
    action: { REPORT(LOAD(err_rate)) }
}`
	ms, err := rt.LoadSource(src, Options{ViolationStreak: 2})
	if err != nil {
		t.Fatal(err)
	}
	st.Save("err_rate", 0.5)

	// The HelperAction call runs once per rule-only phase (suppressed)
	// and once in the action phase. Fail from the third call on: t=0
	// phase 1 is call 1, t=1s phase 1 is call 2, t=1s phase 2 (the
	// action rerun) is call 3 — the trap lands exactly in the rerun.
	var calls atomic.Int64
	rt.SetFaultInjector(&testInjector{
		helperFault: func(_ string, h vm.HelperID) error {
			if h == vm.HelperAction && calls.Add(1) >= 3 {
				return errors.New("helper table corrupted")
			}
			return nil
		},
	})
	k.RunUntil(1500 * kernel.Millisecond)
	s := ms[0].Stats()
	if s.DispatchErrors != 1 {
		t.Errorf("dispatch errors = %d, want 1", s.DispatchErrors)
	}
	if countNotes(rt, "action phase") != 1 {
		t.Errorf("action-phase trap not surfaced: %v", logNotes(rt))
	}
}

// The runtime must hold together under -race: one goroutine drives the
// kernel while others load/unload guardrails, read stats and logs, and
// write the feature store.
func TestRuntimeRaceStress(t *testing.T) {
	rt, k, st := newRT()
	st.Save("false_submit_rate", 0.01)
	st.Save("ml_enabled", 1)
	ms, err := rt.LoadSource(listing2, Options{
		BreakerThreshold: 3,
		Cooldown:         50 * kernel.Millisecond,
		RetryMax:         1,
		RetryBase:        kernel.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	m := ms[0]
	rt.SetFaultInjector(&testInjector{
		evalFault: func(string) error {
			if k.Now()%(7*kernel.Second) < kernel.Second {
				return errors.New("periodic crash")
			}
			return nil
		},
	})

	done := make(chan struct{})
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			i := 0
			for {
				select {
				case <-done:
					return
				default:
				}
				i++
				name := fmt.Sprintf("stress-%d-%d", g, i)
				src := fmt.Sprintf(`
guardrail %s {
    trigger: { TIMER(0, 1e8) },
    rule: { LOAD(false_submit_rate) <= 0.05 },
    action: { REPORT(1) }
}`, name)
				if _, err := rt.LoadSource(src, Options{}); err == nil {
					_ = rt.Unload(name)
				}
				_ = m.Stats()
				_ = m.State()
				_ = rt.Log.Recent(4)
				_ = rt.DeadLetter.Total()
				st.Save("false_submit_rate", float64(i%10)/100)
				_ = rt.Monitors()
			}
		}(g)
	}
	k.RunUntil(30 * kernel.Second)
	close(done)
	wg.Wait()
	if m.Stats().Evals == 0 {
		t.Fatal("monitor never evaluated")
	}
}
