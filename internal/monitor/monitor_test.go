package monitor

import (
	"strings"
	"testing"

	"guardrails/internal/featurestore"
	"guardrails/internal/kernel"
)

const listing2 = `
guardrail low-false-submit {
    trigger: { TIMER(start_time, 1e9) },
    rule: { LOAD(false_submit_rate) <= 0.05 },
    action: { SAVE(ml_enabled, false) }
}`

func newRT() (*Runtime, *kernel.Kernel, *featurestore.Store) {
	k := kernel.New()
	st := featurestore.New()
	return New(k, st), k, st
}

func TestLoadListing2TimerFlow(t *testing.T) {
	rt, k, st := newRT()
	st.Save("ml_enabled", 1)
	st.Save("false_submit_rate", 0.01)
	ms, err := rt.LoadSource(listing2, Options{})
	if err != nil {
		t.Fatal(err)
	}
	m := ms[0]

	// Let three timer periods elapse with a healthy rate.
	k.RunUntil(3500 * kernel.Millisecond)
	if got := m.Stats().Evals; got != 4 { // t=0,1s,2s,3s
		t.Errorf("evals = %d, want 4", got)
	}
	if m.Stats().Violations != 0 || st.Load("ml_enabled") != 1 {
		t.Error("healthy rate should not trip the guardrail")
	}

	// Rate spikes; the next tick must disable the model.
	st.Save("false_submit_rate", 0.20)
	k.RunUntil(4500 * kernel.Millisecond)
	if st.Load("ml_enabled") != 0 {
		t.Error("guardrail did not disable the model")
	}
	s := m.Stats()
	if s.Violations != 1 || s.ActionsFired != 1 || s.LastResult != 0 {
		t.Errorf("stats = %+v", s)
	}
}

func TestFunctionTriggerPassesHookArg(t *testing.T) {
	rt, k, st := newRT()
	src := `
guardrail no-slow-io {
    trigger: { FUNCTION(io_complete) },
    rule: { LOAD(io_latency_us) < 500 },
    action: { SAVE(slow_io_seen, 1) }
}`
	if _, err := rt.LoadSource(src, Options{}); err != nil {
		t.Fatal(err)
	}
	st.Save("io_latency_us", 100)
	k.Fire("io_complete", 100)
	if st.Load("slow_io_seen") != 0 {
		t.Error("fast IO tripped guardrail")
	}
	st.Save("io_latency_us", 900)
	k.Fire("io_complete", 900)
	if st.Load("slow_io_seen") != 1 {
		t.Error("slow IO not caught")
	}
	m := rt.Monitor("no-slow-io")
	if m.Stats().Evals != 2 {
		t.Errorf("evals = %d", m.Stats().Evals)
	}
}

func TestReportActionLogsValues(t *testing.T) {
	rt, k, st := newRT()
	src := `
guardrail reporter {
    trigger: { TIMER(0, 1e9) },
    rule: { LOAD(err_rate) <= 0.1 },
    action: { REPORT(LOAD(err_rate), LOAD(total)) }
}`
	if _, err := rt.LoadSource(src, Options{}); err != nil {
		t.Fatal(err)
	}
	st.Save("err_rate", 0.5)
	st.Save("total", 42)
	k.RunUntil(1) // t=0 tick
	if rt.Log.Total() != 1 {
		t.Fatalf("log total = %d", rt.Log.Total())
	}
	v := rt.Log.Recent(1)[0]
	if v.Guardrail != "reporter" || len(v.Values) != 2 || v.Values[0] != 0.5 || v.Values[1] != 42 {
		t.Errorf("violation = %+v", v)
	}
}

func TestReplaceActionSwapsPolicy(t *testing.T) {
	rt, k, st := newRT()
	if err := rt.Policies.DefineSlot("io_predictor",
		map[string]any{"learned": "L", "heuristic": "H"}, "learned"); err != nil {
		t.Fatal(err)
	}
	src := `
guardrail fallback {
    trigger: { TIMER(0, 1e9) },
    rule: { LOAD(accuracy) >= 0.9 },
    action: { REPLACE(learned, heuristic) }
}`
	if _, err := rt.LoadSource(src, Options{}); err != nil {
		t.Fatal(err)
	}
	st.Save("accuracy", 0.95)
	k.RunUntil(500 * kernel.Millisecond)
	if name, _, _ := rt.Policies.Current("io_predictor"); name != "learned" {
		t.Error("policy swapped while property held")
	}
	st.Save("accuracy", 0.5)
	k.RunUntil(1500 * kernel.Millisecond)
	if name, _, _ := rt.Policies.Current("io_predictor"); name != "heuristic" {
		t.Error("REPLACE did not swap policy")
	}
}

func TestRetrainActionQueues(t *testing.T) {
	rt, k, st := newRT()
	src := `
guardrail drift {
    trigger: { TIMER(0, 1e9) },
    rule: { LOAD(psi) < 0.25 },
    action: { RETRAIN(io_model) }
}`
	if _, err := rt.LoadSource(src, Options{}); err != nil {
		t.Fatal(err)
	}
	st.Save("psi", 0.9)
	k.RunUntil(2500 * kernel.Millisecond)
	pending := rt.Retrainer.Pending()
	if len(pending) != 1 || pending[0].Model != "io_model" {
		t.Errorf("pending = %+v (requests must deduplicate)", pending)
	}
}

func TestDeprioritizeActionDefaultAndExplicit(t *testing.T) {
	rt, k, st := newRT()
	t1, _ := k.CreateTask("batch", 0)
	rt.Deprioritizer.RegisterGroup("batch_jobs", t1.ID)
	src := `
guardrail fair {
    trigger: { TIMER(0, 1e9) },
    rule: { LOAD(starvation_ms) < 100 },
    action: { DEPRIORITIZE(batch_jobs) }
}`
	if _, err := rt.LoadSource(src, Options{}); err != nil {
		t.Fatal(err)
	}
	st.Save("starvation_ms", 500)
	k.RunUntil(1)
	if t1.Priority != 19 {
		t.Errorf("default demotion priority = %d, want 19", t1.Priority)
	}

	// Explicit priority.
	rt2, k2, st2 := newRT()
	t2, _ := k2.CreateTask("batch", 0)
	rt2.Deprioritizer.RegisterGroup("batch_jobs", t2.ID)
	src2 := strings.Replace(src, "DEPRIORITIZE(batch_jobs)", "DEPRIORITIZE(batch_jobs, 10)", 1)
	if _, err := rt2.LoadSource(src2, Options{}); err != nil {
		t.Fatal(err)
	}
	st2.Save("starvation_ms", 500)
	k2.RunUntil(1)
	if t2.Priority != 10 {
		t.Errorf("explicit priority = %d, want 10", t2.Priority)
	}
}

func TestHysteresisSuppressesFlappyActions(t *testing.T) {
	rt, k, st := newRT()
	st.Save("ml_enabled", 1)
	ms, err := rt.LoadSource(listing2, Options{ViolationStreak: 3})
	if err != nil {
		t.Fatal(err)
	}
	m := ms[0]
	// Alternate bad/good readings: the streak never reaches 3.
	for i := 0; i < 10; i++ {
		if i%2 == 0 {
			st.Save("false_submit_rate", 0.5)
		} else {
			st.Save("false_submit_rate", 0.0)
		}
		k.RunUntil(kernel.Time(i+1) * kernel.Second)
	}
	if st.Load("ml_enabled") != 1 {
		t.Error("flapping violations fired the action despite hysteresis")
	}
	if m.Stats().ActionsFired != 0 {
		t.Errorf("actions fired = %d", m.Stats().ActionsFired)
	}
	if m.Stats().Violations == 0 {
		t.Error("violations should still be counted")
	}
	// Sustained violation crosses the streak.
	st.Save("false_submit_rate", 0.5)
	k.RunUntil(14 * kernel.Second)
	if st.Load("ml_enabled") != 0 {
		t.Error("sustained violation did not fire the action")
	}
	if m.Stats().ActionsFired == 0 {
		t.Error("ActionsFired not counted")
	}
}

func TestRecoveryCallback(t *testing.T) {
	rt, k, st := newRT()
	st.Save("ml_enabled", 1)
	recovered := 0
	ms, err := rt.LoadSource(listing2, Options{
		RecoveryStreak: 2,
		OnRecover: func(m *Monitor) {
			recovered++
			rt.Store().Save("ml_enabled", 1)
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	st.Save("false_submit_rate", 0.5)
	k.RunUntil(1500 * kernel.Millisecond) // violate at t=0,1s
	if st.Load("ml_enabled") != 0 {
		t.Fatal("action did not fire")
	}
	st.Save("false_submit_rate", 0.0)
	k.RunUntil(2500 * kernel.Millisecond) // pass #1
	if recovered != 0 {
		t.Error("recovered too early")
	}
	k.RunUntil(3500 * kernel.Millisecond) // pass #2 -> recovery
	if recovered != 1 {
		t.Errorf("recovered = %d, want 1", recovered)
	}
	if st.Load("ml_enabled") != 1 {
		t.Error("recovery callback did not re-enable model")
	}
	if ms[0].Stats().Recoveries != 1 {
		t.Errorf("recoveries = %d", ms[0].Stats().Recoveries)
	}
	// A second episode recovers again.
	st.Save("false_submit_rate", 0.5)
	k.RunUntil(4500 * kernel.Millisecond)
	st.Save("false_submit_rate", 0.0)
	k.RunUntil(6500 * kernel.Millisecond)
	if recovered != 2 {
		t.Errorf("second recovery missing: %d", recovered)
	}
}

func TestDependencyTriggerEvaluatesOnWrite(t *testing.T) {
	rt, _, st := newRT()
	// Very long TIMER so only dependency triggers drive evaluation.
	src := `
guardrail dep {
    trigger: { TIMER(0, 1e15) },
    rule: { LOAD(queue_depth) < 100 },
    action: { SAVE(overload, 1) }
}`
	ms, err := rt.LoadSource(src, Options{DependencyTrigger: true})
	if err != nil {
		t.Fatal(err)
	}
	m := ms[0]
	base := m.Stats().Evals
	st.Save("queue_depth", 50) // triggers evaluation immediately
	if m.Stats().Evals != base+1 {
		t.Errorf("evals = %d, want %d", m.Stats().Evals, base+1)
	}
	if st.Load("overload") != 0 {
		t.Error("false positive")
	}
	st.Save("queue_depth", 500)
	if st.Load("overload") != 1 {
		t.Error("dependency-triggered violation missed")
	}
	// Writes to unrelated keys do not evaluate.
	before := m.Stats().Evals
	st.Save("unrelated", 1)
	if m.Stats().Evals != before {
		t.Error("unrelated write triggered evaluation")
	}
}

func TestPublishResult(t *testing.T) {
	rt, k, st := newRT()
	if _, err := rt.LoadSource(listing2, Options{PublishResult: true}); err != nil {
		t.Fatal(err)
	}
	st.Save("false_submit_rate", 0.01)
	k.RunUntil(1)
	if st.Load("guardrail.low-false-submit.violated") != 0 {
		t.Error("published result should be 0 while holding")
	}
	st.Save("false_submit_rate", 0.5)
	k.RunUntil(1500 * kernel.Millisecond)
	if st.Load("guardrail.low-false-submit.violated") != 1 {
		t.Error("published result should be 1 when violated")
	}
}

func TestUnloadStopsEvaluation(t *testing.T) {
	rt, k, st := newRT()
	ms, err := rt.LoadSource(listing2, Options{})
	if err != nil {
		t.Fatal(err)
	}
	m := ms[0]
	k.RunUntil(2500 * kernel.Millisecond)
	evals := m.Stats().Evals
	if evals == 0 {
		t.Fatal("monitor never ran")
	}
	if err := rt.Unload("low-false-submit"); err != nil {
		t.Fatal(err)
	}
	st.Save("false_submit_rate", 0.9)
	k.RunUntil(10 * kernel.Second)
	if m.Stats().Evals != evals {
		t.Error("unloaded monitor kept evaluating")
	}
	if rt.Monitor("low-false-submit") != nil {
		t.Error("monitor still registered")
	}
	if err := rt.Unload("low-false-submit"); err == nil {
		t.Error("double unload should error")
	}
}

func TestDuplicateLoadFails(t *testing.T) {
	rt, _, _ := newRT()
	if _, err := rt.LoadSource(listing2, Options{}); err != nil {
		t.Fatal(err)
	}
	if _, err := rt.LoadSource(listing2, Options{}); err == nil {
		t.Error("duplicate load should error")
	}
}

func TestDispatchErrorSurfacesInLog(t *testing.T) {
	rt, k, st := newRT()
	// REPLACE with no policies registered: Replace(old==new) is caught
	// at check time, but unknown policies silently swap 0 slots — that
	// is legal. Use DEPRIORITIZE with an unregistered group instead.
	src := `
guardrail broken {
    trigger: { TIMER(0, 1e9) },
    rule: { LOAD(x) < 1 },
    action: { DEPRIORITIZE(ghost_group) }
}`
	ms, err := rt.LoadSource(src, Options{})
	if err != nil {
		t.Fatal(err)
	}
	st.Save("x", 5)
	k.RunUntil(1)
	if ms[0].Stats().DispatchErrors == 0 {
		t.Error("dispatch error not counted")
	}
	found := false
	for _, v := range rt.Log.Recent(10) {
		if strings.Contains(v.Note, "ghost_group") {
			found = true
		}
	}
	if !found {
		t.Error("dispatch error not logged")
	}
}

func TestSetEnabledPausesMonitor(t *testing.T) {
	rt, k, st := newRT()
	ms, err := rt.LoadSource(listing2, Options{})
	if err != nil {
		t.Fatal(err)
	}
	m := ms[0]
	m.SetEnabled(false)
	st.Save("false_submit_rate", 0.9)
	st.Save("ml_enabled", 1)
	k.RunUntil(3 * kernel.Second)
	if st.Load("ml_enabled") != 1 {
		t.Error("disabled monitor acted")
	}
	m.SetEnabled(true)
	k.RunUntil(4 * kernel.Second)
	if st.Load("ml_enabled") != 0 {
		t.Error("re-enabled monitor did not act")
	}
}

func TestMonitorsListing(t *testing.T) {
	rt, _, _ := newRT()
	src := listing2 + `
guardrail another {
    trigger: { TIMER(0, 1e9) },
    rule: { LOAD(y) < 1 },
    action: { REPORT() }
}`
	if _, err := rt.LoadSource(src, Options{}); err != nil {
		t.Fatal(err)
	}
	ms := rt.Monitors()
	if len(ms) != 2 || ms[0].Name() != "another" || ms[1].Name() != "low-false-submit" {
		names := []string{}
		for _, m := range ms {
			names = append(names, m.Name())
		}
		t.Errorf("monitors = %v", names)
	}
	if ms[0].Program() == nil {
		t.Error("program accessor broken")
	}
}

func TestLoadSourceRollsBackOnPartialFailure(t *testing.T) {
	rt, _, _ := newRT()
	// Second guardrail duplicates an already-loaded name.
	if _, err := rt.LoadSource(listing2, Options{}); err != nil {
		t.Fatal(err)
	}
	src := `
guardrail fresh {
    trigger: { TIMER(0, 1e9) },
    rule: { LOAD(y) < 1 },
    action: { REPORT() }
}` + listing2
	if _, err := rt.LoadSource(src, Options{}); err == nil {
		t.Fatal("expected duplicate error")
	}
	if rt.Monitor("fresh") != nil {
		t.Error("partial load not rolled back")
	}
}

func TestTimerWithStopTime(t *testing.T) {
	rt, k, st := newRT()
	src := `
guardrail windowed {
    trigger: { TIMER(0, 1e9, 3e9) },
    rule: { LOAD(x) < 1 },
    action: { REPORT() }
}`
	ms, err := rt.LoadSource(src, Options{})
	if err != nil {
		t.Fatal(err)
	}
	st.Save("x", 0)
	k.RunUntil(10 * kernel.Second)
	if got := ms[0].Stats().Evals; got != 3 { // t=0,1s,2s
		t.Errorf("evals = %d, want 3", got)
	}
}

func TestSumStats(t *testing.T) {
	a := Stats{Evals: 3, Violations: 1, VMSteps: 30, LastResult: 0, LastTriggerAt: 5 * kernel.Second}
	b := Stats{Evals: 2, Violations: 2, VMSteps: 20, LastResult: 1, LastTriggerAt: 7 * kernel.Second}
	idle := Stats{} // replica that never evaluated

	got := SumStats(a, b, idle)
	if got.Evals != 5 || got.Violations != 3 || got.VMSteps != 50 {
		t.Errorf("counters = %+v, want sums 5/3/50", got)
	}
	// Freshest trigger wins regardless of argument order; the idle
	// replica contributes nothing to Last*.
	if got.LastResult != 1 || got.LastTriggerAt != 7*kernel.Second {
		t.Errorf("Last* = (%g, %d), want b's (1, 7s)", got.LastResult, got.LastTriggerAt)
	}
	rev := SumStats(b, idle, a)
	if rev != got {
		t.Errorf("SumStats order-dependent: %+v vs %+v", rev, got)
	}

	// Ties break toward the earlier argument: with a fixed shard order
	// the fleet view is deterministic.
	c := Stats{Evals: 1, LastResult: 0, LastTriggerAt: 7 * kernel.Second}
	tie := SumStats(b, c)
	if tie.LastResult != 1 {
		t.Errorf("tie broke toward later shard: LastResult = %g, want 1", tie.LastResult)
	}
	if z := SumStats(); z != (Stats{}) {
		t.Errorf("empty SumStats = %+v, want zero", z)
	}
}
