package monitor

import (
	"fmt"

	"guardrails/internal/compile"
	"guardrails/internal/kernel"
	"guardrails/internal/spec"
	"guardrails/internal/spec/interfere"
	"guardrails/internal/spec/modelcheck"
)

// DuplicateLoadError reports an attempt to load a guardrail under a
// name that is already loaded — the runtime analogue of the deployment
// analyzer's GI007 finding, coded the same so a load failure and an
// offline grailcheck run point at the same defect.
type DuplicateLoadError struct {
	// Name is the already-loaded guardrail name.
	Name string
}

// Error implements error.
func (e *DuplicateLoadError) Error() string {
	return fmt.Sprintf("monitor: [%s] guardrail %q already loaded: duplicate deployment",
		interfere.CodeDuplicateName, e.Name)
}

// DeployPolicy selects what LoadDeployment does when the interference
// analysis finds warnings.
type DeployPolicy int

// Deploy policies.
const (
	// DeployEnforce refuses the whole deployment on any warning —
	// nothing is loaded. The default: interference is a deployment bug.
	DeployEnforce DeployPolicy = iota
	// DeployWarn loads the deployment but quarantines the implicated
	// monitors: conflict-, cycle-, and dead-guardrail-implicated
	// monitors load in shadow mode (rules evaluate, actions are
	// suppressed), and monitors on over-budget hook sites load
	// disabled. Duplicate-name entries beyond the first are skipped.
	DeployWarn
)

// DeployConfig parameterizes LoadDeployment.
type DeployConfig struct {
	// Policy is the warning disposition (default DeployEnforce).
	Policy DeployPolicy
	// Features are the declared feature ranges the analysis refines
	// monitor inputs with (typically spec.FeatureRanges of the parsed
	// files, flattened).
	Features []*spec.FeatureDecl
	// HookBudget is the default per-hook-site certified step budget
	// (0 = unlimited); HookBudgets overrides it per site. Enforced both
	// statically (GI005) and by kernel.AdmitDeployment.
	HookBudget  int
	HookBudgets map[string]int
	// Properties are declared temporal properties (assert blocks or
	// manifest "properties" entries). When non-empty, LoadDeployment
	// additionally model-checks the deployment (spec/modelcheck): under
	// DeployEnforce a refuted or inconclusive property refuses the
	// deployment; under DeployWarn the monitors a GM diagnostic
	// implicates load in shadow mode.
	Properties []*spec.PropertyDecl
	// Options are the per-monitor load options applied to every monitor
	// in the deployment (ShadowMode may additionally be forced per
	// monitor under DeployWarn).
	Options Options
}

// DeployResult reports what LoadDeployment did.
type DeployResult struct {
	// Report is the interference analysis of the requested deployment.
	Report *interfere.Report
	// Temporal is the model-checking report (nil unless
	// DeployConfig.Properties was non-empty).
	Temporal *modelcheck.Report
	// Monitors are the loaded monitors, in input order (skipped
	// duplicates excluded).
	Monitors []*Monitor
	// Shadowed names monitors force-loaded in shadow mode under
	// DeployWarn because a conflict, cycle, dead-guardrail, or
	// refined-verification warning implicates them.
	Shadowed []string
	// Disabled names monitors loaded disabled under DeployWarn because
	// their hook site is over budget.
	Disabled []string
	// Skipped names duplicate-name entries not loaded under DeployWarn.
	Skipped []string
}

// DeployError is LoadDeployment's refusal under DeployEnforce: the
// analysis found warnings (or the kernel's admission test failed) and
// nothing was loaded.
type DeployError struct {
	// Report is the full analysis; Admission is the kernel's admission
	// error when the budget half failed (nil otherwise); Temporal is
	// the model-checking report when a declared property refused the
	// deployment (nil otherwise).
	Report    *interfere.Report
	Admission error
	Temporal  *modelcheck.Report
}

// Error implements error.
func (e *DeployError) Error() string {
	msg := fmt.Sprintf("monitor: deployment refused: %s", e.Report.Summary())
	for _, d := range e.Report.Diagnostics {
		if d.Severity == interfere.Warn {
			msg += "\n\t" + d.String()
		}
	}
	if e.Temporal != nil {
		msg += "\n\t" + e.Temporal.Summary()
		for _, d := range e.Temporal.Diagnostics {
			if d.Severity == interfere.Warn {
				msg += "\n\t" + d.String()
			}
		}
	}
	if e.Admission != nil {
		msg += "\n\t" + e.Admission.Error()
	}
	return msg
}

// HookLoads projects a deployment's FUNCTION-trigger attachments into
// the kernel's admission-test input, one HookLoad per (monitor, site)
// pair carrying the program's certified worst-case step count.
func HookLoads(cs []*compile.Compiled) []kernel.HookLoad {
	var loads []kernel.HookLoad
	for _, c := range cs {
		seen := map[string]bool{}
		for _, t := range c.Triggers {
			ft, ok := t.(*spec.FuncTrigger)
			if !ok || seen[ft.Site] {
				continue
			}
			seen[ft.Site] = true
			loads = append(loads, kernel.HookLoad{
				Site:     ft.Site,
				Monitor:  c.Name,
				MaxSteps: c.Program.Meta.MaxSteps,
			})
		}
	}
	return loads
}

// LoadDeployment loads a set of compiled guardrails as one deployment:
// it runs the whole-deployment interference analysis
// (interfere.Analyze) and the kernel's aggregate-budget admission test
// (kernel.AdmitDeployment) before arming anything, so a conflicting
// deployment is refused atomically rather than discovered in
// production as dispatch-order-dependent behavior.
//
// Under DeployEnforce (default) any warning refuses the whole
// deployment with a *DeployError and loads nothing. Under DeployWarn
// the deployment loads, degraded: implicated monitors are quarantined
// (shadow mode or disabled, see DeployPolicy) and the result lists
// them. Load errors mid-way unload everything already loaded.
func (r *Runtime) LoadDeployment(cs []*compile.Compiled, cfg DeployConfig) (*DeployResult, error) {
	dep := &interfere.Deployment{
		Monitors:    cs,
		Features:    cfg.Features,
		HookBudget:  cfg.HookBudget,
		HookBudgets: cfg.HookBudgets,
	}
	report := interfere.Analyze(dep)
	admErr := r.k.AdmitDeployment(cfg.HookBudget, cfg.HookBudgets, HookLoads(cs))

	// Declared temporal properties are admission conditions too: the
	// bounded model checker must prove every one before the deployment
	// arms under DeployEnforce.
	var temporal *modelcheck.Report
	if len(cfg.Properties) > 0 {
		temporal = modelcheck.Check(dep, modelcheck.Config{Properties: cfg.Properties})
	}

	res := &DeployResult{Report: report, Temporal: temporal}
	if cfg.Policy == DeployEnforce {
		if !report.Clean() || admErr != nil || (temporal != nil && !temporal.Clean()) {
			derr := &DeployError{Report: report, Admission: admErr}
			if temporal != nil && !temporal.Clean() {
				derr.Temporal = temporal
			}
			return res, derr
		}
	}

	// Under DeployWarn, classify each monitor's quarantine level from
	// the diagnostics that implicate it: budget findings disable (the
	// program must not run on the hot hook at all), every other warning
	// shadows (evaluate, but suppress actions).
	shadow := map[string]bool{}
	disable := map[string]bool{}
	skip := map[int]bool{}
	if cfg.Policy == DeployWarn {
		seen := map[string]bool{}
		for i, c := range cs {
			if seen[c.Name] {
				skip[i] = true
				res.Skipped = append(res.Skipped, c.Name)
			}
			seen[c.Name] = true
		}
		for _, d := range report.Diagnostics {
			if d.Severity != interfere.Warn || d.Code == interfere.CodeDuplicateName {
				continue
			}
			names := append([]string{d.Guardrail}, d.Others...)
			for _, n := range names {
				if d.Code == interfere.CodeHookBudget {
					disable[n] = true
				} else {
					shadow[n] = true
				}
			}
		}
		if temporal != nil {
			// A monitor implicated in a refuted property (safety breach,
			// missed liveness, oscillation) shadows: its rules still
			// evaluate, but it cannot act until the property is fixed.
			for _, d := range temporal.Diagnostics {
				if d.Severity != interfere.Warn {
					continue
				}
				for _, n := range append([]string{d.Guardrail}, d.Others...) {
					if n != "" {
						shadow[n] = true
					}
				}
			}
		}
	}

	for i, c := range cs {
		if skip[i] {
			continue
		}
		opts := cfg.Options
		if shadow[c.Name] {
			opts.ShadowMode = true
		}
		m, err := r.Load(c, opts)
		if err != nil {
			for _, loaded := range res.Monitors {
				_ = r.Unload(loaded.Name())
			}
			return res, err
		}
		if disable[c.Name] {
			m.SetEnabled(false)
			res.Disabled = append(res.Disabled, c.Name)
		} else if shadow[c.Name] {
			res.Shadowed = append(res.Shadowed, c.Name)
		}
		res.Monitors = append(res.Monitors, m)
	}
	return res, nil
}
