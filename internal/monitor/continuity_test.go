package monitor

import (
	"strings"
	"testing"

	"guardrails/internal/kernel"
	"guardrails/internal/telemetry"
)

// TestUpdateTelemetryContinuity is the regression gate for hot updates:
// counters must neither reset nor orphan across generations. Stats()
// carries the cumulative totals forward, GenerationStats() isolates the
// new generation, Generation() increments monotonically, and the
// per-monitor telemetry lane (keyed by the guardrail name, not a
// versioned alias) keeps accumulating in the same histogram.
func TestUpdateTelemetryContinuity(t *testing.T) {
	rt, k, st := newRT()
	sink := telemetry.New(func() telemetry.Time { return int64(k.Now()) }, 1<<12)
	rt.SetTelemetry(sink)
	st.Save("ml_enabled", 1)
	st.Save("false_submit_rate", 0.9) // violates every evaluation

	ms, err := rt.LoadSource(listing2, Options{})
	if err != nil {
		t.Fatal(err)
	}
	m1 := ms[0]
	k.RunUntil(3500 * kernel.Millisecond)
	s1 := m1.Stats()
	if s1.Evals == 0 || s1.Violations == 0 {
		t.Fatalf("generation 1 saw no traffic: %+v", s1)
	}
	lane1 := sink.EvalHist("low-false-submit").Summary().Count

	// Generation 2: tightened threshold, same name.
	m2, err := rt.UpdateSource(strings.Replace(listing2, "0.05", "0.02", 1), Options{})
	if err != nil {
		t.Fatal(err)
	}
	if got := m2.Generation(); got != 2 {
		t.Errorf("generation after first update = %d, want 2", got)
	}
	k.RunUntil(7500 * kernel.Millisecond)

	s2 := m2.Stats()
	g2 := m2.GenerationStats()
	if s2.Evals <= s1.Evals {
		t.Errorf("cumulative evals did not carry: gen1=%d gen2 total=%d", s1.Evals, s2.Evals)
	}
	if s2.Violations < s1.Violations {
		t.Errorf("cumulative violations went backwards: gen1=%d gen2 total=%d", s1.Violations, s2.Violations)
	}
	if g2.Evals == 0 {
		t.Error("generation 2 isolated stats saw no traffic")
	}
	if g2.Evals+s1.Evals != s2.Evals {
		t.Errorf("per-generation evals do not sum: %d + %d != %d", g2.Evals, s1.Evals, s2.Evals)
	}

	// Generation 3: another update; the chain keeps accumulating.
	m3, err := rt.UpdateSource(listing2, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if got := m3.Generation(); got != 3 {
		t.Errorf("generation after second update = %d, want 3", got)
	}
	k.RunUntil(10 * kernel.Second)
	if m3.Stats().Evals <= s2.Evals {
		t.Error("cumulative evals did not carry into generation 3")
	}

	// Telemetry lane continuity: the eval histogram under the plain
	// guardrail name accumulated across all three generations — never
	// reset, never split into an orphan lane.
	lane3 := sink.EvalHist("low-false-submit").Summary().Count
	if lane3 <= lane1 {
		t.Errorf("telemetry lane stalled across updates: before=%d after=%d", lane1, lane3)
	}
	if uint64(lane3) != m3.Stats().Evals {
		t.Errorf("telemetry lane count %d != cumulative evals %d (lane reset or orphaned)", lane3, m3.Stats().Evals)
	}
}
