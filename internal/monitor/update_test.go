package monitor

import (
	"strings"
	"testing"

	"guardrails/internal/kernel"
)

func TestHotUpdateTightensThreshold(t *testing.T) {
	rt, k, st := newRT()
	st.Save("ml_enabled", 1)
	if _, err := rt.LoadSource(listing2, Options{}); err != nil {
		t.Fatal(err)
	}
	// 0.04 passes the original 0.05 threshold.
	st.Save("false_submit_rate", 0.04)
	k.RunUntil(2500 * kernel.Millisecond)
	if st.Load("ml_enabled") != 1 {
		t.Fatal("original guardrail fired unexpectedly")
	}

	// Hot-update to a tightened 0.02 threshold (§6: no reboot).
	tightened := strings.Replace(listing2, "0.05", "0.02", 1)
	m2, err := rt.UpdateSource(tightened, Options{})
	if err != nil {
		t.Fatal(err)
	}
	k.RunUntil(4500 * kernel.Millisecond)
	if st.Load("ml_enabled") != 0 {
		t.Error("tightened guardrail did not fire")
	}
	if m2.Stats().Evals == 0 {
		t.Error("updated monitor never evaluated")
	}
	if got := rt.Monitor("low-false-submit"); got != m2 {
		t.Error("registry still points at the old monitor")
	}
	// Exactly one registered monitor.
	if len(rt.Monitors()) != 1 {
		t.Errorf("monitors = %d", len(rt.Monitors()))
	}
}

func TestHotUpdateOldMonitorDisarmed(t *testing.T) {
	rt, k, st := newRT()
	ms, err := rt.LoadSource(listing2, Options{})
	if err != nil {
		t.Fatal(err)
	}
	old := ms[0]
	k.RunUntil(1500 * kernel.Millisecond)
	oldEvals := old.Stats().Evals
	if _, err := rt.UpdateSource(listing2, Options{}); err != nil {
		t.Fatal(err)
	}
	st.Save("false_submit_rate", 0.9)
	k.RunUntil(5 * kernel.Second)
	if old.Stats().Evals != oldEvals {
		t.Error("old monitor still evaluating after update")
	}
}

func TestUpdateUnknownGuardrailFails(t *testing.T) {
	rt, _, _ := newRT()
	if _, err := rt.UpdateSource(listing2, Options{}); err == nil {
		t.Error("update of unloaded guardrail should error")
	}
}

func TestUpdateSourceRejectsMultiple(t *testing.T) {
	rt, _, _ := newRT()
	if _, err := rt.LoadSource(listing2, Options{}); err != nil {
		t.Fatal(err)
	}
	two := listing2 + `
guardrail extra {
    trigger: { TIMER(0, 1e9) },
    rule: { LOAD(x) < 1 },
    action: { REPORT() }
}`
	if _, err := rt.UpdateSource(two, Options{}); err == nil {
		t.Error("multi-guardrail update should error")
	}
}

func TestUpdateCarriesQuarantineState(t *testing.T) {
	// An operator-engaged quarantine (breakglass forced-shadow or a
	// disable) must survive a hot update: an automated swap may not
	// silently lift what an operator explicitly engaged.
	rt, k, st := newRT()
	st.Save("ml_enabled", 1)
	st.Save("false_submit_rate", 0.9)
	if _, err := rt.LoadSource(listing2, Options{}); err != nil {
		t.Fatal(err)
	}
	name := rt.Monitors()[0].Name()
	rt.Monitor(name).ForceShadow(true)

	m2, err := rt.UpdateSource(listing2, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !m2.ForcedShadow() {
		t.Fatal("hot update lifted the forced-shadow quarantine")
	}
	k.RunUntil(2 * kernel.Second)
	if st.Load("ml_enabled") != 1 {
		t.Error("quarantined replacement acted")
	}

	// Disable carries over the same way.
	m2.ForceShadow(false)
	m2.SetEnabled(false)
	m3, err := rt.UpdateSource(listing2, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if m3.Enabled() {
		t.Fatal("hot update re-enabled a disabled monitor")
	}
	evals := m3.Stats().Evals
	k.RunUntil(4 * kernel.Second)
	if m3.Stats().Evals != evals {
		t.Error("disabled replacement still evaluating")
	}

	// Releasing the quarantine restores enforcement on the replacement.
	m3.SetEnabled(true)
	k.RunUntil(6 * kernel.Second)
	if st.Load("ml_enabled") != 0 {
		t.Error("released replacement did not act")
	}
}

func TestShadowModeObservesWithoutActing(t *testing.T) {
	rt, k, st := newRT()
	st.Save("ml_enabled", 1)
	ms, err := rt.LoadSource(listing2, Options{ShadowMode: true})
	if err != nil {
		t.Fatal(err)
	}
	st.Save("false_submit_rate", 0.9)
	k.RunUntil(5 * kernel.Second)
	s := ms[0].Stats()
	if s.Violations == 0 {
		t.Fatal("shadow monitor did not observe violations")
	}
	if s.ActionsFired != 0 {
		t.Errorf("shadow monitor fired %d actions", s.ActionsFired)
	}
	if st.Load("ml_enabled") != 1 {
		t.Error("shadow monitor's SAVE leaked through")
	}
	if rt.Log.Total() != 0 {
		t.Error("shadow monitor reported violations to the log")
	}
}

func TestShadowModePromotionViaUpdate(t *testing.T) {
	// The trial-then-promote flow: shadow first, hot-update to live.
	rt, k, st := newRT()
	st.Save("ml_enabled", 1)
	st.Save("false_submit_rate", 0.9)
	if _, err := rt.LoadSource(listing2, Options{ShadowMode: true}); err != nil {
		t.Fatal(err)
	}
	k.RunUntil(2 * kernel.Second)
	if st.Load("ml_enabled") != 1 {
		t.Fatal("shadow phase acted")
	}
	if _, err := rt.UpdateSource(listing2, Options{}); err != nil {
		t.Fatal(err)
	}
	k.RunUntil(4 * kernel.Second)
	if st.Load("ml_enabled") != 0 {
		t.Error("promoted guardrail did not act")
	}
}
