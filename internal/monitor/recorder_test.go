package monitor

import (
	"strings"
	"testing"

	"guardrails/internal/featurestore"
	"guardrails/internal/kernel"
)

func TestRecorderContextInReports(t *testing.T) {
	rt, k, st := newRT()
	// Attach a recorder to the model's input features.
	st.Intern("feat_a")
	st.Intern("feat_b")
	rec := featurestore.NewRecorder(32)
	st.AttachRecorder(rec, "feat_a", "feat_b")

	src := `
guardrail ctx {
    trigger: { TIMER(0, 1e9) },
    rule: { LOAD(err_rate) <= 0.1 },
    action: { REPORT(LOAD(err_rate)) }
}`
	if _, err := rt.LoadSource(src, Options{Recorder: rec, RecorderContext: 4}); err != nil {
		t.Fatal(err)
	}
	// Simulate the model's inputs being published, then a violation.
	st.Save("feat_a", 1.5)
	st.Save("feat_b", 2.5)
	st.Save("feat_a", 3.5)
	st.Save("err_rate", 0.9)
	k.RunUntil(1)

	if rt.Log.Total() != 1 {
		t.Fatalf("log total = %d", rt.Log.Total())
	}
	v := rt.Log.Recent(1)[0]
	if len(v.Context) != 3 {
		t.Fatalf("context = %+v", v.Context)
	}
	if v.Context[2].Key != "feat_a" || v.Context[2].Value != 3.5 {
		t.Errorf("latest context write = %+v", v.Context[2])
	}
	if !strings.Contains(v.String(), "feat_a=3.5") {
		t.Errorf("rendered violation missing context: %s", v)
	}
	// err_rate itself was not attached: not recorded.
	for _, w := range v.Context {
		if w.Key == "err_rate" {
			t.Error("unattached key recorded")
		}
	}
}

func TestRecorderContextCapped(t *testing.T) {
	rt, k, st := newRT()
	rec := featurestore.NewRecorder(64)
	st.Intern("sig")
	st.AttachRecorder(rec, "sig")
	src := `
guardrail capped {
    trigger: { TIMER(0, 1e9) },
    rule: { LOAD(bad) == 0 },
    action: { REPORT() }
}`
	if _, err := rt.LoadSource(src, Options{Recorder: rec, RecorderContext: 4}); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 20; i++ {
		st.Save("sig", float64(i))
	}
	st.Save("bad", 1)
	k.RunUntil(1)
	v := rt.Log.Recent(1)[0]
	if len(v.Context) != 4 {
		t.Fatalf("context size = %d, want 4", len(v.Context))
	}
	if v.Context[3].Value != 19 {
		t.Errorf("latest value = %v", v.Context[3].Value)
	}
	// Only the attached key ("sig") is recorded: 20 writes.
	if rec.Total() != 20 {
		t.Errorf("recorder total = %d", rec.Total())
	}
}

func TestRecorderStandalone(t *testing.T) {
	rec := featurestore.NewRecorder(3)
	if len(rec.Recent(5)) != 0 {
		t.Error("fresh recorder not empty")
	}
	for i := 0; i < 5; i++ {
		rec.Record("k", float64(i))
	}
	got := rec.Recent(10)
	if len(got) != 3 || got[0].Value != 2 || got[2].Value != 4 {
		t.Errorf("recent = %+v", got)
	}
	if !strings.Contains(rec.Dump(), "k=4") {
		t.Errorf("dump = %q", rec.Dump())
	}
	_ = kernel.Time(0)
}

func TestRecorderCapacityPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("zero capacity should panic")
		}
	}()
	featurestore.NewRecorder(0)
}

func TestAttachRecorderAllKeys(t *testing.T) {
	st := featurestore.New()
	st.Save("a", 1)
	st.Save("b", 2)
	rec := featurestore.NewRecorder(8)
	st.AttachRecorder(rec) // all currently interned keys
	st.Save("a", 10)
	st.Save("b", 20)
	if rec.Total() != 2 {
		t.Errorf("total = %d", rec.Total())
	}
}
