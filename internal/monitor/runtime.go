// Package monitor is the guardrail runtime: it loads compiled guardrail
// monitors (package compile) into the simulated kernel, binds their
// TIMER and FUNCTION triggers to kernel timers and hook sites, executes
// the monitor programs in the VM at each trigger, and dispatches
// corrective actions (package actions) on property violations.
//
// The runtime implements the paper's deployment story (§3.3):
// incremental deployment (monitors can be loaded and unloaded at
// runtime without a "reboot"), per-monitor overhead accounting, and two
// mitigations for the discussion-section failure modes (§6): anti-flap
// hysteresis (an action fires only after K consecutive violations, with
// an optional recovery notification after M consecutive passes) and
// dependency-triggered evaluation (re-check a property only when a
// feature-store key it reads changes, instead of on a timer).
package monitor

import (
	"fmt"
	"sort"
	"sync"
	"sync/atomic"

	"guardrails/internal/actions"
	"guardrails/internal/compile"
	"guardrails/internal/featurestore"
	"guardrails/internal/kernel"
	"guardrails/internal/provenance"
	"guardrails/internal/telemetry"
	"guardrails/internal/vm"
)

// Runtime hosts loaded guardrail monitors and the shared action
// machinery.
type Runtime struct {
	k     *kernel.Kernel
	store *featurestore.Store

	// Log receives REPORT violations (and dispatch errors, monitor
	// faults, and degradation-ladder transitions, with Note).
	Log *actions.ReportLog
	// Policies backs REPLACE.
	Policies *actions.Registry
	// Retrainer backs RETRAIN.
	Retrainer *actions.Retrainer
	// Deprioritizer backs DEPRIORITIZE.
	Deprioritizer *actions.Deprioritizer
	// DeadLetter receives actions that exhausted their retries.
	DeadLetter *actions.DeadLetter

	faultInj atomic.Value // injBox
	tsink    atomic.Pointer[telemetry.Sink]
	prov     atomic.Pointer[provenance.Recorder]

	mu       sync.Mutex
	monitors map[string]*Monitor
}

// injBox wraps the injector so atomic.Value sees one concrete type
// regardless of the FaultInjector implementation stored.
type injBox struct{ fi FaultInjector }

// SetFaultInjector installs (or, with nil, removes) the fault-injection
// plan consulted on every monitor evaluation. Safe to call while the
// kernel runs.
func (r *Runtime) SetFaultInjector(fi FaultInjector) { r.faultInj.Store(injBox{fi}) }

// injector returns the installed fault injector, or nil.
func (r *Runtime) injector() FaultInjector {
	if b, ok := r.faultInj.Load().(injBox); ok {
		return b.fi
	}
	return nil
}

// SetTelemetry attaches (or with nil, detaches) a telemetry sink. With
// a sink attached, every evaluation, violation, action dispatch, retry,
// dead letter, monitor fault, and degradation-ladder transition is
// counted and recorded in the flight ring. Safe to call while the
// kernel runs.
func (r *Runtime) SetTelemetry(s *telemetry.Sink) { r.tsink.Store(s) }

// Telemetry returns the attached sink, or nil (the disabled plane).
func (r *Runtime) Telemetry() *telemetry.Sink { return r.tsink.Load() }

// SetProvenance attaches (or with nil, detaches) a decision-record
// recorder. With one attached, every violation and fault — and a
// sampled stream of healthy evaluations — is captured with its feature
// reads, branch path, and action outcomes. Safe to call while the
// kernel runs.
func (r *Runtime) SetProvenance(p *provenance.Recorder) { r.prov.Store(p) }

// Provenance returns the attached recorder, or nil (disabled).
func (r *Runtime) Provenance() *provenance.Recorder { return r.prov.Load() }

// New returns a runtime bound to a kernel and feature store, with
// default-capacity action components (a 4096-entry report log and a
// retraining budget of 4 tokens refilling at 0.1/s).
func New(k *kernel.Kernel, store *featurestore.Store) *Runtime {
	return &Runtime{
		k:             k,
		store:         store,
		Log:           actions.NewReportLog(4096),
		Policies:      actions.NewRegistry(),
		Retrainer:     actions.NewRetrainer(4, 0.1),
		Deprioritizer: actions.NewDeprioritizer(k),
		DeadLetter:    actions.NewDeadLetter(1024),
		monitors:      make(map[string]*Monitor),
	}
}

// Kernel returns the runtime's kernel.
func (r *Runtime) Kernel() *kernel.Kernel { return r.k }

// Store returns the runtime's feature store.
func (r *Runtime) Store() *featurestore.Store { return r.store }

// Load installs a compiled guardrail and arms its triggers. Loading is
// the incremental-deployment point: guardrails can be added while the
// system runs.
func (r *Runtime) Load(c *compile.Compiled, opts Options) (*Monitor, error) {
	opts.fillDefaults()
	admitProof(c)
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, dup := r.monitors[c.Name]; dup {
		return nil, &DuplicateLoadError{Name: c.Name}
	}

	m := &Monitor{
		rt:       r,
		c:        c,
		opts:     opts,
		cells:    make([]featurestore.ID, len(c.Program.Symbols)),
		lastGood: make([]float64, len(c.Program.Symbols)),
		enabled:  true,
		gen:      1,
	}
	for i, sym := range c.Program.Symbols {
		m.cells[i] = r.store.Intern(sym)
	}
	m.provInit()
	m.arm()
	r.monitors[c.Name] = m
	r.Telemetry().MonitorLoad(c.Name, c.Program.Meta.TrapFree)
	return m, nil
}

// admitProof gives an unproven program carrying a verification
// certificate (a decoded image: Meta is not serialized, the certificate
// is) one shot at the proven fast path: a valid certificate restores
// the Meta claims via CheckCertificate's single linear pass. A missing,
// corrupted, or stale certificate leaves the program on the guarded
// path — the admission decision is visible in the proven/guarded load
// telemetry split.
func admitProof(c *compile.Compiled) {
	if !c.Program.Meta.TrapFree && c.Program.Cert != nil {
		_ = vm.CheckCertificate(c.Program, vm.NumBuiltinHelpers)
	}
}

// LoadSource compiles a guardrail specification source and loads every
// guardrail in it with the same options.
func (r *Runtime) LoadSource(src string, opts Options) ([]*Monitor, error) {
	cs, err := compile.Source(src)
	if err != nil {
		return nil, err
	}
	out := make([]*Monitor, 0, len(cs))
	for _, c := range cs {
		m, err := r.Load(c, opts)
		if err != nil {
			for _, loaded := range out {
				_ = r.Unload(loaded.Name())
			}
			return nil, err
		}
		out = append(out, m)
	}
	return out, nil
}

// Update atomically replaces a loaded guardrail with a new compiled
// version under the same name — the paper's §6 "update guardrails at
// runtime without requiring a kernel reboot". The old monitor is
// disarmed only after the replacement compiled and its options were
// validated, so a bad update never leaves the property unwatched.
//
// Telemetry is continuous across the swap: the replacement carries the
// replaced generations' cumulative counters (Monitor.Stats merges them;
// Monitor.GenerationStats isolates the new generation), its Generation
// is the old one plus one, and per-monitor telemetry lanes keyed by
// name keep accumulating under the same key — a hot update must not
// silently reset or orphan a monitor's counters.
//
// Operator quarantine state carries over the same way: a monitor that
// was disabled (SetEnabled(false)) or breakglass-pinned in shadow
// (ForceShadow) stays that way in the replacement — an automated hot
// update must never silently lift a quarantine an operator engaged.
func (r *Runtime) Update(c *compile.Compiled, opts Options) (*Monitor, error) {
	r.mu.Lock()
	defer r.mu.Unlock()
	old, ok := r.monitors[c.Name]
	if !ok {
		return nil, fmt.Errorf("monitor: guardrail %q not loaded", c.Name)
	}
	opts.fillDefaults()
	admitProof(c)
	m := &Monitor{
		rt:          r,
		c:           c,
		opts:        opts,
		cells:       make([]featurestore.ID, len(c.Program.Symbols)),
		lastGood:    make([]float64, len(c.Program.Symbols)),
		enabled:     old.Enabled(),
		forceShadow: old.ForcedShadow(),
		gen:         old.Generation() + 1,
		base:        old.Stats(),
	}
	for i, sym := range c.Program.Symbols {
		m.cells[i] = r.store.Intern(sym)
	}
	m.provInit()
	// Swap: disarm the old monitor, arm the new one, replace the entry.
	old.disarm()
	m.arm()
	r.monitors[c.Name] = m
	r.Telemetry().MonitorLoad(c.Name, c.Program.Meta.TrapFree)
	return m, nil
}

// UpdateSource compiles src (which must contain exactly one guardrail)
// and hot-swaps it.
func (r *Runtime) UpdateSource(src string, opts Options) (*Monitor, error) {
	cs, err := compile.Source(src)
	if err != nil {
		return nil, err
	}
	if len(cs) != 1 {
		return nil, fmt.Errorf("monitor: UpdateSource wants exactly one guardrail, got %d", len(cs))
	}
	return r.Update(cs[0], opts)
}

// Unload disarms and removes a guardrail monitor.
func (r *Runtime) Unload(name string) error {
	r.mu.Lock()
	defer r.mu.Unlock()
	m, ok := r.monitors[name]
	if !ok {
		return fmt.Errorf("monitor: guardrail %q not loaded", name)
	}
	delete(r.monitors, name)
	m.disarm()
	return nil
}

// Monitor returns the loaded monitor with the given guardrail name, or
// nil.
func (r *Runtime) Monitor(name string) *Monitor {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.monitors[name]
}

// Monitors returns all loaded monitors sorted by name.
func (r *Runtime) Monitors() []*Monitor {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]*Monitor, 0, len(r.monitors))
	for _, m := range r.monitors {
		out = append(out, m)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name() < out[j].Name() })
	return out
}
