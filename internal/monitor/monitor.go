package monitor

import (
	"fmt"
	"math"
	"sync"
	"sync/atomic"

	"guardrails/internal/actions"
	"guardrails/internal/compile"
	"guardrails/internal/featurestore"
	"guardrails/internal/kernel"
	"guardrails/internal/provenance"
	"guardrails/internal/spec"
	"guardrails/internal/vm"
)

// Options tune a loaded monitor's behavior.
type Options struct {
	// ViolationStreak is the number of consecutive violated evaluations
	// required before actions fire (anti-flap hysteresis, §6). Default 1:
	// act on the first violation, the paper's base semantics.
	ViolationStreak int
	// RecoveryStreak, when positive, invokes OnRecover after that many
	// consecutive passing evaluations following a violation episode.
	RecoveryStreak int
	// OnRecover is called (if non-nil) when a violation episode ends per
	// RecoveryStreak. Typical use: re-enable a learned policy that a
	// REPLACE or SAVE action disabled.
	OnRecover func(m *Monitor)
	// DependencyTrigger, when true, additionally evaluates the monitor
	// whenever any feature-store key the rule reads is written —
	// the §6 alternative to periodic checking. Spec triggers still apply;
	// to measure dependency triggering alone, give the spec a TIMER with
	// a very long interval.
	DependencyTrigger bool
	// PublishResult, when true, writes guardrail.<name>.violated (0/1)
	// to the feature store after each evaluation so that other
	// guardrails can observe this one (used by the oscillation study).
	PublishResult bool
	// DefaultPriority is the demotion value used by DEPRIORITIZE actions
	// without an explicit priority. Default 19 (lowest nice).
	DefaultPriority int
	// ShadowMode evaluates rules and counts violations but suppresses
	// every action (including SAVE stores) — the paper's "loose
	// guardrails... for early warning" deployment style, and the safe
	// way to trial a new guardrail before letting it drive the system.
	ShadowMode bool
	// Recorder, when set, attaches a feature-store flight recorder
	// snapshot (the most recent writes) to every reported violation —
	// A1's "record which inputs triggered the violation".
	Recorder *featurestore.Recorder
	// RecorderContext is how many recent writes each report carries
	// (default 8).
	RecorderContext int

	// --- self-protection (see guard.go) -------------------------------

	// OnFault selects what quarantine means for the guarded system:
	// FailOpen (default) stops enforcing; FailClosed drives the system
	// to its safe configuration via Fallback/Restore.
	OnFault FaultPolicy
	// Fallback runs when a FailClosed monitor is quarantined. Nil means
	// dispatch every compiled action once. (SAVE actions are inlined in
	// the program, not the action list — fail-closed guardrails whose
	// safe state is a SAVE need an explicit Fallback.)
	Fallback func(m *Monitor)
	// Restore runs when a FailClosed monitor is rearmed, undoing
	// Fallback.
	Restore func(m *Monitor)
	// BreakerThreshold is the circuit breaker's trip point: that many
	// monitor faults within BreakerWindow quarantine the monitor.
	// 0 (default) disables the breaker.
	BreakerThreshold int
	// BreakerWindow is the breaker's sliding window (default 10s).
	BreakerWindow kernel.Time
	// Cooldown, when positive, automatically rearms a quarantined
	// monitor after that long. 0 means quarantine is manual-release
	// only (Rearm).
	Cooldown kernel.Time
	// StepBudget caps the monitor's VM steps per BudgetWindow; going
	// over demotes the monitor to shadow mode until the next window
	// ("degrade before disable"). 0 (default) disables enforcement.
	StepBudget uint64
	// BudgetWindow is the budget accounting window (default 1s).
	BudgetWindow kernel.Time
	// RetryMax is how many times a failed action dispatch is retried
	// (with exponential backoff) before it is dead-lettered. Default 0:
	// the first failure dead-letters.
	RetryMax int
	// RetryBase is the first retry delay; attempt n waits
	// RetryBase << n (default 10ms).
	RetryBase kernel.Time
}

func (o *Options) fillDefaults() {
	if o.ViolationStreak <= 0 {
		o.ViolationStreak = 1
	}
	if o.DefaultPriority == 0 {
		o.DefaultPriority = 19
	}
	if o.RecorderContext <= 0 {
		o.RecorderContext = 8
	}
	if o.BreakerWindow <= 0 {
		o.BreakerWindow = 10 * kernel.Second
	}
	if o.BudgetWindow <= 0 {
		o.BudgetWindow = kernel.Second
	}
	if o.RetryBase <= 0 {
		o.RetryBase = 10 * kernel.Millisecond
	}
}

// Stats summarizes a monitor's activity.
type Stats struct {
	// Evals counts rule evaluations.
	Evals uint64
	// Violations counts evaluations whose rule conjunction failed.
	Violations uint64
	// ActionsFired counts violation episodes in which actions ran
	// (differs from Violations under hysteresis).
	ActionsFired uint64
	// Recoveries counts completed violation→recovery episodes.
	Recoveries uint64
	// DispatchErrors counts action dispatches that failed at runtime
	// (e.g. unknown policy slot or task group), including each failed
	// retry attempt.
	DispatchErrors uint64
	// VMSteps is the total VM instructions executed, the monitor's
	// in-kernel overhead currency.
	VMSteps uint64
	// LastResult is 1 if the most recent evaluation held, 0 if violated.
	LastResult float64
	// LastTriggerAt is the simulated time of the hook fire or timer tick
	// that caused the most recent evaluation. Reports and retry notes
	// carry this trigger time, not the (possibly later) dispatch time.
	LastTriggerAt kernel.Time

	// --- self-protection counters (see guard.go) ----------------------

	// Traps counts monitor faults: VM traps, injected evaluation
	// faults, and corrupt feature reads.
	Traps uint64
	// LoadFaults counts corrupt (NaN) feature-store reads that were
	// patched with the last known good value.
	LoadFaults uint64
	// Quarantines counts circuit-breaker trips.
	Quarantines uint64
	// Rearms counts returns from quarantine (cooldown or manual).
	Rearms uint64
	// ShadowDemotions counts budget-enforcement demotions to shadow.
	ShadowDemotions uint64
	// ShadowPromotions counts budget-window promotions back to active.
	ShadowPromotions uint64
	// Retries counts scheduled action retry attempts.
	Retries uint64
	// DeadLetters counts actions that exhausted retries.
	DeadLetters uint64
}

// Monitor is a loaded guardrail: a verified VM program bound to kernel
// triggers and the feature store.
type Monitor struct {
	rt    *Runtime
	c     *compile.Compiled
	opts  Options
	cells []featurestore.ID

	machine vm.Machine

	timers []*kernel.Timer
	detach []func()

	// running admits one evaluation at a time (and breaks the
	// dependency-trigger recursion: a SAVE during evaluation fires
	// store watchers, which re-enter Evaluate and bounce off the CAS).
	// The CAS also publishes the single-eval state — machine, lastGood,
	// suppressActions — across goroutines.
	running atomic.Bool

	// suppressActions gates SAVE/REPORT/ACTION effects during the
	// rule-only phase of hysteresis and in shadow states. Only touched
	// while running is held.
	suppressActions bool

	// lastGood holds the last non-NaN value read per cell, the
	// substitute served when a read comes back corrupt. Only touched
	// while running is held.
	lastGood []float64

	// trigAt is the simulated time of the trigger that started the
	// in-flight evaluation. Only touched while running is held; action
	// closures copy it out so retries keep the original trigger time.
	trigAt kernel.Time

	// Provenance capture state (see provenance.go). prov is the
	// reusable scratch record and provTrace the reusable VM branch
	// trace for the in-flight evaluation; provLive marks a capture in
	// flight; provSkip is the head-based healthy-sample countdown
	// (commit at zero, reload to HealthyEvery-1). All are only touched
	// while running is held. provSite is set by hook-trigger closures
	// just before Evaluate (kernel goroutine ordering publishes it).
	prov      provenance.Record
	provTrace vm.BranchTrace
	provLive  bool
	provSkip  uint64
	provSite  string
	// provSyms is the program symbol table (pulled up from
	// m.c.Program so feature capture does one index, not a pointer
	// chase per LOAD); provGlobal marks, per program cell, whether the
	// symbol names a cross-shard aggregate (*_global / fs_epoch) —
	// precomputed at load so capture does no string work.
	provSyms   []string
	provGlobal []bool

	mu      sync.Mutex // guards everything below
	enabled bool
	state   State
	stats   Stats

	// gen is the monitor's deployment generation under its name: 1 on
	// first Load, incremented by every hot Update. base carries the
	// cumulative counters of the generations this monitor replaced, so
	// Stats() reads continuously across hot updates.
	gen  int
	base Stats

	// evalIdx numbers evaluation attempts (including faulted ones) for
	// the act gate's deterministic sampling. SetActGate zeroes it, so
	// monitors attached to the same trigger stream whose gates are
	// installed in the same kernel step see aligned indices from then
	// on — the property complementary stride gates rely on.
	evalIdx uint64
	// actGate, when non-nil, decides per evaluation whether this
	// monitor's actions are live (true) or suppressed as in shadow mode
	// (false). The rollout control plane uses complementary stride gates
	// to split traffic between an incumbent and a canary.
	actGate func(n uint64) bool
	// forceShadow pins the monitor in shadow regardless of state or
	// options — the breakglass quarantine.
	forceShadow bool

	violStreak int
	passStreak int
	inEpisode  bool

	faultTimes  []kernel.Time // breaker sliding window
	budgetEpoch int64
	windowSteps uint64
}

// Name returns the guardrail name.
func (m *Monitor) Name() string { return m.c.Name }

// Program returns the monitor's compiled VM program.
func (m *Monitor) Program() *vm.Program { return m.c.Program }

// Stats returns a snapshot of the monitor's counters. After a hot
// Update the snapshot includes the counters accumulated by the replaced
// generations under the same name, so telemetry reads continuously
// across updates instead of silently resetting (see GenerationStats for
// this generation alone).
func (m *Monitor) Stats() Stats {
	m.mu.Lock()
	defer m.mu.Unlock()
	return mergeStats(m.base, m.stats)
}

// GenerationStats returns only this generation's counters, excluding
// anything carried over from replaced generations.
func (m *Monitor) GenerationStats() Stats {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.stats
}

// Generation returns the monitor's deployment generation under its
// name: 1 for a fresh Load, incremented by each hot Update.
func (m *Monitor) Generation() int {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.gen
}

// SumStats folds per-shard replica snapshots of one guardrail into a
// fleet view: counters add across shards; the Last* observations come
// from the replica with the latest LastTriggerAt (first wins on ties,
// so a fixed shard order gives a deterministic result). Each input is
// an atomic snapshot (Monitor.Stats takes the monitor's lock), so the
// merge never reads a half-updated replica — the cross-shard
// aggregation path for monitors replicated over a kernel Pool.
func SumStats(ss ...Stats) Stats {
	var out Stats
	for _, s := range ss {
		prevLast, prevAt, prevEvals := out.LastResult, out.LastTriggerAt, out.Evals
		out = mergeStats(out, s)
		// mergeStats takes Last* from s unless s never evaluated; for a
		// cross-shard merge the freshest trigger wins instead.
		if prevEvals > 0 && (s.Evals == 0 || prevAt >= s.LastTriggerAt) {
			out.LastResult, out.LastTriggerAt = prevLast, prevAt
		}
	}
	return out
}

// mergeStats folds the carried-over base counters into cur: counters
// add; the Last* observations come from cur unless this generation has
// not evaluated yet, in which case the previous generation's stand.
func mergeStats(base, cur Stats) Stats {
	out := cur
	out.Evals += base.Evals
	out.Violations += base.Violations
	out.ActionsFired += base.ActionsFired
	out.Recoveries += base.Recoveries
	out.DispatchErrors += base.DispatchErrors
	out.VMSteps += base.VMSteps
	out.Traps += base.Traps
	out.LoadFaults += base.LoadFaults
	out.Quarantines += base.Quarantines
	out.Rearms += base.Rearms
	out.ShadowDemotions += base.ShadowDemotions
	out.ShadowPromotions += base.ShadowPromotions
	out.Retries += base.Retries
	out.DeadLetters += base.DeadLetters
	if cur.Evals == 0 {
		out.LastResult = base.LastResult
		out.LastTriggerAt = base.LastTriggerAt
	}
	return out
}

// SetActGate installs (or with nil, removes) a per-evaluation action
// gate: before each evaluation the gate is consulted with the
// evaluation's index, and a false answer runs that evaluation in shadow
// (rules evaluate and violations count, actions are suppressed). The
// rollout control plane uses complementary deterministic stride gates
// on an incumbent/canary pair to split action traffic between
// generations; breakglass uses an always-false gate's stronger cousin,
// ForceShadow. Safe to call while the kernel runs.
//
// Installing (or removing) a gate resets the evaluation index to zero:
// an incumbent that has already evaluated thousands of times and a
// freshly loaded candidate would otherwise consult complementary gates
// at offset indices, making some firings act twice and others not at
// all. Gating both members of a pair in the same kernel step restarts
// their indices together, so the split really is complementary.
func (m *Monitor) SetActGate(gate func(n uint64) bool) {
	m.mu.Lock()
	m.actGate = gate
	m.evalIdx = 0
	m.mu.Unlock()
}

// ForceShadow pins (or with false, releases) the monitor in shadow mode
// regardless of its degradation-ladder state and options — the
// breakglass quarantine. Safe to call while the kernel runs.
func (m *Monitor) ForceShadow(v bool) {
	m.mu.Lock()
	m.forceShadow = v
	m.mu.Unlock()
}

// ForcedShadow reports whether breakglass has pinned the monitor in
// shadow mode.
func (m *Monitor) ForcedShadow() bool {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.forceShadow
}

// Enabled reports whether the monitor evaluates on triggers.
func (m *Monitor) Enabled() bool {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.enabled
}

// SetEnabled toggles evaluation without unloading (cheap pause/resume).
func (m *Monitor) SetEnabled(v bool) {
	m.mu.Lock()
	m.enabled = v
	m.mu.Unlock()
}

// arm binds the guardrail's triggers to the kernel.
func (m *Monitor) arm() {
	for _, t := range m.c.Triggers {
		switch tt := t.(type) {
		case *spec.TimerTrigger:
			timer := m.rt.k.Every(kernel.Time(tt.Start), kernel.Time(tt.Interval), kernel.Time(tt.Stop),
				func(now kernel.Time) { m.Evaluate(0) })
			m.timers = append(m.timers, timer)
		case *spec.FuncTrigger:
			site := tt.Site
			detach := m.rt.k.Attach(tt.Site, func(_ *kernel.Kernel, _ string, args []float64) {
				arg := 0.0
				if len(args) > 0 {
					arg = args[0]
				}
				m.provSite = site
				m.Evaluate(arg)
				m.provSite = ""
			})
			m.detach = append(m.detach, detach)
		}
	}
	if m.opts.DependencyTrigger {
		for _, key := range m.ruleDependencies() {
			m.rt.store.Watch(key, func(string, float64) {
				m.Evaluate(0)
			})
		}
	}
}

// ruleDependencies returns the feature-store keys the program loads
// (not the ones it only stores).
func (m *Monitor) ruleDependencies() []string {
	seen := make(map[string]bool)
	var out []string
	for _, in := range m.c.Program.Code {
		if in.Op == vm.OpLoad {
			key := m.c.Program.Symbols[in.Cell]
			if !seen[key] {
				seen[key] = true
				out = append(out, key)
			}
		}
	}
	return out
}

func (m *Monitor) disarm() {
	for _, t := range m.timers {
		t.Stop()
	}
	for _, d := range m.detach {
		d()
	}
	m.timers, m.detach = nil, nil
	m.SetEnabled(false)
	// Store watchers (dependency triggers) stay registered but become
	// no-ops through the enabled check in Evaluate.
}

// Evaluate runs the monitor program once with the given trigger argument
// (hook sites pass their first argument; timers pass 0). It returns
// whether the property held. Violations fire actions subject to the
// hysteresis options.
//
// A monitor fault — a VM trap, an injected evaluation fault — does NOT
// count as a property violation: the evaluation is abandoned, the fault
// is reported and fed to the circuit breaker, and Evaluate returns true.
// Whether a persistently faulting guardrail then enforces anything is
// the quarantine policy's decision (Options.OnFault), not a side effect
// of one bad run.
//
//guardrails:hotpath
func (m *Monitor) Evaluate(arg float64) bool {
	if !m.running.CompareAndSwap(false, true) {
		return true
	}
	defer m.running.Store(false)

	m.mu.Lock()
	if !m.enabled || m.state == StateQuarantined {
		m.mu.Unlock()
		return true
	}
	shadow := m.opts.ShadowMode || m.state == StateShadow || m.forceShadow
	shadowReason := ""
	switch {
	case m.opts.ShadowMode:
		shadowReason = "shadow-mode"
	case m.state == StateShadow:
		shadowReason = "shadow-state"
	case m.forceShadow:
		shadowReason = "forced-shadow"
	}
	if m.actGate != nil && !shadow && !m.actGate(m.evalIdx) {
		shadow = true
		shadowReason = "act-gate"
	}
	m.evalIdx++
	m.mu.Unlock()

	// The trigger time: hook fires and timer ticks run at the current
	// simulated instant, so Now() here is the triggering hook's
	// timestamp. Reports and retries carry this, not their own later
	// dispatch times.
	trig := m.rt.k.Now()
	m.trigAt = trig
	sink := m.rt.Telemetry()
	prov := m.rt.Provenance()
	if prov != nil {
		m.provBegin(arg, shadow, shadowReason)
	}

	if inj := m.rt.injector(); inj != nil {
		if err := inj.EvalFault(m.Name()); err != nil {
			m.recordFault("injected-trap", err)
			m.provAbandon()
			return true
		}
	}

	needTwoPhase := m.opts.ViolationStreak > 1 && !shadow
	m.suppressActions = needTwoPhase || shadow
	before := m.machine.Steps
	out, err := m.machine.Run(m.c.Program, m, arg)
	now := m.rt.k.Now()

	m.mu.Lock()
	m.stats.Evals++
	m.stats.VMSteps = m.machine.Steps
	m.stats.LastTriggerAt = trig
	m.mu.Unlock()

	if err != nil {
		sink.Eval(int64(trig), m.Name(), m.machine.Steps-before, true)
		m.recordFault(trapKind(err), err)
		m.provAbandon()
		m.accountBudget(m.machine.Steps-before, now)
		return true
	}

	m.mu.Lock()
	m.stats.LastResult = out
	held := out != 0
	fireRecover := false
	twoPhase := false
	fired := false
	if held {
		m.violStreak = 0
		if m.inEpisode {
			m.passStreak++
			if m.opts.RecoveryStreak > 0 && m.passStreak >= m.opts.RecoveryStreak {
				m.inEpisode = false
				m.passStreak = 0
				m.stats.Recoveries++
				fireRecover = m.opts.OnRecover != nil
			}
		}
	} else {
		m.stats.Violations++
		m.violStreak++
		m.passStreak = 0
		if m.violStreak >= m.opts.ViolationStreak {
			m.inEpisode = true
			switch {
			case shadow:
				// Violation observed and counted; no action taken.
			case needTwoPhase:
				twoPhase = true
			default:
				m.stats.ActionsFired++
				fired = true
			}
		}
	}
	m.mu.Unlock()

	if fireRecover {
		m.opts.OnRecover(m)
	}
	if twoPhase {
		// Re-run with actions enabled.
		m.suppressActions = false
		_, err := m.machine.Run(m.c.Program, m, arg)
		m.mu.Lock()
		m.stats.VMSteps = m.machine.Steps
		if err == nil {
			m.stats.ActionsFired++
			fired = true
		} else {
			m.stats.DispatchErrors++
		}
		m.mu.Unlock()
		if err != nil {
			// The action phase trapped after the rule phase succeeded —
			// surface it; a silently dropped action is the one failure
			// mode a guardrail runtime must not have.
			m.recordFault(trapKind(err), fmt.Errorf("action phase: %w", err))
		}
	}
	if m.opts.PublishResult {
		v := 0.0
		if !held {
			v = 1
		}
		m.rt.store.Save("guardrail."+m.Name()+".violated", v)
	}
	// The eval record covers both phases of a two-phase evaluation, so
	// its step count (and virtual trace duration) is the evaluation's
	// whole overhead.
	sink.Eval(int64(trig), m.Name(), m.machine.Steps-before, held)
	m.provEnd(prov, held, twoPhase, m.machine.Steps-before)
	if fired {
		sink.ActionsFired(int64(trig), m.Name())
	}
	m.accountBudget(m.machine.Steps-before, now)
	return held
}

// --- vm.Env implementation -------------------------------------------

// LoadCell implements vm.Env against the resolved feature-store cells.
// A corrupt (NaN) read — from the store or from an injected fault — is
// reported, counted, fed to the breaker, and patched with the cell's
// last known good value so one poisoned feature cannot wedge the rule.
func (m *Monitor) LoadCell(i int32) float64 {
	v := m.rt.store.LoadID(m.cells[i])
	key := m.c.Program.Symbols[i]
	if inj := m.rt.injector(); inj != nil {
		if fv, ok := inj.LoadFault(m.Name(), key, v); ok {
			v = fv
		}
	}
	if math.IsNaN(v) {
		good := m.lastGood[i]
		m.mu.Lock()
		m.stats.LoadFaults++
		m.mu.Unlock()
		if m.provLive {
			m.provFeature(i, good, true)
		}
		m.recordFault("corrupt-load", fmt.Errorf("NaN read from %q, substituting last good value %g", key, good))
		return good
	}
	m.lastGood[i] = v
	if m.provLive {
		m.provFeature(i, v, false)
	}
	return v
}

// StoreCell implements vm.Env. SAVE actions are suppressed during the
// rule-only phase of hysteresis evaluation and in shadow states.
func (m *Monitor) StoreCell(i int32, v float64) {
	if m.suppressActions {
		if m.provLive {
			// The symbol is interned, so recording the suppressed SAVE
			// against it allocates nothing.
			m.prov.AddAction(m.provSyms[i], "save-suppressed")
		}
		return
	}
	if m.provLive {
		m.prov.AddAction(m.provSyms[i], "save")
	}
	m.rt.store.SaveID(m.cells[i], v)
}

// Helper implements vm.Env, dispatching monitor helpers and actions.
// An injected helper fault surfaces as a TrapHelper through the VM.
func (m *Monitor) Helper(h vm.HelperID, args *[5]float64) (float64, error) {
	if inj := m.rt.injector(); inj != nil {
		if err := inj.HelperFault(m.Name(), h); err != nil {
			return 0, err
		}
	}
	switch h {
	case vm.HelperNow:
		return float64(m.rt.k.Now()), nil
	case vm.HelperSqrt:
		if args[0] < 0 {
			return 0, nil
		}
		return math.Sqrt(args[0]), nil
	case vm.HelperLog2:
		if args[0] <= 0 {
			return 0, nil
		}
		return math.Log2(args[0]), nil
	case vm.HelperReport:
		if !m.suppressActions {
			v := actions.Violation{
				Time: m.trigAt, Guardrail: m.Name(), Values: []float64{args[0]},
				Context: m.recorderContext(),
			}
			m.runAction("REPORT", func() error {
				m.rt.Log.Append(v)
				return nil
			}, 0, m.trigAt)
		} else if m.provLive {
			m.prov.AddAction("REPORT", "suppressed")
		}
		return 0, nil
	case vm.HelperAction:
		if !m.suppressActions {
			m.dispatchAction(int(args[0]), args[1:], m.trigAt)
		} else if m.provLive {
			m.prov.AddAction("ACTION", "suppressed")
		}
		return 0, nil
	default:
		return 0, nil
	}
}

// recorderContext snapshots the flight recorder, when configured.
func (m *Monitor) recorderContext() []featurestore.Write {
	if m.opts.Recorder == nil {
		return nil
	}
	return m.opts.Recorder.Recent(m.opts.RecorderContext)
}

// dispatchAction interprets a compiled action index against the
// guardrail's action list and runs it through the retry machinery.
// trig is the simulated time of the triggering hook (or, for
// out-of-band dispatch such as a fail-closed fallback, the dispatch
// time itself).
func (m *Monitor) dispatchAction(idx int, vals []float64, trig kernel.Time) {
	if idx < 0 || idx >= len(m.c.Actions) {
		m.mu.Lock()
		m.stats.DispatchErrors++
		m.mu.Unlock()
		m.rt.Log.Append(actions.Violation{
			Time: trig, Guardrail: m.Name(),
			Note: fmt.Sprintf("action dispatch failed: no action at index %d", idx),
		})
		return
	}
	// vals aliases the VM's argument registers; actionExec copies what it
	// needs before any closure can outlive this call, so no allocation
	// happens on the dispatch path.
	name, exec := m.actionExec(m.c.Actions[idx], vals, trig)
	m.runAction(name, exec, 0, trig)
}

// actionExec binds a compiled action to its backend, returning the
// rendered action name (for logs and the dead-letter queue) and an
// idempotent-enough closure the retry machinery can re-run. vals may
// alias the VM's argument registers, which are reused by the next
// dispatch: anything a closure needs is copied out eagerly here.
func (m *Monitor) actionExec(act spec.Action, vals []float64, trig kernel.Time) (string, func() error) {
	switch a := act.(type) {
	case *spec.ReportAction:
		var saved [compile.MaxReportArgs]float64
		n := 0
		if k := len(a.Args); k > 0 && k <= len(vals) && k <= len(saved) {
			n = copy(saved[:], vals[:k])
		}
		return "REPORT", func() error {
			v := actions.Violation{Time: trig, Guardrail: m.Name(), Context: m.recorderContext()}
			if n > 0 {
				v.Values = append(v.Values, saved[:n]...)
			}
			m.rt.Log.Append(v)
			return nil
		}
	case *spec.ReplaceAction:
		return fmt.Sprintf("REPLACE(%s, %s)", a.Old, a.New), func() error {
			_, err := m.rt.Policies.Replace(a.Old, a.New, m.rt.k.Now())
			return err
		}
	case *spec.RetrainAction:
		return fmt.Sprintf("RETRAIN(%s)", a.Model), func() error {
			if !m.rt.Retrainer.Request(a.Model, m.rt.k.Now()) {
				return fmt.Errorf("retrain %q rejected by rate limit", a.Model)
			}
			return nil
		}
	case *spec.DeprioritizeAction:
		prio := m.opts.DefaultPriority
		if a.Priority != nil && len(vals) > 0 {
			prio = int(vals[0])
		}
		return fmt.Sprintf("DEPRIORITIZE(%s)", a.Target), func() error {
			_, err := m.rt.Deprioritizer.Apply(a.Target, prio)
			return err
		}
	case *spec.SaveAction:
		// SAVE compiles inline into the monitor program, so this path
		// only runs for out-of-band dispatch (fail-closed quarantine):
		// the VM is unavailable, so only constant values can be applied.
		return fmt.Sprintf("SAVE(%s)", a.Key), func() error {
			v, ok := compile.ConstEval(a.Value)
			if !ok {
				return fmt.Errorf("save %q: value %s is not constant outside the VM",
					a.Key, spec.ExprString(a.Value))
			}
			m.rt.store.Save(a.Key, v)
			return nil
		}
	default:
		return fmt.Sprintf("%T", act), func() error {
			return fmt.Errorf("unsupported action %T", act)
		}
	}
}
