package monitor

import (
	"fmt"
	"math"

	"guardrails/internal/actions"
	"guardrails/internal/compile"
	"guardrails/internal/featurestore"
	"guardrails/internal/kernel"
	"guardrails/internal/spec"
	"guardrails/internal/vm"
)

// Options tune a loaded monitor's behavior.
type Options struct {
	// ViolationStreak is the number of consecutive violated evaluations
	// required before actions fire (anti-flap hysteresis, §6). Default 1:
	// act on the first violation, the paper's base semantics.
	ViolationStreak int
	// RecoveryStreak, when positive, invokes OnRecover after that many
	// consecutive passing evaluations following a violation episode.
	RecoveryStreak int
	// OnRecover is called (if non-nil) when a violation episode ends per
	// RecoveryStreak. Typical use: re-enable a learned policy that a
	// REPLACE or SAVE action disabled.
	OnRecover func(m *Monitor)
	// DependencyTrigger, when true, additionally evaluates the monitor
	// whenever any feature-store key the rule reads is written —
	// the §6 alternative to periodic checking. Spec triggers still apply;
	// to measure dependency triggering alone, give the spec a TIMER with
	// a very long interval.
	DependencyTrigger bool
	// PublishResult, when true, writes guardrail.<name>.violated (0/1)
	// to the feature store after each evaluation so that other
	// guardrails can observe this one (used by the oscillation study).
	PublishResult bool
	// DefaultPriority is the demotion value used by DEPRIORITIZE actions
	// without an explicit priority. Default 19 (lowest nice).
	DefaultPriority int
	// ShadowMode evaluates rules and counts violations but suppresses
	// every action (including SAVE stores) — the paper's "loose
	// guardrails... for early warning" deployment style, and the safe
	// way to trial a new guardrail before letting it drive the system.
	ShadowMode bool
	// Recorder, when set, attaches a feature-store flight recorder
	// snapshot (the most recent writes) to every reported violation —
	// A1's "record which inputs triggered the violation".
	Recorder *featurestore.Recorder
	// RecorderContext is how many recent writes each report carries
	// (default 8).
	RecorderContext int
}

func (o *Options) fillDefaults() {
	if o.ViolationStreak <= 0 {
		o.ViolationStreak = 1
	}
	if o.DefaultPriority == 0 {
		o.DefaultPriority = 19
	}
	if o.RecorderContext <= 0 {
		o.RecorderContext = 8
	}
}

// Stats summarizes a monitor's activity.
type Stats struct {
	// Evals counts rule evaluations.
	Evals uint64
	// Violations counts evaluations whose rule conjunction failed.
	Violations uint64
	// ActionsFired counts violation episodes in which actions ran
	// (differs from Violations under hysteresis).
	ActionsFired uint64
	// Recoveries counts completed violation→recovery episodes.
	Recoveries uint64
	// DispatchErrors counts action dispatches that failed at runtime
	// (e.g. unknown policy slot or task group).
	DispatchErrors uint64
	// VMSteps is the total VM instructions executed, the monitor's
	// in-kernel overhead currency.
	VMSteps uint64
	// LastResult is 1 if the most recent evaluation held, 0 if violated.
	LastResult float64
}

// Monitor is a loaded guardrail: a verified VM program bound to kernel
// triggers and the feature store.
type Monitor struct {
	rt    *Runtime
	c     *compile.Compiled
	opts  Options
	cells []featurestore.ID

	machine vm.Machine

	timers  []*kernel.Timer
	detach  []func()
	enabled bool

	// evaluation state
	inEval          bool
	suppressActions bool
	violStreak      int
	passStreak      int
	inEpisode       bool

	stats Stats
}

// Name returns the guardrail name.
func (m *Monitor) Name() string { return m.c.Name }

// Program returns the monitor's compiled VM program.
func (m *Monitor) Program() *vm.Program { return m.c.Program }

// Stats returns a snapshot of the monitor's counters.
func (m *Monitor) Stats() Stats { return m.stats }

// Enabled reports whether the monitor evaluates on triggers.
func (m *Monitor) Enabled() bool { return m.enabled }

// SetEnabled toggles evaluation without unloading (cheap pause/resume).
func (m *Monitor) SetEnabled(v bool) { m.enabled = v }

// arm binds the guardrail's triggers to the kernel.
func (m *Monitor) arm() {
	for _, t := range m.c.Triggers {
		switch tt := t.(type) {
		case *spec.TimerTrigger:
			timer := m.rt.k.Every(kernel.Time(tt.Start), kernel.Time(tt.Interval), kernel.Time(tt.Stop),
				func(now kernel.Time) { m.Evaluate(0) })
			m.timers = append(m.timers, timer)
		case *spec.FuncTrigger:
			detach := m.rt.k.Attach(tt.Site, func(_ *kernel.Kernel, _ string, args []float64) {
				arg := 0.0
				if len(args) > 0 {
					arg = args[0]
				}
				m.Evaluate(arg)
			})
			m.detach = append(m.detach, detach)
		}
	}
	if m.opts.DependencyTrigger {
		for _, key := range m.ruleDependencies() {
			m.rt.store.Watch(key, func(string, float64) {
				if !m.inEval {
					m.Evaluate(0)
				}
			})
		}
	}
}

// ruleDependencies returns the feature-store keys the program loads
// (not the ones it only stores).
func (m *Monitor) ruleDependencies() []string {
	seen := make(map[string]bool)
	var out []string
	for _, in := range m.c.Program.Code {
		if in.Op == vm.OpLoad {
			key := m.c.Program.Symbols[in.Cell]
			if !seen[key] {
				seen[key] = true
				out = append(out, key)
			}
		}
	}
	return out
}

func (m *Monitor) disarm() {
	for _, t := range m.timers {
		t.Stop()
	}
	for _, d := range m.detach {
		d()
	}
	m.timers, m.detach = nil, nil
	m.enabled = false
	// Store watchers (dependency triggers) stay registered but become
	// no-ops through the enabled check in Evaluate.
}

// Evaluate runs the monitor program once with the given trigger argument
// (hook sites pass their first argument; timers pass 0). It returns
// whether the property held. Violations fire actions subject to the
// hysteresis options.
func (m *Monitor) Evaluate(arg float64) bool {
	if !m.enabled || m.inEval {
		return true
	}
	m.inEval = true
	defer func() { m.inEval = false }()

	needTwoPhase := m.opts.ViolationStreak > 1 && !m.opts.ShadowMode
	m.suppressActions = needTwoPhase || m.opts.ShadowMode
	out, err := m.machine.Run(m.c.Program, m, arg)
	if err != nil {
		// A verified program cannot fail at runtime; treat failure as a
		// violated property and surface it loudly in the log.
		m.rt.Log.Append(actions.Violation{
			Time: m.rt.k.Now(), Guardrail: m.Name(),
			Note: fmt.Sprintf("monitor execution error: %v", err),
		})
		m.stats.DispatchErrors++
		out = 0
	}
	m.stats.Evals++
	m.stats.VMSteps = m.machine.Steps
	m.stats.LastResult = out

	held := out != 0
	if held {
		m.violStreak = 0
		if m.inEpisode {
			m.passStreak++
			if m.opts.RecoveryStreak > 0 && m.passStreak >= m.opts.RecoveryStreak {
				m.inEpisode = false
				m.passStreak = 0
				m.stats.Recoveries++
				if m.opts.OnRecover != nil {
					m.opts.OnRecover(m)
				}
			}
		}
	} else {
		m.stats.Violations++
		m.violStreak++
		m.passStreak = 0
		if m.violStreak >= m.opts.ViolationStreak {
			m.inEpisode = true
			switch {
			case m.opts.ShadowMode:
				// Violation observed and counted; no action taken.
			case needTwoPhase:
				// Re-run with actions enabled.
				m.suppressActions = false
				if _, err := m.machine.Run(m.c.Program, m, arg); err == nil {
					m.stats.ActionsFired++
				} else {
					m.stats.DispatchErrors++
				}
			default:
				m.stats.ActionsFired++
			}
		}
	}
	if m.opts.PublishResult {
		v := 0.0
		if !held {
			v = 1
		}
		m.rt.store.Save("guardrail."+m.Name()+".violated", v)
	}
	return held
}

// --- vm.Env implementation -------------------------------------------

// LoadCell implements vm.Env against the resolved feature-store cells.
func (m *Monitor) LoadCell(i int32) float64 {
	return m.rt.store.LoadID(m.cells[i])
}

// StoreCell implements vm.Env. SAVE actions are suppressed during the
// rule-only phase of hysteresis evaluation.
func (m *Monitor) StoreCell(i int32, v float64) {
	if m.suppressActions {
		return
	}
	m.rt.store.SaveID(m.cells[i], v)
}

// Helper implements vm.Env, dispatching monitor helpers and actions.
func (m *Monitor) Helper(h vm.HelperID, args *[5]float64) float64 {
	switch h {
	case vm.HelperNow:
		return float64(m.rt.k.Now())
	case vm.HelperSqrt:
		if args[0] < 0 {
			return 0
		}
		return math.Sqrt(args[0])
	case vm.HelperLog2:
		if args[0] <= 0 {
			return 0
		}
		return math.Log2(args[0])
	case vm.HelperReport:
		if !m.suppressActions {
			m.rt.Log.Append(actions.Violation{
				Time: m.rt.k.Now(), Guardrail: m.Name(), Values: []float64{args[0]},
				Context: m.recorderContext(),
			})
		}
		return 0
	case vm.HelperAction:
		if !m.suppressActions {
			m.dispatchAction(int(args[0]), args[1:])
		}
		return 0
	default:
		return 0
	}
}

// recorderContext snapshots the flight recorder, when configured.
func (m *Monitor) recorderContext() []featurestore.Write {
	if m.opts.Recorder == nil {
		return nil
	}
	return m.opts.Recorder.Recent(m.opts.RecorderContext)
}

// dispatchAction interprets a compiled action index against the
// guardrail's action list.
func (m *Monitor) dispatchAction(idx int, vals []float64) {
	if idx < 0 || idx >= len(m.c.Actions) {
		m.stats.DispatchErrors++
		return
	}
	now := m.rt.k.Now()
	fail := func(err error) {
		m.stats.DispatchErrors++
		m.rt.Log.Append(actions.Violation{
			Time: now, Guardrail: m.Name(),
			Note: fmt.Sprintf("action dispatch failed: %v", err),
		})
	}
	switch a := m.c.Actions[idx].(type) {
	case *spec.ReportAction:
		v := actions.Violation{Time: now, Guardrail: m.Name(), Context: m.recorderContext()}
		if n := len(a.Args); n > 0 {
			v.Values = append(v.Values, vals[:n]...)
		}
		m.rt.Log.Append(v)
	case *spec.ReplaceAction:
		if _, err := m.rt.Policies.Replace(a.Old, a.New, now); err != nil {
			fail(err)
		}
	case *spec.RetrainAction:
		m.rt.Retrainer.Request(a.Model, now)
	case *spec.DeprioritizeAction:
		prio := m.opts.DefaultPriority
		if a.Priority != nil {
			prio = int(vals[0])
		}
		if _, err := m.rt.Deprioritizer.Apply(a.Target, prio); err != nil {
			fail(err)
		}
	default:
		fail(fmt.Errorf("unsupported action %T", a))
	}
}
