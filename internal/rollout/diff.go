// Semantic deployment diff: what actually changed between two
// deployment generations, at guardrail granularity — triggers, rules,
// actions, and the special case operators care about most, a
// threshold-only retune (same rule shape, different constants). The
// diff drives two things: the rollout report an operator reads before
// approving a canary, and the *scoped* interference re-analysis — only
// the changed guardrails and the unchanged ones coupled to them through
// shared hook sites or feature-store keys are re-analyzed, so canary
// admission stays cheap on large fleets where one guardrail changed.
package rollout

import (
	"fmt"
	"sort"
	"strings"

	"guardrails/internal/compile"
	"guardrails/internal/spec"
	"guardrails/internal/spec/interfere"
)

// ChangeKind classifies one guardrail's fate across two generations.
type ChangeKind int

// Change kinds.
const (
	// Unchanged: the guardrail is semantically identical in both
	// generations.
	Unchanged ChangeKind = iota
	// Added: the guardrail exists only in the new generation.
	Added
	// Removed: the guardrail exists only in the old generation.
	Removed
	// Retuned: only numeric constants changed (rule thresholds, SAVE
	// values, report arguments) — the shape of every trigger, rule, and
	// action is identical.
	Retuned
	// Modified: structural changes — triggers, rule shapes, or the
	// action list differ.
	Modified
)

// String names the kind.
func (k ChangeKind) String() string {
	switch k {
	case Unchanged:
		return "unchanged"
	case Added:
		return "added"
	case Removed:
		return "removed"
	case Retuned:
		return "retuned"
	case Modified:
		return "modified"
	default:
		return fmt.Sprintf("kind(%d)", int(k))
	}
}

// MarshalJSON renders the kind name, keeping rollout reports readable.
func (k ChangeKind) MarshalJSON() ([]byte, error) {
	return []byte(fmt.Sprintf("%q", k.String())), nil
}

// Change is one guardrail's diff entry.
type Change struct {
	// Name is the guardrail name.
	Name string `json:"name"`
	// Kind classifies the change.
	Kind ChangeKind `json:"kind"`
	// Triggers/Rules/Actions flag which sections changed (Modified and
	// Retuned entries).
	Triggers bool `json:"triggers,omitempty"`
	Rules    bool `json:"rules,omitempty"`
	Actions  bool `json:"actions,omitempty"`
	// Details are human-readable per-item changes, e.g.
	// "rule 1 threshold: 0.05 -> 0.02".
	Details []string `json:"details,omitempty"`
}

// String renders "name: kind (details...)".
func (c Change) String() string {
	s := fmt.Sprintf("%s: %s", c.Name, c.Kind)
	if len(c.Details) > 0 {
		s += " (" + strings.Join(c.Details, "; ") + ")"
	}
	return s
}

// Diff is the semantic difference between two deployment generations.
type Diff struct {
	// Changes lists every guardrail of either generation, sorted by
	// name.
	Changes []Change `json:"changes"`
}

// Changed returns the names of guardrails that differ (everything but
// Unchanged), sorted.
func (d *Diff) Changed() []string {
	var out []string
	for _, c := range d.Changes {
		if c.Kind != Unchanged {
			out = append(out, c.Name)
		}
	}
	return out
}

// Change returns the entry for a guardrail name (zero Change if the
// name appears in neither generation).
func (d *Diff) Change(name string) Change {
	for _, c := range d.Changes {
		if c.Name == name {
			return c
		}
	}
	return Change{}
}

// Empty reports a diff with no semantic changes.
func (d *Diff) Empty() bool { return len(d.Changed()) == 0 }

// Summary renders a one-line count by kind.
func (d *Diff) Summary() string {
	counts := map[ChangeKind]int{}
	for _, c := range d.Changes {
		counts[c.Kind]++
	}
	var parts []string
	for _, k := range []ChangeKind{Added, Removed, Retuned, Modified, Unchanged} {
		if counts[k] > 0 {
			parts = append(parts, fmt.Sprintf("%d %s", counts[k], k))
		}
	}
	if len(parts) == 0 {
		return "empty deployment"
	}
	return strings.Join(parts, ", ")
}

// Compare computes the semantic diff from the old generation to the
// new one. Comparison is over the checked ASTs (canonical source
// rendering), so formatting and comment differences never count as
// changes.
func Compare(old, new []*compile.Compiled) *Diff {
	oldBy := map[string]*compile.Compiled{}
	for _, c := range old {
		oldBy[c.Name] = c
	}
	newBy := map[string]*compile.Compiled{}
	for _, c := range new {
		newBy[c.Name] = c
	}
	names := map[string]bool{}
	for n := range oldBy {
		names[n] = true
	}
	for n := range newBy {
		names[n] = true
	}
	d := &Diff{}
	for n := range names {
		oc, inOld := oldBy[n]
		nc, inNew := newBy[n]
		switch {
		case !inOld:
			d.Changes = append(d.Changes, Change{Name: n, Kind: Added})
		case !inNew:
			d.Changes = append(d.Changes, Change{Name: n, Kind: Removed})
		default:
			d.Changes = append(d.Changes, compareGuardrail(oc.Source, nc.Source))
		}
	}
	sort.Slice(d.Changes, func(i, j int) bool { return d.Changes[i].Name < d.Changes[j].Name })
	return d
}

// compareGuardrail diffs one guardrail present in both generations.
func compareGuardrail(old, new *spec.Guardrail) Change {
	ch := Change{Name: new.Name}

	oldTrig := renderAll(len(old.Triggers), func(i int) string { return old.Triggers[i].String() })
	newTrig := renderAll(len(new.Triggers), func(i int) string { return new.Triggers[i].String() })
	ch.Triggers = !equalStrings(oldTrig, newTrig)
	if ch.Triggers {
		ch.Details = append(ch.Details, sectionDetail("trigger", oldTrig, newTrig)...)
	}

	rulesChanged, rulesRetunedOnly := diffExprList("rule", old.Rules, new.Rules, &ch.Details)
	ch.Rules = rulesChanged

	oldAct := renderAll(len(old.Actions), func(i int) string { return old.Actions[i].String() })
	newAct := renderAll(len(new.Actions), func(i int) string { return new.Actions[i].String() })
	actionsChanged := !equalStrings(oldAct, newAct)
	actionsRetunedOnly := true
	if actionsChanged {
		oldSkel := renderAll(len(old.Actions), func(i int) string { return actionSkeleton(old.Actions[i]) })
		newSkel := renderAll(len(new.Actions), func(i int) string { return actionSkeleton(new.Actions[i]) })
		actionsRetunedOnly = equalStrings(oldSkel, newSkel)
		if actionsRetunedOnly {
			for i := range new.Actions {
				if oldAct[i] != newAct[i] {
					ch.Details = append(ch.Details,
						fmt.Sprintf("action %d retuned: %s -> %s", i, oldAct[i], newAct[i]))
				}
			}
		} else {
			ch.Details = append(ch.Details, sectionDetail("action", oldAct, newAct)...)
		}
	}
	ch.Actions = actionsChanged

	switch {
	case !ch.Triggers && !rulesChanged && !actionsChanged:
		ch.Kind = Unchanged
	case !ch.Triggers && rulesRetunedOnly && actionsRetunedOnly:
		ch.Kind = Retuned
	default:
		ch.Kind = Modified
	}
	return ch
}

// diffExprList diffs an expression section, detecting threshold-only
// retunes: same expression skeletons, different numeric literals.
// Returns (changed, retunedOnly); retunedOnly is vacuously true when
// nothing changed.
func diffExprList(section string, old, new []spec.Expr, details *[]string) (changed, retunedOnly bool) {
	oldFull := renderAll(len(old), func(i int) string { return spec.ExprString(old[i]) })
	newFull := renderAll(len(new), func(i int) string { return spec.ExprString(new[i]) })
	if equalStrings(oldFull, newFull) {
		return false, true
	}
	oldSkel := renderAll(len(old), func(i int) string { return exprSkeleton(old[i]) })
	newSkel := renderAll(len(new), func(i int) string { return exprSkeleton(new[i]) })
	if !equalStrings(oldSkel, newSkel) {
		*details = append(*details, sectionDetail(section, oldFull, newFull)...)
		return true, false
	}
	// Same shape: report the literal deltas per expression.
	for i := range new {
		if oldFull[i] == newFull[i] {
			continue
		}
		var ol, nl []float64
		exprLiterals(old[i], &ol)
		exprLiterals(new[i], &nl)
		var deltas []string
		for j := range nl {
			if j < len(ol) && ol[j] != nl[j] {
				deltas = append(deltas, fmt.Sprintf("%g -> %g", ol[j], nl[j]))
			}
		}
		*details = append(*details,
			fmt.Sprintf("%s %d threshold: %s", section, i, strings.Join(deltas, ", ")))
	}
	return true, true
}

// sectionDetail renders added/removed/modified lines for a structurally
// changed section.
func sectionDetail(section string, old, new []string) []string {
	var out []string
	n := len(old)
	if len(new) > n {
		n = len(new)
	}
	for i := 0; i < n; i++ {
		switch {
		case i >= len(old):
			out = append(out, fmt.Sprintf("%s %d added: %s", section, i, new[i]))
		case i >= len(new):
			out = append(out, fmt.Sprintf("%s %d removed: %s", section, i, old[i]))
		case old[i] != new[i]:
			out = append(out, fmt.Sprintf("%s %d: %s -> %s", section, i, old[i], new[i]))
		}
	}
	return out
}

func renderAll(n int, f func(int) string) []string {
	out := make([]string, n)
	for i := range out {
		out[i] = f(i)
	}
	return out
}

func equalStrings(a, b []string) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// exprSkeleton renders an expression with every numeric literal masked,
// so two expressions have equal skeletons iff they differ only in
// constants.
func exprSkeleton(e spec.Expr) string {
	switch n := e.(type) {
	case *spec.NumLit:
		return "<num>"
	case *spec.UnaryExpr:
		return n.Op.String() + "(" + exprSkeleton(n.X) + ")"
	case *spec.BinaryExpr:
		return "(" + exprSkeleton(n.X) + " " + n.Op.String() + " " + exprSkeleton(n.Y) + ")"
	case *spec.CallExpr:
		parts := make([]string, len(n.Args))
		for i, a := range n.Args {
			parts[i] = exprSkeleton(a)
		}
		return n.Fn + "(" + strings.Join(parts, ", ") + ")"
	default:
		return spec.ExprString(e)
	}
}

// exprLiterals collects the numeric literals of an expression in
// left-to-right order.
func exprLiterals(e spec.Expr, out *[]float64) {
	switch n := e.(type) {
	case *spec.NumLit:
		*out = append(*out, n.Value)
	case *spec.UnaryExpr:
		exprLiterals(n.X, out)
	case *spec.BinaryExpr:
		exprLiterals(n.X, out)
		exprLiterals(n.Y, out)
	case *spec.CallExpr:
		for _, a := range n.Args {
			exprLiterals(a, out)
		}
	}
}

// actionSkeleton renders an action with its value expressions masked.
func actionSkeleton(a spec.Action) string {
	switch act := a.(type) {
	case *spec.SaveAction:
		return fmt.Sprintf("SAVE(%s, %s)", act.Key, exprSkeleton(act.Value))
	case *spec.ReportAction:
		parts := make([]string, len(act.Args))
		for i, arg := range act.Args {
			parts[i] = exprSkeleton(arg)
		}
		return fmt.Sprintf("REPORT(%s)", strings.Join(parts, ", "))
	case *spec.DeprioritizeAction:
		if act.Priority != nil {
			return fmt.Sprintf("DEPRIORITIZE(%s, %s)", act.Target, exprSkeleton(act.Priority))
		}
		return a.String()
	default:
		return a.String()
	}
}

// --- scoped interference re-analysis -----------------------------------

// Scope narrows a full new-generation deployment to the slice the
// canary admission must re-analyze: every changed (added, retuned,
// modified) guardrail, plus the fixpoint closure of unchanged
// guardrails coupled to the slice — sharing a FUNCTION hook site,
// sharing a feature key at least one side writes, or both timer-driven
// while sharing a written key. Guardrails outside the scope cannot have
// new interference: their programs and all their coupled peers are
// byte-identical to the already-admitted generation.
//
// The returned names list the scoped guardrails (sorted); the returned
// deployment shares the input's features and budgets but carries only
// the scoped monitors.
func Scope(d *Diff, dep *interfere.Deployment) (*interfere.Deployment, []string) {
	inScope := map[string]bool{}
	for _, name := range d.Changed() {
		inScope[name] = true
	}

	type coupling struct {
		sites  map[string]bool
		loads  map[string]bool
		saves  map[string]bool
		timers bool
	}
	couple := make(map[string]*coupling, len(dep.Monitors))
	for _, c := range dep.Monitors {
		cp := &coupling{sites: map[string]bool{}, loads: map[string]bool{}, saves: map[string]bool{}}
		for _, t := range c.Triggers {
			switch tt := t.(type) {
			case *spec.FuncTrigger:
				cp.sites[tt.Site] = true
			case *spec.TimerTrigger:
				cp.timers = true
			}
		}
		for _, r := range c.Source.Rules {
			exprKeys(r, cp.loads)
		}
		for _, a := range c.Source.Actions {
			switch act := a.(type) {
			case *spec.SaveAction:
				cp.saves[act.Key] = true
				exprKeys(act.Value, cp.loads)
			case *spec.ReportAction:
				for _, arg := range act.Args {
					exprKeys(arg, cp.loads)
				}
			case *spec.DeprioritizeAction:
				if act.Priority != nil {
					exprKeys(act.Priority, cp.loads)
				}
			}
		}
		couple[c.Name] = cp
	}

	coupled := func(a, b *coupling) bool {
		for s := range a.sites {
			if b.sites[s] {
				return true
			}
		}
		// A written key read or written by the other side couples the
		// pair (SAVE/SAVE conflicts, SAVE→LOAD refinement and cycles).
		for k := range a.saves {
			if b.loads[k] || b.saves[k] {
				return true
			}
		}
		for k := range b.saves {
			if a.loads[k] || a.saves[k] {
				return true
			}
		}
		// Two timer-driven guardrails can co-fire (timer coincidence);
		// that only matters when they also touch a common written key,
		// which the checks above caught. Pure timer overlap with
		// disjoint state cannot interfere.
		return false
	}

	// Fixpoint closure over the coupling relation.
	for changed := true; changed; {
		changed = false
		for _, c := range dep.Monitors {
			if inScope[c.Name] {
				continue
			}
			for other := range inScope {
				oc, ok := couple[other]
				if !ok {
					continue // removed guardrail: no longer in the new deployment
				}
				if coupled(couple[c.Name], oc) {
					inScope[c.Name] = true
					changed = true
					break
				}
			}
		}
	}

	scoped := &interfere.Deployment{
		Features:    dep.Features,
		HookBudget:  dep.HookBudget,
		HookBudgets: dep.HookBudgets,
	}
	var names []string
	for _, c := range dep.Monitors {
		if inScope[c.Name] {
			scoped.Monitors = append(scoped.Monitors, c)
			names = append(names, c.Name)
		}
	}
	sort.Strings(names)
	return scoped, names
}

// exprKeys collects the feature keys an expression reads.
func exprKeys(e spec.Expr, out map[string]bool) {
	switch n := e.(type) {
	case *spec.LoadExpr:
		out[n.Key] = true
	case *spec.IdentExpr:
		out[n.Name] = true
	case *spec.UnaryExpr:
		exprKeys(n.X, out)
	case *spec.BinaryExpr:
		exprKeys(n.X, out)
		exprKeys(n.Y, out)
	case *spec.CallExpr:
		for _, a := range n.Args {
			exprKeys(a, out)
		}
	}
}
