package rollout

import (
	"fmt"

	"guardrails/internal/monitor"
	"guardrails/internal/telemetry"
)

// Gates are the telemetry thresholds a candidate generation must stay
// inside during its shadow and canary windows. A nil *Gates in
// Config means DefaultGates; the zero value itself is a legitimate
// maximally strict configuration (no violation-rate regression, no
// action failures, no faults tolerated).
type Gates struct {
	// MaxViolationRateDelta is how much higher the candidate's
	// violation rate (violations per evaluation) may be than its
	// incumbent's over the window. Candidates for *added* guardrails
	// (no incumbent) are held against a zero baseline.
	MaxViolationRateDelta float64
	// MaxActionFailureRate is the tolerated fraction of the candidate's
	// action dispatch attempts that fail (retries plus dead letters per
	// dispatch). Only gated once the candidate dispatches actions, i.e.
	// in the canary stage.
	MaxActionFailureRate float64
	// MaxFaults is the number of candidate monitor faults (VM traps,
	// corrupt loads, circuit-breaker trips) tolerated per window.
	MaxFaults uint64
	// MaxMeanVMSteps caps the candidate's mean VM steps per evaluation
	// — the certified-overhead budget in the runtime's latency
	// currency. 0 disables the gate.
	MaxMeanVMSteps float64
	// AllowSilentCandidate skips the requirement that the candidate
	// evaluated at least once per window. Leave false: a candidate that
	// never ran is indistinguishable from a mis-wired trigger.
	AllowSilentCandidate bool
}

// DefaultGates returns the default promotion gates.
func DefaultGates() Gates {
	return Gates{
		MaxViolationRateDelta: 0.25,
		MaxActionFailureRate:  0.10,
		MaxFaults:             0,
	}
}

// lane aggregates one subject's telemetry over a gate window.
type lane struct {
	Evals      uint64
	Violations uint64
	Faults     uint64
	Dispatches uint64
	Failures   uint64
	Steps      float64
}

func (l lane) violationRate() float64 {
	if l.Evals == 0 {
		return 0
	}
	return float64(l.Violations) / float64(l.Evals)
}

func (l lane) failureRate() float64 {
	if l.Dispatches == 0 {
		return 0
	}
	return float64(l.Failures) / float64(l.Dispatches)
}

func (l lane) meanSteps() float64 {
	if l.Evals == 0 {
		return 0
	}
	return l.Steps / float64(l.Evals)
}

// windowLanes reduces the flight-recorder window since start into
// per-subject lanes. ok=false means the sink is absent or the ring
// wrapped past the window start — callers must fall back to counter
// deltas. truncated distinguishes the wrap case (counted on the sink
// as flight_window_truncated_total) from a system with no flight
// recorder at all.
func windowLanes(sink *telemetry.Sink, start telemetry.Time) (lanes map[string]lane, ok, truncated bool) {
	f := sink.Flight()
	if f == nil {
		return nil, false, false
	}
	events, truncated := f.EventsSince(start)
	if truncated {
		sink.FlightWindowTruncated()
		return nil, false, true
	}
	lanes = map[string]lane{}
	for _, e := range events {
		l := lanes[e.Subject]
		switch e.Kind {
		case telemetry.KindEval:
			l.Evals++
			l.Steps += e.Value
		case telemetry.KindViolation:
			l.Violations++
		case telemetry.KindFault, telemetry.KindQuarantine:
			l.Faults++
		case telemetry.KindAction:
			l.Dispatches++
		case telemetry.KindActionRetry, telemetry.KindDeadLetter:
			l.Failures++
		default:
			continue
		}
		lanes[e.Subject] = l
	}
	return lanes, true, false
}

// statsLane derives a window lane from monitor counter deltas — the
// fallback when no flight recorder covers the window. Stats carry no
// per-dispatch attempt count, so dispatches are approximated by action
// episodes and failures by dispatch errors.
func statsLane(now, start monitor.Stats) lane {
	return lane{
		Evals:      now.Evals - start.Evals,
		Violations: now.Violations - start.Violations,
		Faults:     (now.Traps - start.Traps) + (now.Quarantines - start.Quarantines),
		Dispatches: now.ActionsFired - start.ActionsFired,
		Failures:   now.DispatchErrors - start.DispatchErrors,
		Steps:      float64(now.VMSteps - start.VMSteps),
	}
}

// check gates one candidate/incumbent lane pair. A non-empty return is
// the gate-failure reason.
func (g Gates) check(stage, name string, cand, inc lane, hasIncumbent bool) string {
	if cand.Faults > g.MaxFaults {
		return fmt.Sprintf("%s: candidate %s faulted %d times (max %d)",
			stage, name, cand.Faults, g.MaxFaults)
	}
	if cand.Evals == 0 && !g.AllowSilentCandidate {
		return fmt.Sprintf("%s: candidate %s never evaluated in the window", stage, name)
	}
	baseline := 0.0
	if hasIncumbent {
		baseline = inc.violationRate()
	}
	if delta := cand.violationRate() - baseline; delta > g.MaxViolationRateDelta {
		return fmt.Sprintf("%s: candidate %s violation rate %.3f exceeds incumbent %.3f by %.3f (max delta %.3f)",
			stage, name, cand.violationRate(), baseline, delta, g.MaxViolationRateDelta)
	}
	if rate := cand.failureRate(); rate > g.MaxActionFailureRate {
		return fmt.Sprintf("%s: candidate %s action failure rate %.3f (%d/%d dispatches, max %.3f)",
			stage, name, rate, cand.Failures, cand.Dispatches, g.MaxActionFailureRate)
	}
	if g.MaxMeanVMSteps > 0 {
		if mean := cand.meanSteps(); mean > g.MaxMeanVMSteps {
			return fmt.Sprintf("%s: candidate %s mean %.1f VM steps/eval (budget %.1f)",
				stage, name, mean, g.MaxMeanVMSteps)
		}
	}
	return ""
}
