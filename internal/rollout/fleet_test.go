package rollout

import (
	"strings"
	"testing"

	"guardrails/internal/featurestore"
	"guardrails/internal/kernel"
	"guardrails/internal/monitor"
	"guardrails/internal/telemetry"
)

// fleetHarness replicates the single-controller harness across n pool
// shards: each shard gets its own store, runtime, telemetry, incumbent
// deployment, and the same deterministic io_done workload.
func fleetHarness(t *testing.T, n int) (*Fleet, *kernel.Pool, []*monitor.Runtime, []*featurestore.Store) {
	t.Helper()
	pool := kernel.NewPool(n, 0)
	var (
		ctrls []*Controller
		rts   []*monitor.Runtime
		sts   []*featurestore.Store
	)
	for i := 0; i < n; i++ {
		k := pool.Shard(i)
		st := featurestore.New()
		rt := monitor.New(k, st)
		sink := telemetry.New(func() telemetry.Time { return int64(k.Now()) }, 1<<15)
		rt.SetTelemetry(sink)
		k.SetTelemetry(sink)
		inc := mustCompile(t, latGuard)
		if _, err := rt.Load(inc[0], monitor.Options{}); err != nil {
			t.Fatal(err)
		}
		ctl := NewController(rt)
		ctl.Adopt(inc)
		j := 0
		k.Every(0, kernel.Millisecond, 0, func(now kernel.Time) {
			st.Save("lat_ma", 0.10+0.05*float64(j%10))
			k.Fire("io_done", 0)
			j++
		})
		ctrls = append(ctrls, ctl)
		rts = append(rts, rt)
		sts = append(sts, st)
	}
	return NewFleet(pool, ctrls), pool, rts, sts
}

func TestFleetHealthyPromotesEveryShard(t *testing.T) {
	f, pool, rts, _ := fleetHarness(t, 3)
	cand := mustCompile(t, strings.Replace(latGuard, "0.5", "0.56", 1))
	if err := f.Begin(cand, fastCfg()); err != nil {
		t.Fatal(err)
	}
	if got := f.Phase(); got != PhaseAdmitting {
		t.Fatalf("fleet phase after Begin = %s", got)
	}
	pool.RunUntil(2 * kernel.Second)

	if got := f.Phase(); got != PhasePromoted {
		t.Fatalf("fleet phase = %s (%v), want promoted", got, f.Phases())
	}
	for i := range rts {
		if got := f.Controller(i).FleetGeneration(); got != 2 {
			t.Errorf("shard %d generation = %d, want 2", i, got)
		}
		if rts[i].Monitor("lat-guard") == nil {
			t.Errorf("shard %d lost lat-guard after promotion", i)
		}
	}
	// Healthy rollouts leave only the begin record at the fleet level.
	for _, r := range f.History() {
		if r.Event != "fleet_begin" {
			t.Errorf("unexpected fleet record: %+v", r)
		}
	}
}

func TestFleetAbortsSiblingsWhenShardDies(t *testing.T) {
	f, pool, rts, _ := fleetHarness(t, 3)
	// Shard 0's admission refuses permanently; shards 1 and 2 would
	// happily promote the same candidate.
	f.Controller(0).SetAdmitFunc(func(int, map[string]int, []kernel.HookLoad) error {
		return &kernel.AdmissionError{Sites: []kernel.OverloadedSite{
			{Site: "io_done", Budget: 1, Total: 99},
		}}
	})
	cand := mustCompile(t, strings.Replace(latGuard, "0.5", "0.56", 1))
	if err := f.Begin(cand, fastCfg()); err != nil {
		t.Fatal(err)
	}
	pool.RunUntil(2 * kernel.Second)

	phases := f.Phases()
	if phases[0] != PhaseFailed {
		t.Fatalf("shard 0 phase = %s, want failed", phases[0])
	}
	for i := 1; i < 3; i++ {
		if phases[i] != PhaseRolledBack && phases[i] != PhaseFailed {
			t.Errorf("shard %d phase = %s, want aborted (rolled_back or failed)", i, phases[i])
		}
		if !strings.Contains(f.Controller(i).Reason(), "aborted: shard 0") {
			t.Errorf("shard %d reason = %q, want supervisor abort", i, f.Controller(i).Reason())
		}
	}
	if got := f.Phase(); got.Terminal() == false || got == PhasePromoted {
		t.Errorf("fleet phase = %s, want terminal non-promoted", got)
	}
	// No shard promoted: every runtime still runs generation 1 with only
	// the incumbent loaded.
	for i, rt := range rts {
		if gen := f.Controller(i).FleetGeneration(); gen != 1 {
			t.Errorf("shard %d generation = %d, want 1", i, gen)
		}
		if n := len(rt.Monitors()); n != 1 {
			t.Errorf("shard %d has %d monitors after abort, want 1", i, n)
		}
	}
	found := false
	for _, r := range f.History() {
		if r.Event == "fleet_abort" {
			found = true
		}
		if r.Event == "fleet_divergence" {
			t.Errorf("unexpected divergence record: %+v", r)
		}
	}
	if !found {
		t.Error("no fleet_abort record in fleet history")
	}
}

func TestFleetBeginAllOrNothing(t *testing.T) {
	f, _, _, _ := fleetHarness(t, 2)
	cand := mustCompile(t, strings.Replace(latGuard, "0.5", "0.56", 1))
	// Shard 1 is already mid-rollout: the fleet Begin must refuse and
	// abort shard 0's fresh rollout rather than leave it orphaned.
	if err := f.Controller(1).Begin(cand, fastCfg()); err != nil {
		t.Fatal(err)
	}
	other := mustCompile(t, strings.Replace(latGuard, "0.5", "0.58", 1))
	err := f.Begin(other, fastCfg())
	if err == nil {
		t.Fatal("fleet Begin succeeded with a shard mid-rollout")
	}
	if got := f.Controller(0).Phase(); got != PhaseFailed {
		t.Errorf("shard 0 phase = %s, want failed (aborted before exposure)", got)
	}
	if !strings.Contains(f.Controller(0).Reason(), "shard 1 refused") {
		t.Errorf("shard 0 reason = %q", f.Controller(0).Reason())
	}
}

func TestFleetBreakglassAppliesAtBarrier(t *testing.T) {
	f, pool, rts, sts := fleetHarness(t, 2)
	pool.RunUntil(100 * kernel.Millisecond)
	for i, st := range sts {
		if st.Load("alert") != 1 {
			t.Fatalf("shard %d incumbent never acted", i)
		}
		st.Save("alert", 0)
	}

	f.Breakglass("lat-guard", false)
	pool.RunUntil(400 * kernel.Millisecond)
	for i, rt := range rts {
		if !rt.Monitor("lat-guard").ForcedShadow() {
			t.Errorf("shard %d not forced to shadow", i)
		}
		if sts[i].Load("alert") != 0 {
			t.Errorf("shard %d quarantined guardrail still acting", i)
		}
	}

	f.BreakglassRelease("lat-guard")
	pool.RunUntil(700 * kernel.Millisecond)
	for i, rt := range rts {
		if rt.Monitor("lat-guard").ForcedShadow() {
			t.Errorf("shard %d still in shadow after release", i)
		}
		if sts[i].Load("alert") != 1 {
			t.Errorf("shard %d released guardrail not acting", i)
		}
	}
	events := []string{}
	for _, r := range f.History() {
		events = append(events, r.Event)
	}
	if len(events) != 2 || events[0] != "fleet_breakglass" || events[1] != "fleet_breakglass_release" {
		t.Errorf("fleet history = %v", events)
	}
}

func TestAbort(t *testing.T) {
	ctl, rt, k, _ := harness(t)
	if ctl.Abort("nothing in flight") {
		t.Fatal("Abort with no rollout returned true")
	}
	cand := mustCompile(t, strings.Replace(latGuard, "0.5", "0.56", 1))
	if err := ctl.Begin(cand, fastCfg()); err != nil {
		t.Fatal(err)
	}
	// Still admitting: abort fails static, nothing was exposed.
	if !ctl.Abort("operator says no") {
		t.Fatal("Abort during admission returned false")
	}
	if got := ctl.Phase(); got != PhaseFailed {
		t.Fatalf("phase after admitting abort = %s, want failed", got)
	}
	if ctl.Abort("again") {
		t.Error("Abort on terminal rollout returned true")
	}

	// Mid-shadow: abort rolls back and unloads the trial copy.
	if err := ctl.Begin(cand, fastCfg()); err != nil {
		t.Fatal(err)
	}
	k.RunUntil(100 * kernel.Millisecond)
	if got := ctl.Phase(); got != PhaseShadow {
		t.Fatalf("phase = %s, want shadow", got)
	}
	if !ctl.Abort("gate flaked") {
		t.Fatal("Abort during shadow returned false")
	}
	if got := ctl.Phase(); got != PhaseRolledBack {
		t.Fatalf("phase after shadow abort = %s, want rolled_back", got)
	}
	if !strings.Contains(ctl.Reason(), "aborted: gate flaked") {
		t.Errorf("reason = %q", ctl.Reason())
	}
	if len(rt.Monitors()) != 1 || rt.Monitor("lat-guard") == nil {
		t.Errorf("monitors after abort: %v", rt.Monitors())
	}
	// The machine is reusable after an abort.
	if err := ctl.Begin(cand, fastCfg()); err != nil {
		t.Fatal(err)
	}
	k.RunUntil(3 * kernel.Second)
	if got := ctl.Phase(); got != PhasePromoted {
		t.Fatalf("phase after post-abort retry = %s (reason %q), want promoted", got, ctl.Reason())
	}
}
