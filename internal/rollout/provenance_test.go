package rollout

import (
	"strings"
	"testing"

	"guardrails/internal/featurestore"
	"guardrails/internal/kernel"
	"guardrails/internal/monitor"
	"guardrails/internal/provenance"
	"guardrails/internal/telemetry"
)

// provHarness is the standard harness with a provenance recorder and a
// configurable flight-ring capacity (small caps force the gate's
// truncation fallback).
func provHarness(t *testing.T, eventCap int) (*Controller, *monitor.Runtime, *kernel.Kernel, *provenance.Recorder) {
	t.Helper()
	k := kernel.New()
	st := featurestore.New()
	rt := monitor.New(k, st)
	sink := telemetry.New(func() telemetry.Time { return int64(k.Now()) }, eventCap)
	rt.SetTelemetry(sink)
	k.SetTelemetry(sink)
	rec := provenance.New(1024, 0)
	rt.SetProvenance(rec)

	inc := mustCompile(t, latGuard)
	if _, err := rt.Load(inc[0], monitor.Options{}); err != nil {
		t.Fatal(err)
	}
	ctl := NewController(rt)
	ctl.Adopt(inc)

	i := 0
	k.Every(0, kernel.Millisecond, 0, func(now kernel.Time) {
		st.Save("lat_ma", 0.10+0.05*float64(i%10))
		k.Fire("io_done", 0)
		i++
	})
	return ctl, rt, k, rec
}

// gateRecords filters the recorder's retained gate records.
func gateRecords(rec *provenance.Recorder) []provenance.Record {
	var out []provenance.Record
	for _, r := range rec.Records() {
		if r.Kind == provenance.KindGate {
			out = append(out, r)
		}
	}
	return out
}

// TestGateRecordsHealthyPromotion: a promoting rollout leaves one gate
// record per stage, scored from the flight window, with the exact lanes
// the gate saw attached.
func TestGateRecordsHealthyPromotion(t *testing.T) {
	ctl, _, k, rec := provHarness(t, 1<<15)
	cand := mustCompile(t, strings.Replace(latGuard, "0.5", "0.56", 1))
	if err := ctl.Begin(cand, fastCfg()); err != nil {
		t.Fatal(err)
	}
	k.RunUntil(2 * kernel.Second)
	if got := ctl.Phase(); got != PhasePromoted {
		t.Fatalf("phase = %s (reason %q)", got, ctl.Reason())
	}

	gates := gateRecords(rec)
	if len(gates) != 2 {
		t.Fatalf("gate records = %d, want 2 (shadow + canary)", len(gates))
	}
	stages := []string{"shadow", "canary"}
	for i, g := range gates {
		if g.Stage != stages[i] {
			t.Errorf("gate %d stage = %q, want %q", i, g.Stage, stages[i])
		}
		if g.GateReason != "" {
			t.Errorf("gate %d failed unexpectedly: %q", i, g.GateReason)
		}
		if g.GateSource != "flight" {
			t.Errorf("gate %d source = %q, want flight", i, g.GateSource)
		}
		if g.Monitor != VersionedName("lat-guard", 2) {
			t.Errorf("gate %d monitor = %q", i, g.Monitor)
		}
		if g.Cand.Evals == 0 || g.Inc.Evals == 0 {
			t.Errorf("gate %d windows empty: cand=%+v inc=%+v", i, g.Cand, g.Inc)
		}
	}
	// The incumbent violates on the 0.55 samples; its lane must show
	// them while the loosened candidate's stays clean.
	if gates[1].Inc.Violations == 0 || gates[1].Cand.Violations != 0 {
		t.Errorf("canary windows: cand=%+v inc=%+v", gates[1].Cand, gates[1].Inc)
	}
}

// TestGateWindowTruncationFallsBackToStats is the satellite check for
// the flight-ring wrap path: with a tiny ring the window since the
// stage start is gone, the sink counts the truncation, the rollout
// history records the evidence downgrade, and the gate records say the
// verdict was scored from monitor-stats deltas.
func TestGateWindowTruncationFallsBackToStats(t *testing.T) {
	// 16 events cover ~2ms of this workload; the 200ms shadow window has
	// long since wrapped by gate time.
	ctl, rt, k, rec := provHarness(t, 16)
	cand := mustCompile(t, strings.Replace(latGuard, "0.5", "0.56", 1))
	if err := ctl.Begin(cand, fastCfg()); err != nil {
		t.Fatal(err)
	}
	k.RunUntil(2 * kernel.Second)
	if got := ctl.Phase(); got != PhasePromoted {
		t.Fatalf("phase = %s (reason %q)", got, ctl.Reason())
	}

	if got := rt.Telemetry().Counters.FlightWindowTruncated.Value(); got != 2 {
		t.Errorf("flight_window_truncated_total = %d, want 2 (one per gate)", got)
	}
	var fallbacks int
	for _, h := range ctl.History() {
		if h.Event == "gate_window_fallback" {
			fallbacks++
			if !strings.Contains(h.Note, "truncated") {
				t.Errorf("fallback note = %q", h.Note)
			}
		}
	}
	if fallbacks != 2 {
		t.Errorf("gate_window_fallback history records = %d, want 2", fallbacks)
	}
	gates := gateRecords(rec)
	if len(gates) != 2 {
		t.Fatalf("gate records = %d, want 2", len(gates))
	}
	for i, g := range gates {
		if g.GateSource != "stats" {
			t.Errorf("gate %d source = %q, want stats", i, g.GateSource)
		}
		if g.Cand.Evals == 0 {
			t.Errorf("gate %d stats-delta window empty: %+v", i, g.Cand)
		}
	}
}

// TestGateNoFlightRecorderIsNotTruncation: a runtime with no telemetry
// at all falls back to stats silently — no truncation counter, no
// history downgrade record (there was never flight evidence to lose).
func TestGateNoFlightRecorderIsNotTruncation(t *testing.T) {
	k := kernel.New()
	st := featurestore.New()
	rt := monitor.New(k, st)
	rec := provenance.New(256, 0)
	rt.SetProvenance(rec)
	inc := mustCompile(t, latGuard)
	if _, err := rt.Load(inc[0], monitor.Options{}); err != nil {
		t.Fatal(err)
	}
	ctl := NewController(rt)
	ctl.Adopt(inc)
	i := 0
	k.Every(0, kernel.Millisecond, 0, func(now kernel.Time) {
		st.Save("lat_ma", 0.10+0.05*float64(i%10))
		k.Fire("io_done", 0)
		i++
	})
	cand := mustCompile(t, strings.Replace(latGuard, "0.5", "0.56", 1))
	if err := ctl.Begin(cand, fastCfg()); err != nil {
		t.Fatal(err)
	}
	k.RunUntil(2 * kernel.Second)
	if got := ctl.Phase(); got != PhasePromoted {
		t.Fatalf("phase = %s (reason %q)", got, ctl.Reason())
	}
	for _, h := range ctl.History() {
		if h.Event == "gate_window_fallback" {
			t.Error("nil flight recorder must not record a truncation fallback")
		}
	}
	for i, g := range gateRecords(rec) {
		if g.GateSource != "stats" {
			t.Errorf("gate %d source = %q, want stats", i, g.GateSource)
		}
	}
}
