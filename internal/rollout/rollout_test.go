package rollout

import (
	"errors"
	"fmt"
	"strings"
	"testing"

	"guardrails/internal/compile"
	"guardrails/internal/featurestore"
	"guardrails/internal/kernel"
	"guardrails/internal/monitor"
	"guardrails/internal/spec"
	"guardrails/internal/spec/interfere"
	"guardrails/internal/spec/modelcheck"
	"guardrails/internal/telemetry"
)

// latGuard is the incumbent: alert when the latency moving average
// exceeds 0.5 (violated on ~10% of the synthetic workload below).
const latGuard = `
guardrail lat-guard {
    trigger: { FUNCTION(io_done) },
    rule: { LOAD(lat_ma) <= 0.5 },
    action: { SAVE(alert, 1) }
}`

func mustCompile(t *testing.T, src string) []*compile.Compiled {
	t.Helper()
	cs, err := compile.Source(src)
	if err != nil {
		t.Fatal(err)
	}
	return cs
}

// harness is a runtime with telemetry, an incumbent deployment, and a
// deterministic workload: io_done fires every 1ms with lat_ma cycling
// 0.10, 0.15, ... 0.55 (one violation of the 0.5 threshold per ten
// firings).
func harness(t *testing.T) (*Controller, *monitor.Runtime, *kernel.Kernel, *featurestore.Store) {
	t.Helper()
	k := kernel.New()
	st := featurestore.New()
	rt := monitor.New(k, st)
	sink := telemetry.New(func() telemetry.Time { return int64(k.Now()) }, 1<<15)
	rt.SetTelemetry(sink)
	k.SetTelemetry(sink)

	inc := mustCompile(t, latGuard)
	if _, err := rt.Load(inc[0], monitor.Options{}); err != nil {
		t.Fatal(err)
	}
	ctl := NewController(rt)
	ctl.Adopt(inc)

	i := 0
	k.Every(0, kernel.Millisecond, 0, func(now kernel.Time) {
		st.Save("lat_ma", 0.10+0.05*float64(i%10))
		k.Fire("io_done", 0)
		i++
	})
	return ctl, rt, k, st
}

func fastCfg() Config {
	return Config{
		ShadowWindow: 200 * kernel.Millisecond,
		CanaryWindow: 400 * kernel.Millisecond,
	}
}

// --- semantic diff ------------------------------------------------------

func TestCompareClassification(t *testing.T) {
	old := mustCompile(t, `
guardrail keep { trigger: { TIMER(0, 1e9) }, rule: { LOAD(a) <= 1 }, action: { SAVE(x, 1) } }
guardrail tune { trigger: { TIMER(0, 1e9) }, rule: { LOAD(b) <= 0.05 }, action: { SAVE(y, 1) } }
guardrail shape { trigger: { TIMER(0, 1e9) }, rule: { LOAD(c) <= 2 }, action: { SAVE(z, 1) } }
guardrail gone { trigger: { TIMER(0, 1e9) }, rule: { LOAD(d) <= 3 }, action: { SAVE(w, 1) } }
`)
	new := mustCompile(t, `
guardrail keep { trigger: { TIMER(0, 1e9) }, rule: { LOAD(a) <= 1 }, action: { SAVE(x, 1) } }
guardrail tune { trigger: { TIMER(0, 1e9) }, rule: { LOAD(b) <= 0.02 }, action: { SAVE(y, 1) } }
guardrail shape { trigger: { TIMER(0, 1e9) }, rule: { LOAD(c) + LOAD(cc) <= 2 }, action: { SAVE(z, 1) } }
guardrail fresh { trigger: { TIMER(0, 1e9) }, rule: { LOAD(e) <= 4 }, action: { SAVE(v, 1) } }
`)
	d := Compare(old, new)
	want := map[string]ChangeKind{
		"keep": Unchanged, "tune": Retuned, "shape": Modified,
		"gone": Removed, "fresh": Added,
	}
	if len(d.Changes) != len(want) {
		t.Fatalf("got %d entries, want %d: %v", len(d.Changes), len(want), d.Changes)
	}
	for name, kind := range want {
		if got := d.Change(name).Kind; got != kind {
			t.Errorf("%s: kind %s, want %s", name, got, kind)
		}
	}
	tune := d.Change("tune")
	if len(tune.Details) == 0 || !strings.Contains(tune.Details[0], "0.05 -> 0.02") {
		t.Errorf("tune details missing threshold delta: %v", tune.Details)
	}
	if !tune.Rules || tune.Triggers || tune.Actions {
		t.Errorf("tune sections: triggers=%v rules=%v actions=%v", tune.Triggers, tune.Rules, tune.Actions)
	}
	if d.Empty() {
		t.Error("diff should not be empty")
	}
	if got := Compare(old, old); !got.Empty() {
		t.Errorf("self-diff not empty: %v", got.Changed())
	}
}

func TestCompareDetectsTriggerAndActionChanges(t *testing.T) {
	old := mustCompile(t, `
guardrail g { trigger: { TIMER(0, 1e9) }, rule: { LOAD(a) <= 1 }, action: { SAVE(x, 1) } }`)
	retrig := mustCompile(t, `
guardrail g { trigger: { FUNCTION(io_done) }, rule: { LOAD(a) <= 1 }, action: { SAVE(x, 1) } }`)
	reval := mustCompile(t, `
guardrail g { trigger: { TIMER(0, 1e9) }, rule: { LOAD(a) <= 1 }, action: { SAVE(x, 0) } }`)

	if ch := Compare(old, retrig).Change("g"); ch.Kind != Modified || !ch.Triggers {
		t.Errorf("trigger change: %+v", ch)
	}
	// Only the SAVE value constant changed: a retune, not a reshape.
	if ch := Compare(old, reval).Change("g"); ch.Kind != Retuned || !ch.Actions {
		t.Errorf("action value retune: %+v", ch)
	}
}

// --- scoped interference ------------------------------------------------

func TestScopeClosure(t *testing.T) {
	cs := mustCompile(t, `
guardrail changed { trigger: { TIMER(0, 1e9) }, rule: { LOAD(a) <= 1 }, action: { SAVE(shared, 1) } }
guardrail coupled { trigger: { TIMER(0, 1e9) }, rule: { LOAD(shared) <= 1 }, action: { SAVE(other, 1) } }
guardrail isolated { trigger: { FUNCTION(net_rx) }, rule: { LOAD(q) <= 1 }, action: { SAVE(r, 1) } }
`)
	d := &Diff{Changes: []Change{
		{Name: "changed", Kind: Retuned},
		{Name: "coupled", Kind: Unchanged},
		{Name: "isolated", Kind: Unchanged},
	}}
	scoped, names := Scope(d, deployOf(cs))
	if len(names) != 2 || names[0] != "changed" || names[1] != "coupled" {
		t.Fatalf("scope = %v, want [changed coupled]", names)
	}
	if len(scoped.Monitors) != 2 {
		t.Fatalf("scoped monitors = %d", len(scoped.Monitors))
	}
}

// deployOf wraps compiled guardrails in an analysis deployment.
func deployOf(cs []*compile.Compiled) *interfere.Deployment {
	return &interfere.Deployment{Monitors: cs}
}

func TestScopeSharedSiteCouples(t *testing.T) {
	cs := mustCompile(t, `
guardrail changed { trigger: { FUNCTION(io_done) }, rule: { LOAD(a) <= 1 }, action: { SAVE(x, 1) } }
guardrail samesite { trigger: { FUNCTION(io_done) }, rule: { LOAD(b) <= 1 }, action: { SAVE(y, 1) } }
guardrail othersite { trigger: { FUNCTION(net_rx) }, rule: { LOAD(c) <= 1 }, action: { SAVE(z, 1) } }
`)
	d := &Diff{Changes: []Change{
		{Name: "changed", Kind: Modified},
		{Name: "samesite", Kind: Unchanged},
		{Name: "othersite", Kind: Unchanged},
	}}
	_, names := Scope(d, deployOf(cs))
	if len(names) != 2 || names[0] != "changed" || names[1] != "samesite" {
		t.Fatalf("scope = %v, want [changed samesite]", names)
	}
}

// --- staged rollout -----------------------------------------------------

func TestHealthyCanaryPromotes(t *testing.T) {
	ctl, rt, k, _ := harness(t)
	// Loosen the threshold slightly: fewer violations than the incumbent.
	cand := mustCompile(t, strings.Replace(latGuard, "0.5", "0.56", 1))
	if err := ctl.Begin(cand, fastCfg()); err != nil {
		t.Fatal(err)
	}
	if got := ctl.Phase(); got != PhaseAdmitting {
		t.Fatalf("phase after Begin = %s", got)
	}
	k.RunUntil(2 * kernel.Second)

	if got := ctl.Phase(); got != PhasePromoted {
		t.Fatalf("phase = %s (reason %q), want promoted", got, ctl.Reason())
	}
	if got := ctl.FleetGeneration(); got != 2 {
		t.Errorf("fleet generation = %d, want 2", got)
	}
	if got := k.Generation(); got != 2 {
		t.Errorf("kernel generation = %d, want 2", got)
	}
	m := rt.Monitor("lat-guard")
	if m == nil {
		t.Fatal("lat-guard not loaded after promotion")
	}
	if got := m.Generation(); got != 2 {
		t.Errorf("monitor generation = %d, want 2", got)
	}
	// Hot-swap continuity: the promoted monitor carries the incumbent's
	// counters forward.
	if m.Stats().Evals <= m.GenerationStats().Evals {
		t.Error("promoted monitor lost the incumbent's evaluation count")
	}
	if tm := rt.Monitor(VersionedName("lat-guard", 2)); tm != nil {
		t.Error("trial monitor still loaded after promotion")
	}
	if len(rt.Monitors()) != 1 {
		t.Errorf("monitors after promotion = %d, want 1", len(rt.Monitors()))
	}
	if got := rt.Telemetry().Counters.RolloutPromotions.Value(); got != 1 {
		t.Errorf("rollout_promotions_total = %d, want 1", got)
	}
}

func TestViolationStormRollsBackInShadow(t *testing.T) {
	ctl, rt, k, st := harness(t)
	// A broken retune that alerts on nearly every sample — and would
	// write a different key if it ever acted.
	bad := mustCompile(t, `
guardrail lat-guard {
    trigger: { FUNCTION(io_done) },
    rule: { LOAD(lat_ma) <= 0.01 },
    action: { SAVE(alert_bad, 1) }
}`)
	if err := ctl.Begin(bad, fastCfg()); err != nil {
		t.Fatal(err)
	}
	k.RunUntil(2 * kernel.Second)

	if got := ctl.Phase(); got != PhaseRolledBack {
		t.Fatalf("phase = %s, want rolled_back", got)
	}
	if !strings.Contains(ctl.Reason(), "violation rate") {
		t.Errorf("reason = %q, want violation-rate gate", ctl.Reason())
	}
	if got := ctl.FleetGeneration(); got != 1 {
		t.Errorf("fleet generation = %d, want 1", got)
	}
	// The candidate was caught in shadow: it never acted.
	if st.Load("alert_bad") != 0 {
		t.Error("bad candidate's action leaked to the feature store")
	}
	// Incumbent back at full traffic, trial copy gone.
	if len(rt.Monitors()) != 1 || rt.Monitor("lat-guard") == nil {
		t.Fatalf("monitors after rollback: %v", rt.Monitors())
	}
	if got := rt.Telemetry().Counters.RolloutRollbacks.Value(); got != 1 {
		t.Errorf("rollout_rollbacks_total = %d, want 1", got)
	}
	// The incumbent keeps acting after the rollback clears its gate.
	st.Save("alert", 0)
	k.RunUntil(4 * kernel.Second)
	if st.Load("alert") != 1 {
		t.Error("incumbent not acting after rollback")
	}
}

func TestFailingActionRollsBackInCanary(t *testing.T) {
	ctl, rt, k, _ := harness(t)
	// Same rule as the incumbent (identical violation rate — passes the
	// shadow gate) but its corrective action targets a task group that
	// was never registered, so every canary dispatch fails.
	bad := mustCompile(t, `
guardrail lat-guard {
    trigger: { FUNCTION(io_done) },
    rule: { LOAD(lat_ma) <= 0.5 },
    action: { DEPRIORITIZE(batch_jobs) }
}`)
	cfg := fastCfg()
	// A 2/3 canary share: the workload violates every 10th evaluation,
	// and 10 mod 3 walks every residue class, so the candidate is
	// guaranteed violation traffic whatever its load alignment.
	cfg.CanaryNum, cfg.CanaryDen = 2, 3
	if err := ctl.Begin(bad, cfg); err != nil {
		t.Fatal(err)
	}
	k.RunUntil(3 * kernel.Second)

	if got := ctl.Phase(); got != PhaseRolledBack {
		t.Fatalf("phase = %s (reason %q), want rolled_back", got, ctl.Reason())
	}
	if !strings.Contains(ctl.Reason(), "action failure rate") {
		t.Errorf("reason = %q, want action-failure gate", ctl.Reason())
	}
	// The regression was caught at canary share, before fleet-wide
	// exposure: generation never advanced.
	if got := ctl.FleetGeneration(); got != 1 {
		t.Errorf("fleet generation = %d, want 1", got)
	}
	var sawCanary bool
	for _, rec := range ctl.History() {
		if rec.Event == "phase:canary" {
			sawCanary = true
		}
	}
	if !sawCanary {
		t.Error("rollout never reached canary phase")
	}
	if len(rt.Monitors()) != 1 {
		t.Errorf("monitors after rollback = %d, want 1", len(rt.Monitors()))
	}
}

func TestTransientAdmissionRetries(t *testing.T) {
	ctl, rt, k, _ := harness(t)
	failures := 2
	ctl.SetAdmitFunc(func(budget int, overrides map[string]int, loads []kernel.HookLoad) error {
		if failures > 0 {
			failures--
			return errors.New("admission RPC timed out")
		}
		return nil
	})
	cand := mustCompile(t, strings.Replace(latGuard, "0.5", "0.56", 1))
	if err := ctl.Begin(cand, fastCfg()); err != nil {
		t.Fatal(err)
	}
	k.RunUntil(3 * kernel.Second)

	if got := ctl.Phase(); got != PhasePromoted {
		t.Fatalf("phase = %s (reason %q), want promoted after transient retries", got, ctl.Reason())
	}
	if got := rt.Telemetry().Counters.RolloutAdmitRetries.Value(); got != 2 {
		t.Errorf("rollout_admission_retries_total = %d, want 2", got)
	}
}

func TestPermanentAdmissionFailsStatic(t *testing.T) {
	ctl, rt, k, _ := harness(t)
	ctl.SetAdmitFunc(func(budget int, overrides map[string]int, loads []kernel.HookLoad) error {
		return &kernel.AdmissionError{Sites: []kernel.OverloadedSite{
			{Site: "io_done", Budget: 1, Total: 99},
		}}
	})
	cand := mustCompile(t, strings.Replace(latGuard, "0.5", "0.56", 1))
	if err := ctl.Begin(cand, fastCfg()); err != nil {
		t.Fatal(err)
	}
	k.RunUntil(kernel.Second)

	if got := ctl.Phase(); got != PhaseFailed {
		t.Fatalf("phase = %s, want failed", got)
	}
	if !strings.Contains(ctl.Reason(), "admission rejected") {
		t.Errorf("reason = %q", ctl.Reason())
	}
	// Fail static: no candidate ever loaded, incumbent untouched.
	if len(rt.Monitors()) != 1 || rt.Monitor("lat-guard") == nil {
		t.Fatalf("monitors after permanent refusal: %v", rt.Monitors())
	}
}

func TestExhaustedTransientRetriesFailStatic(t *testing.T) {
	ctl, _, k, _ := harness(t)
	ctl.SetAdmitFunc(func(int, map[string]int, []kernel.HookLoad) error {
		return errors.New("admission RPC timed out")
	})
	cfg := fastCfg()
	cfg.AdmitRetries = 2
	cfg.RetryBackoff = 10 * kernel.Millisecond
	cand := mustCompile(t, strings.Replace(latGuard, "0.5", "0.56", 1))
	if err := ctl.Begin(cand, cfg); err != nil {
		t.Fatal(err)
	}
	k.RunUntil(kernel.Second)
	if got := ctl.Phase(); got != PhaseFailed {
		t.Fatalf("phase = %s, want failed after exhausted retries", got)
	}
}

func TestRefusedByScopedInterference(t *testing.T) {
	ctl, rt, k, _ := harness(t)
	// The candidate generation adds a guardrail that co-fires with
	// lat-guard and SAVEs a provably different value to the same key:
	// a GI001 conflict the scoped analysis must catch before load.
	cand := mustCompile(t, latGuard+`
guardrail lat-mute {
    trigger: { FUNCTION(io_done) },
    rule: { LOAD(lat_ma) <= 0.5 },
    action: { SAVE(alert, 0) }
}`)
	err := ctl.Begin(cand, fastCfg())
	var refused *RefusedError
	if !errors.As(err, &refused) {
		t.Fatalf("Begin = %v, want RefusedError", err)
	}
	if len(refused.Scope) == 0 {
		t.Error("refusal carries no scope")
	}
	if got := ctl.Phase(); got != PhaseFailed {
		t.Errorf("phase = %s, want failed", got)
	}
	if len(rt.Monitors()) != 1 {
		t.Errorf("monitors after refusal = %d, want 1 (nothing loaded)", len(rt.Monitors()))
	}
	_ = k
}

func TestBeginGuards(t *testing.T) {
	ctl, _, _, _ := harness(t)
	if err := ctl.Begin(mustCompile(t, latGuard), fastCfg()); !errors.Is(err, ErrNoChanges) {
		t.Errorf("identical deployment: err = %v, want ErrNoChanges", err)
	}
	cand := mustCompile(t, strings.Replace(latGuard, "0.5", "0.56", 1))
	if err := ctl.Begin(cand, fastCfg()); err != nil {
		t.Fatal(err)
	}
	if err := ctl.Begin(cand, fastCfg()); !errors.Is(err, ErrRolloutActive) {
		t.Errorf("concurrent Begin: err = %v, want ErrRolloutActive", err)
	}
}

// reportGuard mirrors latGuard but REPORTs instead of SAVEing, so every
// fired action leaves a log entry stamped with the triggering firing's
// simulated time and the acting monitor's (lane) name.
const reportGuard = `
guardrail lat-guard {
    trigger: { FUNCTION(io_done) },
    rule: { LOAD(lat_ma) <= %s },
    action: { REPORT(LOAD(lat_ma)) }
}`

// TestCanarySplitComplementary drives a canary whose incumbent has an
// evaluation history that is NOT a multiple of the canary denominator
// at gate-install time, and asserts every violating firing in the
// canary window produces exactly one action across the pair — no
// double corrective actions, no enforcement gaps.
func TestCanarySplitComplementary(t *testing.T) {
	k := kernel.New()
	st := featurestore.New()
	rt := monitor.New(k, st)
	sink := telemetry.New(func() telemetry.Time { return int64(k.Now()) }, 1<<15)
	rt.SetTelemetry(sink)
	k.SetTelemetry(sink)
	inc := mustCompile(t, fmt.Sprintf(reportGuard, "0.5"))
	if _, err := rt.Load(inc[0], monitor.Options{}); err != nil {
		t.Fatal(err)
	}
	ctl := NewController(rt)
	ctl.Adopt(inc)
	i := 0
	k.Every(0, kernel.Millisecond, 0, func(now kernel.Time) {
		st.Save("lat_ma", 0.10+0.05*float64(i%10))
		k.Fire("io_done", 0)
		i++
	})
	// Pre-roll ~253 incumbent evaluations (not a multiple of the canary
	// denominator): the split must not depend on how much history the
	// incumbent brings to the canary.
	k.RunUntil(253 * kernel.Millisecond)

	// A 0.54 retune has the identical violation profile on this workload
	// (only the 0.55 sample violates either threshold), so both lanes
	// see the same violation traffic and every gate passes.
	cand := mustCompile(t, fmt.Sprintf(reportGuard, "0.54"))
	cfg := fastCfg()
	// Denominator 3: the workload violates every 10th evaluation, and
	// 10 mod 3 walks every residue class, so any gate misalignment is
	// guaranteed to land doubles or gaps on violating firings (a
	// denominator sharing a factor with the violation period can leave
	// misalignment invisible to this check).
	cfg.CanaryNum, cfg.CanaryDen = 1, 3
	if err := ctl.Begin(cand, cfg); err != nil {
		t.Fatal(err)
	}
	k.RunUntil(2 * kernel.Second)
	if got := ctl.Phase(); got != PhasePromoted {
		t.Fatalf("phase = %s (reason %q), want promoted", got, ctl.Reason())
	}

	var canaryAt, promotedAt kernel.Time
	for _, rec := range ctl.History() {
		switch rec.Event {
		case "phase:canary":
			canaryAt = rec.At
		case "promoted":
			promotedAt = rec.At
		}
	}
	if canaryAt == 0 || promotedAt <= canaryAt {
		t.Fatalf("history missing canary window: canary=%v promoted=%v", canaryAt, promotedAt)
	}

	// Group canary-window reports by trigger time. The boundary
	// timestamps are excluded: the gate-install and promotion events run
	// at the same instant as a workload tick with unspecified ordering.
	perFiring := map[kernel.Time]int{}
	byLane := map[string]int{}
	for _, v := range rt.Log.Recent(4096) {
		if v.Time <= canaryAt || v.Time >= promotedAt || BaseName(v.Guardrail) != "lat-guard" {
			continue
		}
		perFiring[v.Time]++
		byLane[v.Guardrail]++
	}
	if len(perFiring) < 20 {
		t.Fatalf("only %d violating firings in the canary window, want >= 20", len(perFiring))
	}
	for at, n := range perFiring {
		if n != 1 {
			t.Fatalf("firing at %v acted %d times (lanes %v): canary split is not complementary", at, n, byLane)
		}
	}
}

func TestNegativeAdmitRetriesFailsImmediately(t *testing.T) {
	ctl, rt, k, _ := harness(t)
	calls := 0
	ctl.SetAdmitFunc(func(int, map[string]int, []kernel.HookLoad) error {
		calls++
		return errors.New("admission RPC timed out")
	})
	cfg := fastCfg()
	cfg.AdmitRetries = -1 // fail static on the first transient error
	cand := mustCompile(t, strings.Replace(latGuard, "0.5", "0.56", 1))
	if err := ctl.Begin(cand, cfg); err != nil {
		t.Fatal(err)
	}
	k.RunUntil(kernel.Second)
	if got := ctl.Phase(); got != PhaseFailed {
		t.Fatalf("phase = %s, want failed without retries", got)
	}
	if calls != 1 {
		t.Errorf("admission attempted %d times, want exactly 1", calls)
	}
	if got := rt.Telemetry().Counters.RolloutAdmitRetries.Value(); got != 0 {
		t.Errorf("rollout_admission_retries_total = %d, want 0", got)
	}
}

func TestExplicitZeroGatesAreStrict(t *testing.T) {
	ctl, _, k, _ := harness(t)
	// A 0.45 retune violates on both the 0.50 and 0.55 samples — double
	// the incumbent's rate, a +0.1 delta that sails under the default
	// 0.25 gate but must trip an explicit zero-tolerance one.
	cand := mustCompile(t, strings.Replace(latGuard, "0.5", "0.45", 1))
	cfg := fastCfg()
	cfg.Gates = &Gates{}
	if err := ctl.Begin(cand, cfg); err != nil {
		t.Fatal(err)
	}
	k.RunUntil(2 * kernel.Second)
	if got := ctl.Phase(); got != PhaseRolledBack {
		t.Fatalf("phase = %s (reason %q), want rolled_back under zero-tolerance gates", got, ctl.Reason())
	}
	if !strings.Contains(ctl.Reason(), "violation rate") {
		t.Errorf("reason = %q, want violation-rate gate", ctl.Reason())
	}
}

func TestBaseName(t *testing.T) {
	cases := map[string]string{
		"lat-guard":     "lat-guard",
		"lat-guard@v3":  "lat-guard",
		"lat-guard@v12": "lat-guard",
		"svc@v2-guard":  "svc@v2-guard", // "@v" inside a real name
		"guard@vnext":   "guard@vnext",  // non-digit suffix
		"guard@v":       "guard@v",      // empty suffix
		"@v3":           "@v3",          // nothing before the suffix
		"a@v1@v2":       "a@v1",
	}
	for in, want := range cases {
		if got := BaseName(in); got != want {
			t.Errorf("BaseName(%q) = %q, want %q", in, got, want)
		}
	}
}

// --- breakglass ---------------------------------------------------------

func TestBreakglassQuarantinesFleetWide(t *testing.T) {
	ctl, rt, k, st := harness(t)
	// Let the incumbent act once to prove it was live.
	k.RunUntil(100 * kernel.Millisecond)
	if st.Load("alert") != 1 {
		t.Fatal("incumbent never acted")
	}

	if err := ctl.Breakglass("lat-guard", false); err != nil {
		t.Fatal(err)
	}
	if !rt.Monitor("lat-guard").ForcedShadow() {
		t.Fatal("monitor not forced to shadow")
	}
	st.Save("alert", 0)
	before := rt.Monitor("lat-guard").Stats().Evals
	k.RunUntil(300 * kernel.Millisecond)
	if st.Load("alert") != 0 {
		t.Error("quarantined guardrail still acting")
	}
	if rt.Monitor("lat-guard").Stats().Evals == before {
		t.Error("shadow breakglass should keep evaluating")
	}
	if got := rt.Telemetry().Counters.Breakglass.Value(); got != 1 {
		t.Errorf("breakglass_total = %d, want 1", got)
	}

	// Release restores enforcement.
	if err := ctl.BreakglassRelease("lat-guard"); err != nil {
		t.Fatal(err)
	}
	k.RunUntil(600 * kernel.Millisecond)
	if st.Load("alert") != 1 {
		t.Error("released guardrail not acting again")
	}

	// Disable mode stops evaluation outright.
	if err := ctl.Breakglass("lat-guard", true); err != nil {
		t.Fatal(err)
	}
	evals := rt.Monitor("lat-guard").Stats().Evals
	k.RunUntil(900 * kernel.Millisecond)
	if rt.Monitor("lat-guard").Stats().Evals != evals {
		t.Error("disabled guardrail still evaluating")
	}

	if err := ctl.Breakglass("no-such-guardrail", false); err == nil {
		t.Error("breakglass on unknown guardrail should error")
	}
}

// TestBreakglassCoversTrialCopies engages breakglass mid-rollout and
// checks the versioned trial monitor is quarantined too.
func TestBreakglassCoversTrialCopies(t *testing.T) {
	ctl, rt, k, _ := harness(t)
	cand := mustCompile(t, strings.Replace(latGuard, "0.5", "0.56", 1))
	cfg := fastCfg()
	cfg.ShadowWindow = 10 * kernel.Second // hold the rollout in shadow
	if err := ctl.Begin(cand, cfg); err != nil {
		t.Fatal(err)
	}
	k.RunUntil(500 * kernel.Millisecond)
	if got := ctl.Phase(); got != PhaseShadow {
		t.Fatalf("phase = %s, want shadow", got)
	}
	if err := ctl.Breakglass("lat-guard", false); err != nil {
		t.Fatal(err)
	}
	trial := rt.Monitor(VersionedName("lat-guard", 2))
	if trial == nil {
		t.Fatal("trial monitor missing")
	}
	if !trial.ForcedShadow() || !rt.Monitor("lat-guard").ForcedShadow() {
		t.Error("breakglass missed the trial copy or the incumbent")
	}
}

// TestBreakglassSurvivesPromotion engages breakglass mid-rollout and
// lets the rollout promote: the promotion hot-swaps the quarantined
// incumbent, and the replacement must stay quarantined — an automated
// promotion may not lift what an operator engaged.
func TestBreakglassSurvivesPromotion(t *testing.T) {
	ctl, rt, k, st := harness(t)
	// A 0.52 retune violates identically to the incumbent (only the
	// 0.55 sample), so every gate passes even with both copies muted.
	cand := mustCompile(t, strings.Replace(latGuard, "0.5", "0.52", 1))
	if err := ctl.Begin(cand, fastCfg()); err != nil {
		t.Fatal(err)
	}
	k.RunUntil(100 * kernel.Millisecond)
	if got := ctl.Phase(); got != PhaseShadow {
		t.Fatalf("phase = %s, want shadow", got)
	}
	if err := ctl.Breakglass("lat-guard", false); err != nil {
		t.Fatal(err)
	}
	k.RunUntil(2 * kernel.Second)
	if got := ctl.Phase(); got != PhasePromoted {
		t.Fatalf("phase = %s (reason %q), want promoted", got, ctl.Reason())
	}
	m := rt.Monitor("lat-guard")
	if m == nil {
		t.Fatal("lat-guard missing after promotion")
	}
	if !m.ForcedShadow() {
		t.Fatal("promotion lifted the engaged breakglass quarantine")
	}
	st.Save("alert", 0)
	k.RunUntil(3 * kernel.Second)
	if st.Load("alert") != 0 {
		t.Error("quarantined guardrail acted after promotion")
	}
	// Release restores enforcement on the promoted generation.
	if err := ctl.BreakglassRelease("lat-guard"); err != nil {
		t.Fatal(err)
	}
	k.RunUntil(4 * kernel.Second)
	if st.Load("alert") != 1 {
		t.Error("released guardrail not acting on the promoted generation")
	}
}

// --- temporal property gate ---------------------------------------------

// TestRefusedByTemporalProperty: the operator declares that the fleet
// never raises an alert ("assert always LOAD(alert) <= 0"); a retuned
// candidate that can still drive alert to 1 is refuted by the bounded
// model checker and refused before anything loads.
func TestRefusedByTemporalProperty(t *testing.T) {
	ctl, rt, _, _ := harness(t)
	prop, err := spec.ParseProperty("always LOAD(alert) <= 0")
	if err != nil {
		t.Fatal(err)
	}
	cfg := fastCfg()
	cfg.Properties = []*spec.PropertyDecl{prop}
	cand := mustCompile(t, strings.Replace(latGuard, "0.5", "0.56", 1))
	err = ctl.Begin(cand, cfg)
	var refused *RefusedError
	if !errors.As(err, &refused) {
		t.Fatalf("Begin = %v, want RefusedError", err)
	}
	if refused.Temporal == nil {
		t.Fatal("refusal carries no temporal report")
	}
	found := false
	for _, d := range refused.Temporal.Diagnostics {
		if d.Code == modelcheck.CodeSafety {
			found = true
		}
	}
	if !found {
		t.Errorf("temporal report missing GM001: %+v", refused.Temporal.Diagnostics)
	}
	if got := ctl.Phase(); got != PhaseFailed {
		t.Errorf("phase = %s, want failed", got)
	}
	if !strings.Contains(ctl.Reason(), "temporal model checking") {
		t.Errorf("reason = %q", ctl.Reason())
	}
	if len(rt.Monitors()) != 1 {
		t.Errorf("monitors after refusal = %d, want 1 (nothing loaded)", len(rt.Monitors()))
	}

	// A property the candidate satisfies must not block the rollout.
	hold, err := spec.ParseProperty("always LOAD(alert) <= 1")
	if err != nil {
		t.Fatal(err)
	}
	cfg.Properties = []*spec.PropertyDecl{hold}
	if err := ctl.Begin(cand, cfg); err != nil {
		t.Fatalf("satisfied property blocked rollout: %v", err)
	}
}
