package rollout

import (
	"fmt"
	"sync"

	"guardrails/internal/compile"
	"guardrails/internal/kernel"
)

// Fleet coordinates one rollout Controller per kernel shard. On a
// sharded kernel every guardrail is replicated — each shard runs its
// own monitor instances against its own traffic — so a staged rollout
// must also replicate: every shard shadows, canaries, and gates the
// candidate generation against its local telemetry. Fleet fans a Begin
// out to every shard's controller and then supervises the replicas
// from the pool barrier: if any shard's rollout dies at a gate (rolled
// back or failed) while siblings are still trialing, the siblings are
// aborted at the next barrier, so the fleet converges on one verdict
// instead of half-promoting a generation one shard has already judged
// bad.
//
// The barrier is also what makes fleet breakglass atomic: the
// quarantine applies to every shard's replicas in one deterministic
// instant while all shards are parked, with no window where shard A's
// copy is quarantined and shard B's is still acting.
//
// Shard divergence on a deterministic workload is a bug (the gates see
// identical telemetry), but chaos injection and per-shard traffic skew
// make it routine in testing and possible in production; the
// supervisor is the containment for exactly that case.
type Fleet struct {
	pool  *kernel.Pool
	ctrls []*Controller

	mu      sync.Mutex
	handled bool // current rollout's divergence already resolved
	history []Record
}

// NewFleet binds one controller per pool shard (ctrls[i] drives
// Shard(i)'s runtime) and registers the barrier supervisor. Panics if
// the controller count does not match the shard count.
func NewFleet(pool *kernel.Pool, ctrls []*Controller) *Fleet {
	if len(ctrls) != pool.NumShards() {
		panic(fmt.Sprintf("rollout: fleet needs one controller per shard: %d controllers, %d shards",
			len(ctrls), pool.NumShards()))
	}
	f := &Fleet{pool: pool, ctrls: ctrls}
	pool.OnBarrier(func(now kernel.Time, epoch uint64) { f.supervise(now) })
	return f
}

// NumShards returns the fleet width.
func (f *Fleet) NumShards() int { return len(f.ctrls) }

// Controller returns shard i's rollout controller.
func (f *Fleet) Controller(i int) *Controller { return f.ctrls[i] }

// Begin starts the staged rollout on every shard's controller, in shard
// order. All shards see the same candidate set and config, so the
// synchronous checks (semantic diff, scoped interference analysis) are
// deterministic and normally agree; if a shard still refuses — chaos
// injection, or a controller left mid-flight — the shards already begun
// are aborted and the shard's error is returned, so a fleet Begin is
// all-or-nothing.
func (f *Fleet) Begin(cs []*compile.Compiled, cfg Config) error {
	f.mu.Lock()
	defer f.mu.Unlock()
	for i, c := range f.ctrls {
		if err := c.Begin(cs, cfg); err != nil {
			reason := fmt.Sprintf("shard %d refused fleet rollout: %v", i, err)
			for j := 0; j < i; j++ {
				f.ctrls[j].Abort(reason)
			}
			f.history = append(f.history, Record{At: f.pool.Now(), Event: "fleet_refused", Note: reason})
			return fmt.Errorf("rollout: fleet begin on shard %d: %w", i, err)
		}
	}
	f.handled = false
	f.history = append(f.history, Record{At: f.pool.Now(), Event: "fleet_begin",
		Note: fmt.Sprintf("%d shard(s)", len(f.ctrls))})
	return nil
}

// supervise runs at every pool barrier (all shards parked): if some
// shard's rollout replica died while siblings are still in flight, the
// siblings abort now. Runs on the driver goroutine; the barrier's
// happens-before edges make the controllers' state safely readable.
func (f *Fleet) supervise(now kernel.Time) {
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.handled {
		return
	}
	bad, live, promoted := -1, false, -1
	for i, c := range f.ctrls {
		switch p := c.Phase(); {
		case p == PhaseRolledBack || p == PhaseFailed:
			if bad < 0 {
				bad = i
			}
		case p == PhasePromoted:
			if promoted < 0 {
				promoted = i
			}
		case p != PhaseIdle:
			live = true
		}
	}
	if bad < 0 {
		return
	}
	reason := fmt.Sprintf("shard %d %s: %s", bad, f.ctrls[bad].Phase(), f.ctrls[bad].Reason())
	if live {
		n := 0
		for i, c := range f.ctrls {
			if i != bad && c.Abort(reason) {
				n++
			}
		}
		f.handled = true
		f.history = append(f.history, Record{At: now, Event: "fleet_abort",
			Note: fmt.Sprintf("%s; aborted %d shard(s)", reason, n)})
	}
	if promoted >= 0 {
		// A shard promoted before the barrier saw the sibling die:
		// promotion is not undone (Abort never reverses it), so the
		// fleet is split across generations. Surface it loudly — this
		// is the one state the supervisor cannot repair.
		f.handled = true
		f.history = append(f.history, Record{At: now, Event: "fleet_divergence",
			Note: fmt.Sprintf("shard %d promoted but %s", promoted, reason)})
	}
}

// Phase reduces the per-shard phases to one fleet verdict: any rolled
// back shard makes the fleet rolled back (the generation is judged
// bad), else any failed shard fails the fleet, else the fleet is only
// as far along as its slowest shard.
func (f *Fleet) Phase() Phase {
	rolled, failed, seen := false, false, false
	prog := PhasePromoted
	for _, c := range f.ctrls {
		switch p := c.Phase(); p {
		case PhaseRolledBack:
			rolled = true
		case PhaseFailed:
			failed = true
		default:
			seen = true
			if p < prog {
				prog = p
			}
		}
	}
	switch {
	case rolled:
		return PhaseRolledBack
	case failed:
		return PhaseFailed
	case seen:
		return prog
	default:
		return PhaseIdle
	}
}

// Phases returns each shard's current phase in shard order.
func (f *Fleet) Phases() []Phase {
	out := make([]Phase, len(f.ctrls))
	for i, c := range f.ctrls {
		out[i] = c.Phase()
	}
	return out
}

// Breakglass schedules a fleet-wide quarantine of the named guardrail
// for the next pool barrier: with every shard parked, all replicas
// flip in one deterministic instant. See Controller.Breakglass for the
// shadow/disable semantics.
func (f *Fleet) Breakglass(name string, disable bool) {
	f.pool.AtBarrier(func(now kernel.Time) { f.applyBreakglass(name, disable, true, now) })
}

// BreakglassRelease schedules the matching fleet-wide release for the
// next pool barrier.
func (f *Fleet) BreakglassRelease(name string) {
	f.pool.AtBarrier(func(now kernel.Time) { f.applyBreakglass(name, false, false, now) })
}

// applyBreakglass engages or lifts the quarantine on every shard; runs
// at a barrier.
func (f *Fleet) applyBreakglass(name string, disable, engage bool, now kernel.Time) {
	f.mu.Lock()
	defer f.mu.Unlock()
	errs := 0
	for _, c := range f.ctrls {
		var err error
		if engage {
			err = c.Breakglass(name, disable)
		} else {
			err = c.BreakglassRelease(name)
		}
		if err != nil {
			errs++
		}
	}
	event := "fleet_breakglass"
	if !engage {
		event = "fleet_breakglass_release"
	}
	note := fmt.Sprintf("%s across %d shard(s)", name, len(f.ctrls))
	if errs > 0 {
		note += fmt.Sprintf(", %d error(s)", errs)
	}
	f.history = append(f.history, Record{At: now, Event: event, Note: note})
}

// History returns a copy of the fleet-level operation log (per-shard
// transitions live in each Controller's own History).
func (f *Fleet) History() []Record {
	f.mu.Lock()
	defer f.mu.Unlock()
	return append([]Record(nil), f.history...)
}
