// Package rollout is the fleet-operations control plane for guardrail
// deployments: staged rollouts (shadow → canary → fleet-wide) with
// telemetry-gated automatic promotion and rollback, semantic deployment
// diffs with scoped interference re-analysis, and a breakglass that
// quarantines a misbehaving guardrail fleet-wide in one call.
//
// The paper's deployment story ends at "guardrails can be updated at
// runtime without a reboot"; this package supplies the operational
// machinery a fleet needs before anyone flips that switch: a candidate
// generation first runs in shadow (evaluating but never acting), then
// as a canary taking a configured fraction of action traffic while the
// incumbent handles the rest, and only goes fleet-wide when its
// violation-rate delta, action-failure rate, fault count, and certified
// step budget stay inside the promotion gates — read back from the same
// telemetry plane operators watch. Any gate regression rolls the fleet
// back to the last-good generation automatically; any control-plane
// fault fails static (the incumbent generation keeps running,
// untouched).
package rollout

import (
	"errors"
	"fmt"
	"strings"
	"sync"

	"guardrails/internal/actions"
	"guardrails/internal/compile"
	"guardrails/internal/kernel"
	"guardrails/internal/monitor"
	"guardrails/internal/provenance"
	"guardrails/internal/spec"
	"guardrails/internal/spec/interfere"
	"guardrails/internal/spec/modelcheck"
)

// Phase is a rollout's position in the staged state machine.
type Phase int

// Rollout phases.
const (
	// PhaseIdle: no rollout in flight.
	PhaseIdle Phase = iota
	// PhaseAdmitting: the candidate generation is being admission-
	// checked (with retry/backoff on transient failures).
	PhaseAdmitting
	// PhaseShadow: candidates are loaded and evaluating, actions fully
	// suppressed.
	PhaseShadow
	// PhaseCanary: candidates act on a fraction of trigger traffic,
	// incumbents on the complement.
	PhaseCanary
	// PhasePromoted: the candidate generation went fleet-wide.
	PhasePromoted
	// PhaseRolledBack: a gate regression restored the last-good
	// generation.
	PhaseRolledBack
	// PhaseFailed: the rollout was refused or failed static before
	// exposure; the incumbent generation never stopped running.
	PhaseFailed
)

// String names the phase.
func (p Phase) String() string {
	switch p {
	case PhaseIdle:
		return "idle"
	case PhaseAdmitting:
		return "admitting"
	case PhaseShadow:
		return "shadow"
	case PhaseCanary:
		return "canary"
	case PhasePromoted:
		return "promoted"
	case PhaseRolledBack:
		return "rolled_back"
	case PhaseFailed:
		return "failed"
	default:
		return fmt.Sprintf("phase(%d)", int(p))
	}
}

// MarshalJSON renders the phase name.
func (p Phase) MarshalJSON() ([]byte, error) {
	return []byte(fmt.Sprintf("%q", p.String())), nil
}

// Terminal reports whether the phase ends a rollout.
func (p Phase) Terminal() bool {
	return p == PhasePromoted || p == PhaseRolledBack || p == PhaseFailed
}

// Config parameterizes one staged rollout. The zero value gets sane
// defaults from fill.
type Config struct {
	// ShadowWindow is how long candidates run with actions suppressed
	// before the first gate check. Default 500ms.
	ShadowWindow kernel.Time
	// CanaryWindow is how long candidates take canary traffic before
	// the promotion gate check. Default 1s.
	CanaryWindow kernel.Time
	// CanaryNum/CanaryDen is the fraction of action traffic the canary
	// takes (evaluation indices n with n%Den < Num act on the
	// candidate; the incumbent acts on the complement). Default 1/4.
	CanaryNum, CanaryDen uint64
	// Gates are the promotion thresholds. nil means DefaultGates; an
	// explicit &Gates{} is honored as-is (maximally strict
	// zero-tolerance gates).
	Gates *Gates
	// AdmitRetries is how many times a *transient* admission failure is
	// retried before the rollout fails static. Permanent refusals
	// (kernel.AdmissionError) never retry. 0 means the default of 3;
	// any negative value means no retries (fail static on the first
	// transient admission error).
	AdmitRetries int
	// RetryBackoff is the base delay before an admission retry,
	// doubling per attempt. Default 50ms.
	RetryBackoff kernel.Time
	// HookBudget / HookBudgets are the certified-step budgets passed to
	// admission and to the scoped interference analysis.
	HookBudget  int
	HookBudgets map[string]int
	// Features are the declared feature ranges for interference
	// analysis.
	Features []*spec.FeatureDecl
	// Properties are the deployment's declared temporal properties.
	// When non-empty, Begin model-checks the candidate generation
	// (internal/spec/modelcheck) after the scoped interference pass and
	// refuses the rollout — before anything loads — if any property is
	// refuted or any GM diagnostic fires.
	Properties []*spec.PropertyDecl
	// Options are the monitor options candidates load with (and keep
	// after promotion).
	Options monitor.Options
}

// fill applies defaults.
func (cfg *Config) fill() {
	if cfg.ShadowWindow <= 0 {
		cfg.ShadowWindow = 500 * kernel.Millisecond
	}
	if cfg.CanaryWindow <= 0 {
		cfg.CanaryWindow = kernel.Second
	}
	if cfg.CanaryDen == 0 {
		cfg.CanaryNum, cfg.CanaryDen = 1, 4
	}
	if cfg.CanaryNum == 0 {
		cfg.CanaryNum = 1
	}
	if cfg.CanaryNum > cfg.CanaryDen {
		cfg.CanaryNum = cfg.CanaryDen
	}
	if cfg.Gates == nil {
		g := DefaultGates()
		cfg.Gates = &g
	}
	switch {
	case cfg.AdmitRetries == 0:
		cfg.AdmitRetries = 3
	case cfg.AdmitRetries < 0:
		cfg.AdmitRetries = 0
	}
	if cfg.RetryBackoff <= 0 {
		cfg.RetryBackoff = 50 * kernel.Millisecond
	}
}

// AdmitFunc is the admission seam: it receives the default per-site
// step budget, per-site overrides, and the combined worst-case hook
// loads of incumbents plus candidates (the trial-peak attachment). A
// *kernel.AdmissionError return is a permanent refusal; any other
// error is treated as transient and retried with backoff.
type AdmitFunc func(budget int, overrides map[string]int, loads []kernel.HookLoad) error

// RefusedError is returned by Begin when the scoped interference
// analysis finds warnings: the rollout is refused before anything
// loads (fail static).
type RefusedError struct {
	// Report is the scoped analysis report.
	Report *interfere.Report
	// Temporal is the model-checking report when the refusal came from
	// a declared temporal property (Config.Properties) instead of the
	// interference pass; nil otherwise.
	Temporal *modelcheck.Report
	// Scope names the guardrails that were re-analyzed.
	Scope []string
}

// Error summarizes the refusal.
func (e *RefusedError) Error() string {
	if e.Temporal != nil {
		return fmt.Sprintf("rollout: refused by temporal model checking (%s)", e.Temporal.Summary())
	}
	return fmt.Sprintf("rollout: refused by scoped interference analysis (%s; scope: %s)",
		e.Report.Summary(), strings.Join(e.Scope, ", "))
}

// ErrRolloutActive is returned by Begin while another rollout is in a
// non-terminal phase.
var ErrRolloutActive = errors.New("rollout: another rollout is in flight")

// ErrNoChanges is returned by Begin when the candidate generation is
// semantically identical to the incumbent one.
var ErrNoChanges = errors.New("rollout: candidate deployment is semantically identical to the incumbent generation")

// Record is one entry in the control plane's operation history.
type Record struct {
	// At is the simulated time of the transition.
	At kernel.Time `json:"at"`
	// Gen is the generation the entry concerns.
	Gen uint64 `json:"gen"`
	// Event names the transition: "refused", "phase:shadow",
	// "promoted", "rolled_back", "failed", "breakglass", ...
	Event string `json:"event"`
	// Note carries the reason or detail.
	Note string `json:"note,omitempty"`
}

// pair binds one candidate monitor to its incumbent (nil for an added
// guardrail) for the trial stages.
type pair struct {
	name  string            // base guardrail name
	vname string            // versioned trial name: name@v<gen>
	c     *compile.Compiled // candidate program under the base name
	cand  *monitor.Monitor
	inc   *monitor.Monitor
}

// rollout is one staged rollout's mutable state.
type rollout struct {
	gen        uint64
	cfg        Config
	cs         []*compile.Compiled
	diff       *Diff
	phase      Phase
	stageStart kernel.Time
	pairs      []pair
	removed    []string // incumbent names absent from the candidate set
	statsAt    map[string]monitor.Stats
	reason     string
}

// Controller is the fleet rollout control plane for one runtime.
type Controller struct {
	rt    *monitor.Runtime
	k     *kernel.Kernel
	admit AdmitFunc

	mu       sync.Mutex
	fleetGen uint64
	nextGen  uint64 // last assigned candidate generation; never reused
	lastGood []*compile.Compiled
	cur      *rollout
	history  []Record
}

// NewController returns a control plane over rt. The fleet generation
// starts at the kernel's current generation; call Adopt to register the
// already-loaded deployment as the last-good baseline.
func NewController(rt *monitor.Runtime) *Controller {
	k := rt.Kernel()
	c := &Controller{rt: rt, k: k, fleetGen: k.Generation(), nextGen: k.Generation()}
	c.admit = func(budget int, overrides map[string]int, loads []kernel.HookLoad) error {
		return k.AdmitDeployment(budget, overrides, loads)
	}
	return c
}

// SetAdmitFunc replaces the admission check — the seam chaos
// experiments use to inject transient admission failures. nil restores
// the kernel's admission test.
func (c *Controller) SetAdmitFunc(f AdmitFunc) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if f == nil {
		k := c.k
		f = func(budget int, overrides map[string]int, loads []kernel.HookLoad) error {
			return k.AdmitDeployment(budget, overrides, loads)
		}
	}
	c.admit = f
}

// Adopt registers cs — which the caller has already loaded into the
// runtime — as the last-good generation the next rollout diffs against
// and rolls back to.
func (c *Controller) Adopt(cs []*compile.Compiled) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.lastGood = append([]*compile.Compiled(nil), cs...)
}

// FleetGeneration returns the active fleet-wide generation.
func (c *Controller) FleetGeneration() uint64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.fleetGen
}

// Phase returns the in-flight rollout's phase, or the terminal phase of
// the most recent one (PhaseIdle before any rollout).
func (c *Controller) Phase() Phase {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.cur == nil {
		return PhaseIdle
	}
	return c.cur.phase
}

// Reason returns the gate/refusal reason of the most recent rollout
// ("" when none, or when it promoted).
func (c *Controller) Reason() string {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.cur == nil {
		return ""
	}
	return c.cur.reason
}

// History returns a copy of the operation log.
func (c *Controller) History() []Record {
	c.mu.Lock()
	defer c.mu.Unlock()
	return append([]Record(nil), c.history...)
}

// record appends a history entry; callers hold c.mu.
func (c *Controller) record(gen uint64, event, note string) {
	c.history = append(c.history, Record{At: c.k.Now(), Gen: gen, Event: event, Note: note})
}

// VersionedName renders the trial name a candidate loads under during
// shadow and canary stages. The versioned name doubles as the
// candidate's telemetry lane, so trial metrics never pollute the
// incumbent's series.
func VersionedName(name string, gen uint64) string {
	return fmt.Sprintf("%s@v%d", name, gen)
}

// BaseName strips a trial version suffix ("lat-guard@v3" → "lat-guard");
// names without one pass through. Only the exact "@v<digits>" shape
// VersionedName generates is treated as a suffix: a guardrail whose
// real name merely contains "@v" (say "svc@v2-guard") is not conflated
// with a trial lane.
func BaseName(name string) string {
	i := strings.LastIndex(name, "@v")
	if i <= 0 || i+2 == len(name) {
		return name
	}
	for _, r := range name[i+2:] {
		if r < '0' || r > '9' {
			return name
		}
	}
	return name[:i]
}

// StrideGate returns a deterministic traffic-splitting act-gate
// admitting num of every den evaluations (indices n with n%den < num);
// invert selects the complement. A candidate and its incumbent attach
// to the same trigger stream, and Monitor.SetActGate restarts a
// monitor's evaluation index at zero: installing the pair's
// complementary gates in the same kernel step (as gateShadow does)
// aligns their indices, so exactly one of the two acts per firing.
func StrideGate(num, den uint64, invert bool) func(uint64) bool {
	if den == 0 {
		den = 1
	}
	if num > den {
		num = den
	}
	return func(n uint64) bool {
		act := n%den < num
		if invert {
			return !act
		}
		return act
	}
}

// neverAct suppresses every action: shadow-stage candidates evaluate
// (and count violations) but cannot touch the system.
func neverAct(uint64) bool { return false }

// Begin starts a staged rollout to the candidate generation cs.
//
// Synchronously it computes the semantic diff against the last-good
// generation, re-runs interference analysis on the changed scope, and
// refuses (*RefusedError, nothing loaded) on warnings. On success the
// admission check, shadow load, canary split, and gate checks run as
// kernel events; watch Phase or History for the outcome. A gate
// regression unloads every candidate and restores incumbent traffic —
// the fleet never sees a bad generation past its canary share.
func (c *Controller) Begin(cs []*compile.Compiled, cfg Config) error {
	cfg.fill()
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.cur != nil && !c.cur.phase.Terminal() {
		return ErrRolloutActive
	}
	// Candidate generations are never reused: a rolled-back generation
	// number stays burned, so telemetry lanes and history stay
	// unambiguous across retries of the same change.
	gen := c.nextGen + 1
	d := Compare(c.lastGood, cs)
	if d.Empty() {
		return ErrNoChanges
	}
	dep := &interfere.Deployment{
		Monitors:    cs,
		Features:    cfg.Features,
		HookBudget:  cfg.HookBudget,
		HookBudgets: cfg.HookBudgets,
	}
	scoped, names := Scope(d, dep)
	c.nextGen = gen
	if rep := interfere.Analyze(scoped); !rep.Clean() {
		c.record(gen, "refused", rep.Summary())
		c.cur = &rollout{gen: gen, cfg: cfg, cs: cs, diff: d, phase: PhaseFailed,
			reason: "scoped interference analysis: " + rep.Summary()}
		return &RefusedError{Report: rep, Scope: names}
	}
	// Declared temporal properties gate the whole candidate generation:
	// a retuned monitor that breaks an "assert always" (or introduces a
	// SAVE oscillation) is refused here, before shadow, like any other
	// fail-static condition.
	if len(cfg.Properties) > 0 {
		trep := modelcheck.Check(dep, modelcheck.Config{Properties: cfg.Properties})
		if !trep.Clean() {
			c.record(gen, "refused", trep.Summary())
			c.cur = &rollout{gen: gen, cfg: cfg, cs: cs, diff: d, phase: PhaseFailed,
				reason: "temporal model checking: " + trep.Summary()}
			return &RefusedError{Report: nil, Temporal: trep, Scope: names}
		}
	}

	st := &rollout{gen: gen, cfg: cfg, cs: cs, diff: d, phase: PhaseAdmitting}
	c.cur = st
	c.record(gen, "phase:admitting", d.Summary())
	c.rt.Telemetry().RolloutPhase(int64(c.k.Now()), gen, "admitting", d.Summary())
	c.k.After(0, func() { c.step(st, PhaseAdmitting, func() { c.admitStep(st, 0) }) })
	return nil
}

// step runs one async stage under the controller lock, skipping stale
// events (a later transition already moved the state machine) and
// failing static on panics: a control-plane bug must never take the
// incumbent generation down with it.
func (c *Controller) step(st *rollout, expect Phase, fn func()) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.cur != st || st.phase != expect {
		return
	}
	defer func() {
		if r := recover(); r != nil {
			c.failStatic(st, fmt.Sprintf("control plane panic: %v", r))
		}
	}()
	fn()
}

// admitStep runs the admission check, retrying transient failures with
// exponential backoff. Callers hold c.mu via step.
func (c *Controller) admitStep(st *rollout, attempt int) {
	combined := append(append([]*compile.Compiled(nil), c.lastGood...), st.cs...)
	err := c.admit(st.cfg.HookBudget, st.cfg.HookBudgets, monitor.HookLoads(combined))
	if err == nil {
		c.loadShadow(st)
		return
	}
	var adm *kernel.AdmissionError
	if errors.As(err, &adm) {
		c.failStatic(st, "admission rejected: "+err.Error())
		return
	}
	if attempt >= st.cfg.AdmitRetries {
		c.failStatic(st, fmt.Sprintf("admission failed after %d retries: %v", attempt, err))
		return
	}
	c.rt.Telemetry().AdmitRetry(int64(c.k.Now()), st.gen, attempt+1, err.Error())
	c.record(st.gen, "admit_retry", err.Error())
	backoff := st.cfg.RetryBackoff << uint(attempt)
	c.k.After(backoff, func() { c.step(st, PhaseAdmitting, func() { c.admitStep(st, attempt+1) }) })
}

// loadShadow loads every candidate under its versioned trial name with
// all actions gated off, then schedules the shadow gate check. Callers
// hold c.mu.
func (c *Controller) loadShadow(st *rollout) {
	incumbent := map[string]bool{}
	for _, old := range c.lastGood {
		incumbent[old.Name] = true
	}
	for _, cc := range st.cs {
		ch := st.diff.Change(cc.Name)
		if ch.Kind == Unchanged {
			continue
		}
		clone := *cc
		clone.Name = VersionedName(cc.Name, st.gen)
		m, err := c.rt.Load(&clone, st.cfg.Options)
		if err != nil {
			c.unloadCandidates(st)
			c.failStatic(st, fmt.Sprintf("loading candidate %s: %v", clone.Name, err))
			return
		}
		m.SetActGate(neverAct)
		p := pair{name: cc.Name, vname: clone.Name, c: cc, cand: m}
		if incumbent[cc.Name] {
			p.inc = c.rt.Monitor(cc.Name)
		}
		st.pairs = append(st.pairs, p)
	}
	for _, ch := range st.diff.Changes {
		if ch.Kind == Removed {
			st.removed = append(st.removed, ch.Name)
		}
	}
	st.phase = PhaseShadow
	st.stageStart = c.k.Now()
	st.statsAt = c.snapshot(st)
	c.record(st.gen, "phase:shadow", fmt.Sprintf("%d candidate(s) evaluating, actions suppressed", len(st.pairs)))
	c.rt.Telemetry().RolloutPhase(int64(c.k.Now()), st.gen, "shadow", "")
	c.k.After(st.cfg.ShadowWindow, func() { c.step(st, PhaseShadow, func() { c.gateShadow(st) }) })
}

// gateShadow checks the shadow window and either starts the canary or
// rolls back. Callers hold c.mu.
func (c *Controller) gateShadow(st *rollout) {
	if reason := c.gateCheck(st, "shadow"); reason != "" {
		c.rollback(st, reason)
		return
	}
	for _, p := range st.pairs {
		p.cand.SetActGate(StrideGate(st.cfg.CanaryNum, st.cfg.CanaryDen, false))
		if p.inc != nil {
			p.inc.SetActGate(StrideGate(st.cfg.CanaryNum, st.cfg.CanaryDen, true))
		}
	}
	st.phase = PhaseCanary
	st.stageStart = c.k.Now()
	st.statsAt = c.snapshot(st)
	c.record(st.gen, "phase:canary", fmt.Sprintf("%d/%d of action traffic", st.cfg.CanaryNum, st.cfg.CanaryDen))
	c.rt.Telemetry().RolloutPhase(int64(c.k.Now()), st.gen, "canary",
		fmt.Sprintf("%d/%d", st.cfg.CanaryNum, st.cfg.CanaryDen))
	c.k.After(st.cfg.CanaryWindow, func() { c.step(st, PhaseCanary, func() { c.gateCanary(st) }) })
}

// gateCanary checks the canary window and promotes or rolls back.
// Callers hold c.mu.
func (c *Controller) gateCanary(st *rollout) {
	if reason := c.gateCheck(st, "canary"); reason != "" {
		c.rollback(st, reason)
		return
	}
	c.promote(st)
}

// snapshot captures candidate and incumbent counters at a stage start,
// the gate fallback when no flight recorder covers the window.
func (c *Controller) snapshot(st *rollout) map[string]monitor.Stats {
	snap := map[string]monitor.Stats{}
	for _, p := range st.pairs {
		snap[p.vname] = p.cand.Stats()
		if p.inc != nil {
			snap[p.name] = p.inc.Stats()
		}
	}
	return snap
}

// gateCheck scores the current stage window against the gates,
// returning the failure reason or "". Callers hold c.mu.
func (c *Controller) gateCheck(st *rollout, stage string) string {
	lanes, ok, truncated := windowLanes(c.rt.Telemetry(), int64(st.stageStart))
	source := "flight"
	if !ok {
		source = "stats"
		if truncated {
			// The flight ring wrapped past the stage start: the gate is
			// scoring coarser monitor-stats deltas. Surface that in the
			// rollout history so a later reader of a pass/fail verdict
			// knows which evidence produced it.
			c.record(st.gen, "gate_window_fallback",
				fmt.Sprintf("%s gate: flight window truncated, scoring monitor-stats deltas", stage))
		}
	}
	prov := c.rt.Provenance()
	failed := ""
	for _, p := range st.pairs {
		var cand, inc lane
		if ok {
			cand, inc = lanes[p.vname], lanes[p.name]
		} else {
			cand = statsLane(p.cand.Stats(), st.statsAt[p.vname])
			if p.inc != nil {
				inc = statsLane(p.inc.Stats(), st.statsAt[p.name])
			}
		}
		reason := st.cfg.Gates.check(stage, p.vname, cand, inc, p.inc != nil)
		if prov != nil {
			rec := provenance.Record{
				Kind: provenance.KindGate, At: int64(c.k.Now()),
				Monitor: p.vname, Gen: int(st.gen),
				Stage: stage, GateReason: reason, GateSource: source,
				Cand: window(cand), Inc: window(inc),
			}
			prov.Commit(&rec)
		}
		if reason != "" && failed == "" {
			failed = reason
		}
	}
	return failed
}

// window converts a gate lane to its provenance wire form.
func window(l lane) provenance.Window {
	return provenance.Window{
		Evals: l.Evals, Violations: l.Violations, Faults: l.Faults,
		Dispatches: l.Dispatches, Failures: l.Failures, Steps: l.Steps,
	}
}

// unloadCandidates removes every trial monitor and restores incumbent
// act-gates. Callers hold c.mu.
func (c *Controller) unloadCandidates(st *rollout) {
	for _, p := range st.pairs {
		_ = c.rt.Unload(p.vname)
		if p.inc != nil {
			p.inc.SetActGate(nil)
		}
	}
}

// rollback aborts the rollout after exposure: candidates unload,
// incumbents take back full traffic, and the fleet stays on the
// last-good generation. Callers hold c.mu.
func (c *Controller) rollback(st *rollout, reason string) {
	c.unloadCandidates(st)
	st.phase = PhaseRolledBack
	st.reason = reason
	c.record(st.gen, "rolled_back", reason)
	c.rt.Telemetry().Rollback(int64(c.k.Now()), c.fleetGen, reason)
	if prov := c.rt.Provenance(); prov != nil {
		rec := provenance.Record{
			Kind: provenance.KindRollback, At: int64(c.k.Now()),
			Monitor: "rollout", Gen: int(st.gen), Reason: reason,
		}
		prov.Commit(&rec)
	}
	c.rt.Log.Append(actions.Violation{
		Time: c.k.Now(), Guardrail: "rollout",
		Note: fmt.Sprintf("gen %d rolled back to gen %d: %s", st.gen, c.fleetGen, reason),
	})
}

// failStatic aborts a rollout that never reached exposure (refused
// admission, load failure, control-plane panic): nothing of the
// candidate generation stays attached and the incumbent generation
// keeps running untouched. Callers hold c.mu.
func (c *Controller) failStatic(st *rollout, reason string) {
	c.unloadCandidates(st)
	st.phase = PhaseFailed
	st.reason = reason
	c.record(st.gen, "failed", reason)
	c.rt.Telemetry().RolloutPhase(int64(c.k.Now()), st.gen, "failed", reason)
	c.rt.Log.Append(actions.Violation{
		Time: c.k.Now(), Guardrail: "rollout",
		Note: fmt.Sprintf("gen %d failed static: %s", st.gen, reason),
	})
}

// promote takes the candidate generation fleet-wide: updated guardrails
// hot-swap under their real names (telemetry lanes and counters
// continue), added ones load fresh, removed ones unload, and the fleet
// generation advances. A failure mid-promote reverts the already-
// swapped guardrails and rolls back. Callers hold c.mu.
func (c *Controller) promote(st *rollout) {
	oldBy := map[string]*compile.Compiled{}
	for _, old := range c.lastGood {
		oldBy[old.Name] = old
	}
	var swapped []*compile.Compiled // old versions to restore on mid-promote failure
	var added []string
	revert := func(failure string) {
		for _, old := range swapped {
			if _, err := c.rt.Update(old, st.cfg.Options); err == nil {
				if m := c.rt.Monitor(old.Name); m != nil {
					m.SetActGate(nil)
				}
			}
		}
		for _, name := range added {
			_ = c.rt.Unload(name)
		}
		c.rollback(st, failure)
	}
	for _, p := range st.pairs {
		if p.inc != nil {
			m, err := c.rt.Update(p.c, st.cfg.Options)
			if err != nil {
				revert(fmt.Sprintf("promoting %s: %v", p.name, err))
				return
			}
			m.SetActGate(nil)
			swapped = append(swapped, oldBy[p.name])
			_ = c.rt.Unload(p.vname)
			continue
		}
		// Added guardrail: retire the trial copy, load under the real
		// name.
		_ = c.rt.Unload(p.vname)
		m, err := c.rt.Load(p.c, st.cfg.Options)
		if err != nil {
			revert(fmt.Sprintf("promoting added %s: %v", p.name, err))
			return
		}
		m.SetActGate(nil)
		added = append(added, p.name)
	}
	for _, name := range st.removed {
		_ = c.rt.Unload(name)
	}
	c.fleetGen = st.gen
	c.k.SetGeneration(st.gen)
	c.lastGood = append([]*compile.Compiled(nil), st.cs...)
	st.phase = PhasePromoted
	c.record(st.gen, "promoted", st.diff.Summary())
	c.rt.Telemetry().Promotion(int64(c.k.Now()), st.gen)
}

// Abort cancels the in-flight rollout, if any, and reports whether one
// was cancelled. A rollout still in admission fails static (nothing was
// exposed); one in shadow or canary rolls back (candidates unload,
// incumbents take back full traffic). Terminal rollouts are untouched —
// Abort never undoes a promotion. The sharded fleet supervisor uses
// this to keep shards in lockstep: when one shard's replica of a
// rollout dies at a gate, the other shards' replicas are aborted at the
// next barrier instead of promoting a generation the fleet has already
// judged bad.
func (c *Controller) Abort(reason string) bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	st := c.cur
	if st == nil || st.phase.Terminal() {
		return false
	}
	if st.phase == PhaseAdmitting {
		c.failStatic(st, "aborted: "+reason)
	} else {
		c.rollback(st, "aborted: "+reason)
	}
	return true
}

// Breakglass quarantines a guardrail fleet-wide in one call: the named
// monitor and any in-flight trial copies (name@v<gen>) are forced to
// shadow (disable=false: still evaluating, never acting) or disabled
// outright (disable=true: not even evaluating). The engagement is
// counted, flight-recorded, and written to the report log. It survives
// promotions of the in-flight rollout for monitors that existed when it
// engaged (Runtime.Update carries quarantine state to the replacement);
// a guardrail *added* by a later promotion was never quarantined and
// loads live. Release with BreakglassRelease.
func (c *Controller) Breakglass(name string, disable bool) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.breakglass(name, disable, true)
}

// BreakglassRelease lifts a breakglass quarantine, restoring the named
// guardrail (and trial copies) to normal operation.
func (c *Controller) BreakglassRelease(name string) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.breakglass(name, false, false)
}

// breakglass applies or lifts the quarantine; callers hold c.mu.
func (c *Controller) breakglass(name string, disable, engage bool) error {
	var hit []*monitor.Monitor
	for _, m := range c.rt.Monitors() {
		if BaseName(m.Name()) == name {
			hit = append(hit, m)
		}
	}
	if len(hit) == 0 {
		return fmt.Errorf("rollout: breakglass: no loaded monitor matches %q", name)
	}
	mode := "shadow"
	if disable {
		mode = "disable"
	}
	for _, m := range hit {
		if engage {
			if disable {
				m.SetEnabled(false)
			} else {
				m.ForceShadow(true)
			}
		} else {
			m.SetEnabled(true)
			m.ForceShadow(false)
		}
	}
	event, note := "breakglass", fmt.Sprintf("%s: %d monitor(s) forced to %s", name, len(hit), mode)
	if !engage {
		event, note = "breakglass_release", fmt.Sprintf("%s: %d monitor(s) restored", name, len(hit))
	}
	c.record(c.fleetGen, event, note)
	c.rt.Telemetry().BreakglassEvent(int64(c.k.Now()), name, mode, engage)
	c.rt.Log.Append(actions.Violation{Time: c.k.Now(), Guardrail: name, Note: event + ": " + note})
	return nil
}
