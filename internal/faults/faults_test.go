package faults

import (
	"math"
	"testing"

	"guardrails/internal/kernel"
	"guardrails/internal/storage"
	"guardrails/internal/vm"
)

func fixedClock(t kernel.Time) func() kernel.Time {
	return func() kernel.Time { return t }
}

func TestTimeWindowGating(t *testing.T) {
	var now kernel.Time
	inj := NewInjector(1, func() kernel.Time { return now })
	inj.add(Rule{Kind: EvalTrap, From: 5 * kernel.Second, Until: 9 * kernel.Second})

	for _, tc := range []struct {
		at   kernel.Time
		want bool
	}{
		{0, false},
		{4999 * kernel.Millisecond, false},
		{5 * kernel.Second, true},
		{8999 * kernel.Millisecond, true},
		{9 * kernel.Second, false}, // Until is exclusive
	} {
		now = tc.at
		got := inj.EvalFault("g") != nil
		if got != tc.want {
			t.Errorf("at %v: fired=%v, want %v", tc.at, got, tc.want)
		}
	}
	if inj.Count(EvalTrap) != 2 {
		t.Errorf("count = %d, want 2", inj.Count(EvalTrap))
	}
}

func TestGuardrailAndKeyFilters(t *testing.T) {
	inj := NewInjector(1, fixedClock(0))
	inj.add(Rule{Kind: LoadNaN, Guardrail: "a", Key: "rate"})
	if _, ok := inj.LoadFault("b", "rate", 1); ok {
		t.Error("fired for wrong guardrail")
	}
	if _, ok := inj.LoadFault("a", "total", 1); ok {
		t.Error("fired for wrong key")
	}
	v, ok := inj.LoadFault("a", "err_rate", 1) // substring match
	if !ok || !math.IsNaN(v) {
		t.Errorf("LoadNaN = (%v, %v), want (NaN, true)", v, ok)
	}

	inj2 := NewInjector(1, fixedClock(0))
	inj2.add(Rule{Kind: ActionFail, Key: "RETRAIN"})
	if err := inj2.ActionFault("g", "REPLACE(a, b)"); err != nil {
		t.Error("ActionFail fired for non-matching action")
	}
	if err := inj2.ActionFault("g", "RETRAIN(linnos)"); err == nil {
		t.Error("ActionFail missed matching action")
	}
}

func TestEveryNAndLimit(t *testing.T) {
	inj := NewInjector(1, fixedClock(0))
	inj.add(Rule{Kind: EvalTrap, EveryN: 3, Limit: 2})
	var fired []int
	for i := 1; i <= 12; i++ {
		if inj.EvalFault("g") != nil {
			fired = append(fired, i)
		}
	}
	if len(fired) != 2 || fired[0] != 3 || fired[1] != 6 {
		t.Errorf("fired on calls %v, want [3 6]", fired)
	}
}

func TestProbIsSeededAndDeterministic(t *testing.T) {
	run := func(seed int64) []int {
		inj := NewInjector(seed, fixedClock(0))
		inj.add(Rule{Kind: EvalTrap, Prob: 0.5})
		var fired []int
		for i := 0; i < 64; i++ {
			if inj.EvalFault("g") != nil {
				fired = append(fired, i)
			}
		}
		return fired
	}
	a, b := run(7), run(7)
	if len(a) == 0 || len(a) == 64 {
		t.Fatalf("prob 0.5 fired %d/64 times", len(a))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("same seed produced different schedules")
		}
	}
}

func TestLoadStaleReplaysPreWindowValue(t *testing.T) {
	var now kernel.Time
	inj := NewInjector(1, func() kernel.Time { return now })
	inj.add(Rule{Kind: LoadStale, Key: "rate", From: 10 * kernel.Second})

	// Before the window: reads pass through and feed the stale cache.
	now = kernel.Second
	if _, ok := inj.LoadFault("g", "rate", 0.01); ok {
		t.Fatal("fired before window")
	}
	now = 2 * kernel.Second
	if _, ok := inj.LoadFault("g", "rate", 0.03); ok {
		t.Fatal("fired before window")
	}

	// Inside the window: the live value is ignored, the last pre-window
	// value replays.
	now = 11 * kernel.Second
	v, ok := inj.LoadFault("g", "rate", 0.99)
	if !ok || v != 0.03 {
		t.Fatalf("stale read = (%v, %v), want (0.03, true)", v, ok)
	}
}

func TestHelperFilter(t *testing.T) {
	inj := NewInjector(1, fixedClock(0))
	inj.add(Rule{Kind: HelperFail, Helpers: []vm.HelperID{vm.HelperSqrt}})
	if err := inj.HelperFault("g", vm.HelperNow); err != nil {
		t.Error("fired for unlisted helper")
	}
	if err := inj.HelperFault("g", vm.HelperSqrt); err == nil {
		t.Error("missed listed helper")
	}
}

func TestPlanArmsReplicaEvents(t *testing.T) {
	k := kernel.New()
	mk := func(name string) *storage.Device {
		d, err := storage.NewDevice(storage.DefaultDeviceConfig(name, 1))
		if err != nil {
			t.Fatal(err)
		}
		return d
	}
	arr, err := storage.NewArray(mk("a"), mk("b"))
	if err != nil {
		t.Fatal(err)
	}
	p := &Plan{Seed: 1, Rules: []Rule{
		{Kind: ReplicaFail, Replica: 1, At: 2 * kernel.Second},
		{Kind: ReplicaHeal, Replica: 1, At: 4 * kernel.Second},
	}}
	inj := p.Arm(k, arr)

	k.RunUntil(kernel.Second)
	if !arr.Alive(1) {
		t.Fatal("replica failed early")
	}
	k.RunUntil(3 * kernel.Second)
	if arr.Alive(1) {
		t.Fatal("replica not failed at 2s")
	}
	k.RunUntil(5 * kernel.Second)
	if !arr.Alive(1) {
		t.Fatal("replica not healed at 4s")
	}
	if inj.Count(ReplicaFail) != 1 || inj.Count(ReplicaHeal) != 1 {
		t.Errorf("counts fail=%d heal=%d, want 1/1; log: %v",
			inj.Count(ReplicaFail), inj.Count(ReplicaHeal), inj.Injections())
	}
}

func TestStandardChaosIsWellFormed(t *testing.T) {
	p := StandardChaos(42)
	if p.Seed != 42 || len(p.Rules) == 0 {
		t.Fatalf("plan = %+v", p)
	}
	kinds := make(map[Kind]bool)
	for _, r := range p.Rules {
		kinds[r.Kind] = true
	}
	for _, want := range []Kind{EvalTrap, LoadNaN, ActionFail, ReplicaFail, ReplicaHeal} {
		if !kinds[want] {
			t.Errorf("standard chaos missing %v", want)
		}
	}
}
