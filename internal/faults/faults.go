// Package faults is the deterministic fault-injection layer for chaos
// experiments against the guardrail runtime. A Plan is a seeded,
// declarative schedule of faults — VM traps, helper-call failures,
// feature-store read corruption, action-backend errors, replica loss —
// that arms against a simulated kernel and plugs into the monitor
// runtime through the monitor.FaultInjector seam.
//
// Everything is schedulable by simulated time ([From, Until) windows,
// At instants) or by call count (EveryN, Limit), and every probabilistic
// choice draws from a seeded RNG: the same Plan against the same system
// replays the same faults, so a chaos run is as reproducible as any
// other experiment in this repository.
package faults

import (
	"fmt"
	"math"
	"math/rand"
	"strings"
	"sync"

	"guardrails/internal/kernel"
	"guardrails/internal/monitor"
	"guardrails/internal/trace"
	"guardrails/internal/vm"
)

// Kind enumerates the injectable fault classes.
type Kind int

const (
	// EvalTrap aborts a monitor evaluation before the program runs, as
	// if the VM had crashed.
	EvalTrap Kind = iota
	// HelperFail fails a VM helper call, surfacing as a TrapHelper.
	HelperFail
	// LoadNaN corrupts a feature-store read to NaN.
	LoadNaN
	// LoadStale replaces a feature-store read with the last value the
	// injector observed for that key before the fault window opened.
	LoadStale
	// ActionFail fails an action dispatch before its backend runs.
	ActionFail
	// ReplicaFail takes a storage replica out of service at time At.
	ReplicaFail
	// ReplicaHeal returns a storage replica to service at time At.
	ReplicaHeal
)

// String names the kind.
func (k Kind) String() string {
	switch k {
	case EvalTrap:
		return "eval-trap"
	case HelperFail:
		return "helper-fail"
	case LoadNaN:
		return "load-nan"
	case LoadStale:
		return "load-stale"
	case ActionFail:
		return "action-fail"
	case ReplicaFail:
		return "replica-fail"
	case ReplicaHeal:
		return "replica-heal"
	default:
		return fmt.Sprintf("kind(%d)", int(k))
	}
}

// Rule schedules one fault class. Zero-valued gates are permissive: a
// rule with only a Kind fires on every matching call, forever.
type Rule struct {
	// Kind selects the fault class.
	Kind Kind
	// Guardrail restricts the rule to one monitor ("" = all).
	Guardrail string
	// Key is the feature-store key (LoadNaN/LoadStale) or a substring
	// of the rendered action name, e.g. "RETRAIN" (ActionFail).
	// "" matches everything.
	Key string
	// Helpers restricts HelperFail to these helper IDs (empty = any).
	Helpers []vm.HelperID
	// From and Until bound the rule to [From, Until) in simulated time.
	// Until 0 means forever.
	From, Until kernel.Time
	// EveryN fires the rule on every Nth matching call (0 or 1 = every
	// call).
	EveryN int
	// Limit caps the rule's total firings (0 = unlimited).
	Limit int
	// Prob fires the rule with this probability per matching call,
	// drawn from the plan's seeded RNG (0 = unset = always fire).
	Prob float64
	// Replica and At place ReplicaFail/ReplicaHeal events.
	Replica int
	At      kernel.Time
}

// Injection is one fault the injector actually delivered.
type Injection struct {
	Time      kernel.Time
	Kind      Kind
	Guardrail string
	Detail    string
}

// String renders the injection for logs.
func (i Injection) String() string {
	s := fmt.Sprintf("[%s] %s", i.Time, i.Kind)
	if i.Guardrail != "" {
		s += " guardrail=" + i.Guardrail
	}
	if i.Detail != "" {
		s += " " + i.Detail
	}
	return s
}

type armedRule struct {
	Rule
	calls int // matching calls seen (for EveryN)
	fired int // faults delivered (for Limit)
}

// Injector delivers a Plan's faults. It implements
// monitor.FaultInjector and is safe for concurrent use.
type Injector struct {
	mu       sync.Mutex
	rules    []*armedRule
	rng      *rand.Rand
	clock    func() kernel.Time
	log      []Injection
	counts   map[Kind]int
	lastSeen map[string]float64
}

var _ monitor.FaultInjector = (*Injector)(nil)

// NewInjector builds an injector with the given seed and clock. Most
// callers should use Plan.Arm instead.
func NewInjector(seed int64, clock func() kernel.Time) *Injector {
	return &Injector{
		rng:      trace.NewRand(trace.Split(seed, "faults")),
		clock:    clock,
		counts:   make(map[Kind]int),
		lastSeen: make(map[string]float64),
	}
}

// add arms one rule.
func (inj *Injector) add(r Rule) {
	inj.mu.Lock()
	defer inj.mu.Unlock()
	inj.rules = append(inj.rules, &armedRule{Rule: r})
}

// fires decides, under the lock, whether an armed rule delivers a fault
// at time now for a call matching (guardrail, key).
func (inj *Injector) fires(r *armedRule, now kernel.Time, guardrail, key string) bool {
	if r.Guardrail != "" && r.Guardrail != guardrail {
		return false
	}
	if now < r.From || (r.Until > 0 && now >= r.Until) {
		return false
	}
	if r.Key != "" && !strings.Contains(key, r.Key) {
		return false
	}
	if r.Limit > 0 && r.fired >= r.Limit {
		return false
	}
	r.calls++
	if r.EveryN > 1 && r.calls%r.EveryN != 0 {
		return false
	}
	if r.Prob > 0 && inj.rng.Float64() >= r.Prob {
		return false
	}
	r.fired++
	return true
}

// record logs one delivered fault. Callers hold inj.mu.
func (inj *Injector) record(now kernel.Time, kind Kind, guardrail, detail string) {
	inj.counts[kind]++
	inj.log = append(inj.log, Injection{Time: now, Kind: kind, Guardrail: guardrail, Detail: detail})
}

// EvalFault implements monitor.FaultInjector.
func (inj *Injector) EvalFault(guardrail string) error {
	now := inj.clock()
	inj.mu.Lock()
	defer inj.mu.Unlock()
	for _, r := range inj.rules {
		if r.Kind == EvalTrap && inj.fires(r, now, guardrail, "") {
			inj.record(now, EvalTrap, guardrail, "")
			return fmt.Errorf("faults: injected evaluation trap")
		}
	}
	return nil
}

// LoadFault implements monitor.FaultInjector. Non-firing calls feed the
// stale-value cache so LoadStale has a past to replay.
func (inj *Injector) LoadFault(guardrail, key string, value float64) (float64, bool) {
	now := inj.clock()
	inj.mu.Lock()
	defer inj.mu.Unlock()
	for _, r := range inj.rules {
		switch r.Kind {
		case LoadNaN:
			if inj.fires(r, now, guardrail, key) {
				inj.record(now, LoadNaN, guardrail, "key="+key)
				return math.NaN(), true
			}
		case LoadStale:
			if inj.fires(r, now, guardrail, key) {
				stale := inj.lastSeen[key]
				inj.record(now, LoadStale, guardrail, fmt.Sprintf("key=%s stale=%g", key, stale))
				return stale, true
			}
		}
	}
	inj.lastSeen[key] = value
	return 0, false
}

// HelperFault implements monitor.FaultInjector.
func (inj *Injector) HelperFault(guardrail string, h vm.HelperID) error {
	now := inj.clock()
	inj.mu.Lock()
	defer inj.mu.Unlock()
	for _, r := range inj.rules {
		if r.Kind != HelperFail {
			continue
		}
		if len(r.Helpers) > 0 {
			ok := false
			for _, want := range r.Helpers {
				if want == h {
					ok = true
					break
				}
			}
			if !ok {
				continue
			}
		}
		if inj.fires(r, now, guardrail, "") {
			inj.record(now, HelperFail, guardrail, fmt.Sprintf("helper=%d", h))
			return fmt.Errorf("faults: injected helper %d failure", h)
		}
	}
	return nil
}

// ActionFault implements monitor.FaultInjector.
func (inj *Injector) ActionFault(guardrail, action string) error {
	now := inj.clock()
	inj.mu.Lock()
	defer inj.mu.Unlock()
	for _, r := range inj.rules {
		if r.Kind == ActionFail && inj.fires(r, now, guardrail, action) {
			inj.record(now, ActionFail, guardrail, "action="+action)
			return fmt.Errorf("faults: injected %s backend failure", action)
		}
	}
	return nil
}

// Count returns how many faults of the given kind were delivered.
func (inj *Injector) Count(k Kind) int {
	inj.mu.Lock()
	defer inj.mu.Unlock()
	return inj.counts[k]
}

// Injections returns the delivered faults in order.
func (inj *Injector) Injections() []Injection {
	inj.mu.Lock()
	defer inj.mu.Unlock()
	return append([]Injection(nil), inj.log...)
}

// Plan is a seeded fault schedule.
type Plan struct {
	// Seed drives every probabilistic choice the plan makes.
	Seed int64
	// Rules are the faults to arm.
	Rules []Rule
}

// Target is anything whose replicas the plan can fail and heal —
// storage.Array satisfies it. Fail and Heal report whether the
// transition actually happened (e.g. Fail refuses the last survivor).
type Target interface {
	Fail(replica int) bool
	Heal(replica int) bool
}

// Arm builds the plan's injector against a kernel clock and schedules
// its replica events against the supplied targets (each ReplicaFail/
// ReplicaHeal rule applies to every target). The returned injector
// still has to be installed with Runtime.SetFaultInjector; replica
// events run regardless.
func (p *Plan) Arm(k *kernel.Kernel, arrays ...Target) *Injector {
	inj := NewInjector(p.Seed, k.Now)
	for _, r := range p.Rules {
		switch r.Kind {
		case ReplicaFail, ReplicaHeal:
			rule := r
			for _, arr := range arrays {
				arr := arr
				k.At(rule.At, func() {
					now := k.Now()
					var done bool
					if rule.Kind == ReplicaFail {
						done = arr.Fail(rule.Replica)
					} else {
						done = arr.Heal(rule.Replica)
					}
					if done {
						inj.mu.Lock()
						inj.record(now, rule.Kind, "", fmt.Sprintf("replica=%d", rule.Replica))
						inj.mu.Unlock()
					}
				})
			}
		default:
			inj.add(r)
		}
	}
	return inj
}

// StandardChaos is the canonical chaos schedule the bench's -chaos flag
// runs against the Fig. 2 system: a burst of evaluation traps early in
// the calm phase (tripping the breaker), a NaN window on the guarded
// feature, a retrain-backend outage right as the workload shifts, and a
// replica lost and healed late in the run.
func StandardChaos(seed int64) *Plan {
	return &Plan{
		Seed: seed,
		Rules: []Rule{
			{Kind: EvalTrap, Guardrail: "low-false-submit",
				From: 5 * kernel.Second, Until: 9 * kernel.Second},
			{Kind: LoadNaN, Key: "false_submit_rate",
				From: 10 * kernel.Second, Until: 12 * kernel.Second},
			{Kind: ActionFail, Key: "RETRAIN",
				From: 20 * kernel.Second, Until: 23 * kernel.Second},
			{Kind: ReplicaFail, Replica: 1, At: 35 * kernel.Second},
			{Kind: ReplicaHeal, Replica: 1, At: 45 * kernel.Second},
		},
	}
}
