package compile

import (
	"strings"
	"testing"

	"guardrails/internal/vm"
)

// opCounts compiles src at the given level and tallies opcode usage.
func opCounts(t *testing.T, src string, level int) (map[vm.Op]int, *Compiled) {
	t.Helper()
	cs, err := SourceWith(src, Options{Level: level})
	if err != nil {
		t.Fatalf("compile -O%d: %v\n%s", level, err, src)
	}
	if len(cs) != 1 {
		t.Fatalf("compiled %d guardrails", len(cs))
	}
	counts := map[vm.Op]int{}
	for _, in := range cs[0].Program.Code {
		counts[in.Op]++
	}
	return counts, cs[0]
}

func ruleSrc(expr string) string {
	return "guardrail g { trigger: { TIMER(0,1) }, rule: { " + expr + " }, action: { SAVE(bad, 1) } }"
}

func TestAlgebraicSimplification(t *testing.T) {
	cases := []struct {
		expr   string
		banned []vm.Op
	}{
		{"LOAD(x) + 0 < 1", []vm.Op{vm.OpAdd, vm.OpAddI}},
		{"0 + LOAD(x) < 1", []vm.Op{vm.OpAdd, vm.OpAddI}},
		{"LOAD(x) - 0 < 1", []vm.Op{vm.OpSub, vm.OpSubI}},
		{"LOAD(x) * 1 < 1", []vm.Op{vm.OpMul, vm.OpMulI}},
		{"1 * LOAD(x) < 1", []vm.Op{vm.OpMul, vm.OpMulI}},
		{"LOAD(x) / 1 < 1", []vm.Op{vm.OpDiv, vm.OpDivI}},
		{"-(-LOAD(x)) < 1", []vm.Op{vm.OpNeg}},
	}
	for _, c := range cases {
		counts, compiled := opCounts(t, ruleSrc(c.expr), 1)
		for _, op := range c.banned {
			if counts[op] > 0 {
				t.Errorf("%s: identity not simplified away\n%s", c.expr, compiled.Program)
			}
		}
	}
}

func TestConstFoldEliminatesHelperCalls(t *testing.T) {
	src := ruleSrc("sqrt(16) <= LOAD(x)")
	o0, _ := opCounts(t, src, 0)
	o1, c := opCounts(t, src, 1)
	if o0[vm.OpCall] != 1 {
		t.Errorf("-O0 should call sqrt once, got %d", o0[vm.OpCall])
	}
	if o1[vm.OpCall] != 0 {
		t.Errorf("-O1 should fold sqrt(16)\n%s", c.Program)
	}
	// Semantics unchanged.
	out, _ := runProg(t, c, map[string]float64{"x": 4})
	if out != 1 {
		t.Errorf("x=4: got %v", out)
	}
	out, _ = runProg(t, c, map[string]float64{"x": 3})
	if out != 0 {
		t.Errorf("x=3: got %v", out)
	}
}

func TestCSECollapsesRepeatedLoads(t *testing.T) {
	src := ruleSrc("LOAD(k) + LOAD(k) + LOAD(k) <= 3 * LOAD(k)")
	o0, _ := opCounts(t, src, 0)
	o1, c := opCounts(t, src, 1)
	if o0[vm.OpLoad] != 4 {
		t.Errorf("-O0 loads = %d, want 4", o0[vm.OpLoad])
	}
	if o1[vm.OpLoad] != 1 {
		t.Errorf("-O1 loads = %d, want 1 (CSE hits the store once)\n%s", o1[vm.OpLoad], c.Program)
	}
	out, _ := runProg(t, c, map[string]float64{"k": 7})
	if out != 1 {
		t.Errorf("3k <= 3k must hold, got %v", out)
	}
}

func TestCSERespectsStoreClobber(t *testing.T) {
	// The violated path stores to k between two loads of k in separate
	// rules — but rules are separate blocks anyway; the load in the action
	// argument after a SAVE must not reuse the pre-store value.
	src := `
guardrail clobber {
    trigger: { TIMER(0,1) },
    rule: { LOAD(k) < 0 },
    action: { SAVE(k, 5); REPORT(LOAD(k)) }
}`
	cs, err := Source(src)
	if err != nil {
		t.Fatal(err)
	}
	_, e := runProg(t, cs[0], map[string]float64{"k": 1}) // violates k < 0
	if len(e.actions) != 1 || e.actions[0].args[0] != 5 {
		t.Errorf("REPORT saw stale k: %+v\n%s", e.actions, cs[0].Program)
	}
}

func TestCSEDoesNotMergeAcrossHelperState(t *testing.T) {
	// now() is stateful: two calls must both survive optimization.
	src := ruleSrc("now() <= now()")
	o1, c := opCounts(t, src, 1)
	if o1[vm.OpCall] != 2 {
		t.Errorf("now() calls = %d, want 2\n%s", o1[vm.OpCall], c.Program)
	}
}

func TestDCERemovesUnreachableViolationPath(t *testing.T) {
	// A constant-true rule makes the violation path unreachable; DCE drops
	// the whole action sequence including its helper dispatch.
	src := `
guardrail ct {
    trigger: { TIMER(0,1) },
    rule: { 1 < 2 },
    action: { REPORT(LOAD(a), LOAD(b)); RETRAIN(m) }
}`
	o1, c := opCounts(t, src, 1)
	if o1[vm.OpCall] != 0 || o1[vm.OpLoad] != 0 {
		t.Errorf("unreachable action path survived\n%s", c.Program)
	}
	if len(c.Program.Code) != 2 {
		t.Errorf("constant-true program = %d insns, want 2 (movi+exit)\n%s",
			len(c.Program.Code), c.Program)
	}
}

func TestImmediateSelection(t *testing.T) {
	// Constant operands fold into immediate ALU and jump forms: no
	// register is wasted holding 0.05 or 2.
	counts, c := opCounts(t, ruleSrc("LOAD(x) * 2 <= 0.05"), 1)
	if counts[vm.OpMul] > 0 || counts[vm.OpMulI] != 1 {
		t.Errorf("mul-by-2 should use the immediate form\n%s", c.Program)
	}
	if counts[vm.OpJLe]+counts[vm.OpJGt] > 0 {
		t.Errorf("threshold compare should use the immediate form\n%s", c.Program)
	}
	out, _ := runProg(t, c, map[string]float64{"x": 0.02})
	if out != 1 {
		t.Errorf("0.04 <= 0.05 must hold, got %v", out)
	}
	out, _ = runProg(t, c, map[string]float64{"x": 0.03})
	if out != 0 {
		t.Errorf("0.06 <= 0.05 must fail, got %v", out)
	}
}

func TestOptimizationNeverGrowsPrograms(t *testing.T) {
	srcs := []string{
		listing2,
		ruleSrc("LOAD(a) < 10 && LOAD(b) > 2"),
		ruleSrc("abs(LOAD(x) - LOAD(y)) / max(LOAD(y), 1) <= 0.5"),
		ruleSrc("sqrt(LOAD(v)) + log2(LOAD(n)) < now()"),
		ruleSrc("!(LOAD(x) == 0) && (LOAD(y) < 5 || LOAD(z) >= 1)"),
	}
	for _, src := range srcs {
		o0, _ := opCounts(t, src, 0)
		o1, c := opCounts(t, src, 1)
		var n0, n1 int
		for _, n := range o0 {
			n0 += n
		}
		for _, n := range o1 {
			n1 += n
		}
		if n1 > n0 {
			t.Errorf("optimization grew program from %d to %d insns\n%s", n0, n1, c.Program)
		}
	}
}

func TestTraceNamesEveryPass(t *testing.T) {
	var sb strings.Builder
	if _, err := SourceWith(listing2, Options{Level: 1, Trace: &sb}); err != nil {
		t.Fatal(err)
	}
	for _, p := range passesForLevel(1) {
		if !strings.Contains(sb.String(), "; after "+p.name) {
			t.Errorf("trace missing pass %q", p.name)
		}
	}
}
