package compile

import (
	"fmt"

	"guardrails/internal/vm"
)

// Codegen: IR → VM bytecode. Virtual registers are mapped onto the
// general-purpose file r6..r15 by linear scan over def–last-use
// intervals, with two space optimizations:
//
//   - a constant vreg consumed only by call arguments or a return is
//     never materialized: its value is emitted directly as a movi into
//     the argument/return register;
//   - when an operand dies at the defining instruction, the destination
//     coalesces onto the operand's register, which makes most two-address
//     mov fixups degenerate into nothing.
//
// Conditional terminators emit the VM's fused compare-and-jump opcodes;
// a branch whose then-target is the next block in layout order inverts
// the comparison so only the else-edge costs an instruction.

// maxGPRegs is the size of the allocatable register file.
const maxGPRegs = regStackTop - regStackBase + 1

// vinfo is per-vreg allocation state.
type vinfo struct {
	def      int // linear position of the first defining instruction
	lastUse  int
	nuses    int
	reg      int8 // assigned VM register, -1 until allocated
	mat      bool // needs a register at all
	isConst  bool
	regUse   bool // used somewhere other than a call argument / return
	constVal float64
}

// genProgram emits f as an assembled (but unverified) VM program. It
// never mutates f, so it can be run both before and after the pass
// pipeline to measure what optimization bought.
func genProgram(f *irFunc, name string) (*vm.Program, error) {
	info := make([]vinfo, f.nvregs)
	for i := range info {
		info[i].def, info[i].reg = -1, -1
	}
	useAt := func(v vreg, p int, hard bool) {
		iv := &info[v]
		if p > iv.lastUse {
			iv.lastUse = p
		}
		iv.nuses++
		if hard {
			iv.regUse = true
		}
	}
	defAt := func(v vreg, p int) {
		iv := &info[v]
		if iv.def < 0 {
			iv.def, iv.lastUse = p, p
		} else if p > iv.lastUse {
			// Second definition of a multi-def vreg: the register must
			// stay reserved across the whole diamond.
			iv.lastUse = p
		}
	}

	// Pass 1: positions, intervals, and use contexts.
	pos := 0
	for _, b := range f.blocks {
		for i := range b.ins {
			in := &b.ins[i]
			switch in.Op {
			case irConst, irLoad:
				defAt(in.Dst, pos)
			case irStore:
				useAt(in.A, pos, true)
			case irCall:
				for _, a := range in.Args {
					useAt(a, pos, false)
				}
				defAt(in.Dst, pos)
			case irCopy, irNeg, irAbs, irNot, irBoo, irAddI, irSubI, irMulI, irDivI:
				useAt(in.A, pos, true)
				defAt(in.Dst, pos)
			default: // binary register forms
				useAt(in.A, pos, true)
				useAt(in.B, pos, true)
				defAt(in.Dst, pos)
			}
			pos++
		}
		switch b.term.Kind {
		case termBr:
			useAt(b.term.A, pos, true)
			if !b.term.UseImm {
				useAt(b.term.B, pos, true)
			}
		case termRet:
			useAt(b.term.Ret, pos, false)
		}
		pos++
	}
	for _, b := range f.blocks {
		for _, in := range b.ins {
			if in.Op == irConst && !f.multiDef[in.Dst] {
				info[in.Dst].isConst = true
				info[in.Dst].constVal = in.Imm
			}
		}
	}
	for i := range info {
		iv := &info[i]
		if iv.def < 0 {
			continue
		}
		iv.mat = !(iv.isConst && !iv.regUse)
	}
	for _, b := range f.blocks {
		for _, in := range b.ins {
			// An unused call result needs no register: the mov from r0 is
			// simply not emitted.
			if in.Op == irCall && info[in.Dst].nuses == 0 {
				info[in.Dst].mat = false
			}
		}
	}

	// Pass 2: linear-scan allocation at each first definition.
	var owner [maxGPRegs]vreg
	for i := range owner {
		owner[i] = -1
	}
	allocAt := func(v vreg, p int, ops []vreg) error {
		iv := &info[v]
		if !iv.mat || iv.reg >= 0 {
			return nil
		}
		for r := range owner {
			if w := owner[r]; w >= 0 && info[w].lastUse < p {
				owner[r] = -1
			}
		}
		for _, o := range ops { // coalesce onto a dying operand
			io := &info[o]
			if o != v && io.mat && io.reg >= 0 && io.lastUse <= p &&
				owner[io.reg-regStackBase] == o {
				owner[io.reg-regStackBase] = v
				iv.reg = io.reg
				return nil
			}
		}
		for r := range owner {
			if owner[r] < 0 {
				owner[r] = v
				iv.reg = int8(regStackBase + r)
				return nil
			}
		}
		return fmt.Errorf("rule expression too deep (more than %d live temporaries)", maxGPRegs)
	}
	pos = 0
	opsBuf := make([]vreg, 0, MaxReportArgs+1)
	for _, b := range f.blocks {
		for i := range b.ins {
			in := &b.ins[i]
			if in.Op != irStore {
				buf := opsBuf[:0]
				switch in.Op {
				case irConst, irLoad:
				case irCall:
					buf = append(buf, in.Args...)
				case irCopy, irNeg, irAbs, irNot, irBoo, irAddI, irSubI, irMulI, irDivI:
					buf = append(buf, in.A)
				default:
					buf = append(buf, in.A, in.B)
				}
				if err := allocAt(in.Dst, pos, buf); err != nil {
					return nil, err
				}
			}
			pos++
		}
		pos++
	}

	// Pass 3: emission.
	bld := vm.NewBuilder(name)
	lbl := func(b *block) string { return fmt.Sprintf("b%d", b.id) }
	rg := func(v vreg) uint8 { return uint8(info[v].reg) }
	binOps := map[irOp]vm.Op{
		irAdd: vm.OpAdd, irSub: vm.OpSub, irMul: vm.OpMul,
		irDiv: vm.OpDiv, irMin: vm.OpMin, irMax: vm.OpMax,
	}
	commutative := map[irOp]bool{irAdd: true, irMul: true, irMin: true, irMax: true}
	immOps := map[irOp]vm.Op{
		irAddI: vm.OpAddI, irSubI: vm.OpSubI, irMulI: vm.OpMulI, irDivI: vm.OpDivI,
	}
	unOps := map[irOp]vm.Op{irNeg: vm.OpNeg, irAbs: vm.OpAbs, irNot: vm.OpNot, irBoo: vm.OpBoo}

	for bi, b := range f.blocks {
		bld.Label(lbl(b))
		var next *block
		if bi+1 < len(f.blocks) {
			next = f.blocks[bi+1]
		}
		for i := range b.ins {
			in := &b.ins[i]
			switch in.Op {
			case irConst:
				if info[in.Dst].mat {
					bld.MovI(rg(in.Dst), in.Imm)
				}
			case irLoad:
				bld.Load(rg(in.Dst), in.Sym)
			case irStore:
				bld.Store(in.Sym, rg(in.A))
			case irCopy:
				switch {
				case !info[in.A].mat:
					bld.MovI(rg(in.Dst), info[in.A].constVal)
				case rg(in.Dst) != rg(in.A):
					bld.Mov(rg(in.Dst), rg(in.A))
				}
			case irNeg, irAbs, irNot, irBoo:
				d, a := rg(in.Dst), rg(in.A)
				if d != a {
					bld.Mov(d, a)
				}
				bld.Un(unOps[in.Op], d)
			case irAddI, irSubI, irMulI, irDivI:
				d, a := rg(in.Dst), rg(in.A)
				if d != a {
					bld.Mov(d, a)
				}
				bld.ALUI(immOps[in.Op], d, in.Imm)
			case irCall:
				for j, a := range in.Args {
					argReg := uint8(1 + j)
					if info[a].mat {
						bld.Mov(argReg, rg(a))
					} else {
						bld.MovI(argReg, info[a].constVal)
					}
				}
				bld.Call(in.Helper)
				if info[in.Dst].mat {
					bld.Mov(rg(in.Dst), 0)
				}
			default: // binary register forms, two-address emission
				op := binOps[in.Op]
				d, a, bb := rg(in.Dst), rg(in.A), rg(in.B)
				switch {
				case d == a:
					bld.ALU(op, d, bb)
				case d == bb && commutative[in.Op]:
					bld.ALU(op, d, a)
				case d == bb:
					// dst aliases the right operand of a non-commutative op:
					// park it in the (call-clobbered, here free) r5 scratch.
					bld.Mov(5, bb)
					bld.Mov(d, a)
					bld.ALU(op, d, 5)
				default:
					bld.Mov(d, a)
					bld.ALU(op, d, bb)
				}
			}
		}
		t := &b.term
		switch t.Kind {
		case termJmp:
			if t.Then != next {
				bld.Jmp(lbl(t.Then))
			}
		case termBr:
			emit := func(c cmpKind, target *block) {
				if t.UseImm {
					bld.JmpIfI(c.jumpOp(true), rg(t.A), t.Imm, lbl(target))
				} else {
					bld.JmpIf(c.jumpOp(false), rg(t.A), rg(t.B), lbl(target))
				}
			}
			switch {
			case t.Then == next:
				emit(t.Cmp.invert(), t.Else)
			case t.Else == next:
				emit(t.Cmp, t.Then)
			default:
				emit(t.Cmp, t.Then)
				bld.Jmp(lbl(t.Else))
			}
		case termRet:
			if info[t.Ret].mat {
				bld.Mov(0, rg(t.Ret))
			} else {
				bld.MovI(0, info[t.Ret].constVal)
			}
			bld.Exit()
		default:
			return nil, fmt.Errorf("internal error: unterminated block b%d", b.id)
		}
	}
	return bld.Finish()
}
