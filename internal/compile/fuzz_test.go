package compile

import (
	"math"
	"testing"

	"guardrails/internal/spec"
	"guardrails/internal/vm"
)

// FuzzOptDifferential is the optimizer's semantics oracle: any source
// that compiles at both -O0 (straight lowering) and -O1 (full pass
// pipeline) must behave identically when both programs replay the same
// concrete feature assignment on the real interpreter — same exit value,
// same helper-call sequence, same final value for every stored key. The
// optimizer may change instruction count and branch shape, never
// observable behavior.
func FuzzOptDifferential(f *testing.F) {
	f.Add(`guardrail g {
    trigger: { TIMER(0, 1e9) },
    rule: { LOAD(qdepth) > 8 },
    action: { REPORT(LOAD(qdepth)) }
}`, 42.0, -1.0)
	f.Add(`guardrail h {
    trigger: { FUNCTION(io_uring_submit) },
    rule: {
        LOAD(err_rate) <= 0.25
        LOAD(io_lat_p99) / 1e6 < 5 || LOAD(qdepth) == 0
    },
    action: {
        SAVE(serving_mode, 1)
        REPORT(1)
    }
}`, 0.5, 3e6)
	f.Add(`guardrail fold {
    trigger: { TIMER(0, 1e9) },
    rule: { 2 * 3 + LOAD(a) > 6 - 1 },
    action: { SAVE(b, LOAD(a) * 0 + 1) }
}`, 1.0, 0.0)
	f.Fuzz(func(t *testing.T, src string, x, y float64) {
		if len(src) > 4096 {
			return
		}
		file, err := spec.Parse(src)
		if err != nil {
			return
		}
		gs := file.Guardrails
		if len(gs) > 4 {
			gs = gs[:4]
		}
		for _, g := range gs {
			c0, err0 := GuardrailWith(g, Options{Level: 0})
			c1, err1 := GuardrailWith(g, Options{Level: 1})
			if err0 != nil || err1 != nil {
				// Either level may reject (e.g. -O0 cannot prove a
				// division safe that -O1 folds away); only dual
				// acceptance is comparable.
				continue
			}
			assign := map[string]float64{}
			vals := []float64{x, y}
			for i, k := range union(vm.LoadedKeys(c0.Program), vm.LoadedKeys(c1.Program)) {
				assign[k] = vals[i%len(vals)]
			}
			r0 := vm.ReplayProgram(c0.Program, assign, x, 1000)
			r1 := vm.ReplayProgram(c1.Program, assign, x, 1000)
			if r0.Err != nil || r1.Err != nil {
				t.Fatalf("%s: verified program trapped: -O0 %v, -O1 %v", g.Name, r0.Err, r1.Err)
			}
			if !eqFloat(r0.R0, r1.R0) || r0.Violated != r1.Violated {
				t.Fatalf("%s: exit divergence: -O0 (r0=%v violated=%v) vs -O1 (r0=%v violated=%v)\nassign=%v\n-O0:\n%s\n-O1:\n%s",
					g.Name, r0.R0, r0.Violated, r1.R0, r1.Violated, assign, c0.Program, c1.Program)
			}
			if len(r0.Calls) != len(r1.Calls) {
				t.Fatalf("%s: helper-call divergence: -O0 %v vs -O1 %v", g.Name, r0.Calls, r1.Calls)
			}
			for i := range r0.Calls {
				if r0.Calls[i].Helper != r1.Calls[i].Helper || !eqFloat(r0.Calls[i].Arg, r1.Calls[i].Arg) {
					t.Fatalf("%s: call %d diverges: -O0 %v vs -O1 %v", g.Name, i, r0.Calls[i], r1.Calls[i])
				}
			}
			for _, k := range storedKeys(r0, r1) {
				v0, ok0 := r0.FinalStore(k)
				v1, ok1 := r1.FinalStore(k)
				if ok0 != ok1 || (ok0 && !eqFloat(v0, v1)) {
					t.Fatalf("%s: final store of %q diverges: -O0 (%v,%v) vs -O1 (%v,%v)",
						g.Name, k, v0, ok0, v1, ok1)
				}
			}
		}
	})
}

func eqFloat(a, b float64) bool {
	return a == b || (math.IsNaN(a) && math.IsNaN(b))
}

func union(a, b []string) []string {
	seen := map[string]bool{}
	var out []string
	for _, k := range append(append([]string(nil), a...), b...) {
		if !seen[k] {
			seen[k] = true
			out = append(out, k)
		}
	}
	return out
}

func storedKeys(rs ...*vm.Replay) []string {
	seen := map[string]bool{}
	var out []string
	for _, r := range rs {
		for _, s := range r.Stores {
			if !seen[s.Key] {
				seen[s.Key] = true
				out = append(out, s.Key)
			}
		}
	}
	return out
}
