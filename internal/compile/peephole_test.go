package compile

import (
	"testing"

	"guardrails/internal/vm"
)

func TestPeepholeJumpThreading(t *testing.T) {
	// jmp +1 hops to a jmp +1 which hops to exit: both thread to the
	// target and then die as jumps-to-next after deletions collapse.
	code := []vm.Instr{
		{Op: vm.OpJmp, Off: 1},          // 0 -> 2
		{Op: vm.OpMovI, Dst: 0, Imm: 1}, // 1 unreachable
		{Op: vm.OpJmp, Off: 1},          // 2 -> 4
		{Op: vm.OpMovI, Dst: 0, Imm: 2}, // 3 unreachable
		{Op: vm.OpMovI, Dst: 0, Imm: 3}, // 4
		{Op: vm.OpExit},                 // 5
	}
	got := Peephole(code)
	// 0 threads to 4; the chain's middle jump is bypassed.
	if got[0].Op != vm.OpJmp || got[0].Off != 3 {
		t.Errorf("jump not threaded: %+v", got)
	}
}

func TestPeepholeDeletesJumpToNext(t *testing.T) {
	code := []vm.Instr{
		{Op: vm.OpJGt, Dst: 6, Src: 7, Off: 0}, // jump to next: no-op either way
		{Op: vm.OpMovI, Dst: 0, Imm: 1},
		{Op: vm.OpExit},
	}
	got := Peephole(code)
	if len(got) != 2 || got[0].Op != vm.OpMovI {
		t.Errorf("jump-to-next survived: %+v", got)
	}
}

func TestPeepholeDeletesSelfMov(t *testing.T) {
	code := []vm.Instr{
		{Op: vm.OpMov, Dst: 6, Src: 6},
		{Op: vm.OpMovI, Dst: 0, Imm: 1},
		{Op: vm.OpExit},
	}
	got := Peephole(code)
	if len(got) != 2 {
		t.Errorf("self-mov survived: %+v", got)
	}
}

func TestPeepholeRefusesCmpFusion(t *testing.T) {
	// Register still read after the compare: fusion would lose its value.
	live := []vm.Instr{
		{Op: vm.OpMovI, Dst: 7, Imm: 5},
		{Op: vm.OpJGt, Dst: 6, Src: 7, Off: 1},
		{Op: vm.OpMov, Dst: 0, Src: 7}, // r7 read here
		{Op: vm.OpExit},
		{Op: vm.OpMovI, Dst: 0, Imm: 0},
		{Op: vm.OpExit},
	}
	if got := Peephole(live); len(got) != len(live) || got[1].Op != vm.OpJGt {
		t.Errorf("fused despite live register: %+v", got)
	}
	// Compare is itself a jump target: the path arriving there never ran
	// the movi, so the immediate would be wrong.
	targeted := []vm.Instr{
		{Op: vm.OpJEq, Dst: 6, Src: 6, Off: 1}, // -> pc 2, the compare
		{Op: vm.OpMovI, Dst: 7, Imm: 5},
		{Op: vm.OpJGt, Dst: 6, Src: 7, Off: 1},
		{Op: vm.OpExit},
		{Op: vm.OpMovI, Dst: 0, Imm: 0},
		{Op: vm.OpExit},
	}
	if got := Peephole(targeted); got[2].Op != vm.OpJGt {
		t.Errorf("fused despite jump into the pair: %+v", got)
	}
}

func TestPeepholeFusesDeadMoviCmp(t *testing.T) {
	code := []vm.Instr{
		{Op: vm.OpLoad, Dst: 6, Cell: 0},
		{Op: vm.OpMovI, Dst: 7, Imm: 0.05},
		{Op: vm.OpJGt, Dst: 6, Src: 7, Off: 2},
		{Op: vm.OpMovI, Dst: 0, Imm: 1},
		{Op: vm.OpExit},
		{Op: vm.OpMovI, Dst: 0, Imm: 0},
		{Op: vm.OpExit},
	}
	got := Peephole(code)
	if len(got) != 6 {
		t.Fatalf("len = %d, want 6: %+v", len(got), got)
	}
	j := got[1]
	if j.Op != vm.OpJGtI || j.Dst != 6 || j.Imm != 0.05 || j.Off != 2 {
		t.Errorf("bad fusion: %+v", got)
	}
	// The fused program still verifies.
	p := &vm.Program{Name: "fused", Code: got, Symbols: []string{"x"}}
	if err := vm.Verify(p, vm.NumBuiltinHelpers); err != nil {
		t.Errorf("fused program fails verification: %v\n%s", err, p)
	}
}

func TestPeepholeDoesNotModifyInput(t *testing.T) {
	code := []vm.Instr{
		{Op: vm.OpMov, Dst: 6, Src: 6},
		{Op: vm.OpMovI, Dst: 0, Imm: 1},
		{Op: vm.OpExit},
	}
	orig := make([]vm.Instr, len(code))
	copy(orig, code)
	Peephole(code)
	for i := range code {
		if code[i] != orig[i] {
			t.Fatalf("input mutated at %d: %+v != %+v", i, code[i], orig[i])
		}
	}
}
