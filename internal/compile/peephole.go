package compile

import "guardrails/internal/vm"

// Peephole: bytecode-level cleanup after codegen. Works on absolute jump
// targets and iterates to a fixpoint:
//
//   - jump threading: a jump whose target is an unconditional jmp is
//     retargeted past it (targets only move forward, so this terminates);
//   - jumps (conditional or not) to the next instruction are deleted;
//   - mov rX, rX is deleted;
//   - movi rC, imm immediately followed by a compare-and-jump against rC
//     re-fuses into the immediate jump form when rC is provably dead
//     afterwards.
//
// Deleting an instruction shifts later targets down; a target pointing
// at a deleted instruction falls through to its successor, which is
// exactly the deleted no-op's behavior. The result still satisfies the
// verifier's forward-only jump discipline.

func isJumpOp(op vm.Op) bool {
	switch op {
	case vm.OpJmp, vm.OpJEq, vm.OpJNe, vm.OpJLt, vm.OpJLe, vm.OpJGt, vm.OpJGe,
		vm.OpJEqI, vm.OpJNeI, vm.OpJLtI, vm.OpJLeI, vm.OpJGtI, vm.OpJGeI:
		return true
	}
	return false
}

// immJumpOf maps a register-form compare-and-jump to its immediate form.
func immJumpOf(op vm.Op) (vm.Op, bool) {
	switch op {
	case vm.OpJEq:
		return vm.OpJEqI, true
	case vm.OpJNe:
		return vm.OpJNeI, true
	case vm.OpJLt:
		return vm.OpJLtI, true
	case vm.OpJLe:
		return vm.OpJLeI, true
	case vm.OpJGt:
		return vm.OpJGtI, true
	case vm.OpJGe:
		return vm.OpJGeI, true
	}
	return 0, false
}

// readsReg reports whether an instruction reads register r, per the
// interpreter's semantics (two-address ALU ops read their destination).
func readsReg(in vm.Instr, r uint8) bool {
	switch in.Op {
	case vm.OpMovI, vm.OpLoad, vm.OpJmp:
		return false
	case vm.OpMov:
		return in.Src == r
	case vm.OpAdd, vm.OpSub, vm.OpMul, vm.OpDiv, vm.OpMin, vm.OpMax,
		vm.OpJEq, vm.OpJNe, vm.OpJLt, vm.OpJLe, vm.OpJGt, vm.OpJGe:
		return in.Dst == r || in.Src == r
	case vm.OpAddI, vm.OpSubI, vm.OpMulI, vm.OpDivI,
		vm.OpNeg, vm.OpAbs, vm.OpNot, vm.OpBoo,
		vm.OpJEqI, vm.OpJNeI, vm.OpJLtI, vm.OpJLeI, vm.OpJGtI, vm.OpJGeI:
		return in.Dst == r
	case vm.OpStore:
		return in.Src == r
	case vm.OpCall:
		return r >= 1 && r <= 5
	case vm.OpExit:
		return r == 0
	}
	return false
}

// pin is an instruction with its jump offset resolved to an absolute
// target index, the representation the transforms work on.
type pin struct {
	in     vm.Instr
	target int
}

// Peephole returns an optimized copy of code. The input slice is not
// modified.
func Peephole(code []vm.Instr) []vm.Instr {
	ins := make([]pin, len(code))
	for i, in := range code {
		t := -1
		if isJumpOp(in.Op) {
			t = i + 1 + int(in.Off)
		}
		ins[i] = pin{in: in, target: t}
	}
	remove := func(k int) {
		ins = append(ins[:k], ins[k+1:]...)
		for i := range ins {
			if ins[i].target > k {
				ins[i].target--
			}
		}
	}
	targeted := func(k int) bool {
		for i := range ins {
			if ins[i].target == k {
				return true
			}
		}
		return false
	}
	for changed := true; changed; {
		changed = false
		// Jump threading: hop over unconditional jumps.
		for i := range ins {
			if ins[i].target >= 0 && ins[i].target < len(ins) &&
				ins[ins[i].target].in.Op == vm.OpJmp {
				nt := ins[ins[i].target].target
				if nt > ins[i].target {
					ins[i].target = nt
					changed = true
				}
			}
		}
		// Delete no-ops: jumps to the next instruction, self-moves.
		for i := 0; i < len(ins); i++ {
			in := ins[i].in
			if (isJumpOp(in.Op) && ins[i].target == i+1) ||
				(in.Op == vm.OpMov && in.Dst == in.Src) {
				remove(i)
				changed = true
				i--
			}
		}
		// Re-fuse movi + compare-and-jump into the immediate form. Safe
		// only when no control flow enters between the pair (a path that
		// skipped the movi would compare a different value) and the
		// scratch register is never read again.
		for i := 0; i+1 < len(ins); i++ {
			m, j := ins[i].in, ins[i+1].in
			if m.Op != vm.OpMovI || j.Src != m.Dst || j.Dst == m.Dst {
				continue
			}
			iop, ok := immJumpOf(j.Op)
			if !ok || targeted(i+1) {
				continue
			}
			dead := true
			for k := i + 2; k < len(ins); k++ {
				if readsReg(ins[k].in, m.Dst) {
					dead = false
					break
				}
			}
			if !dead {
				continue
			}
			ins[i+1].in = vm.Instr{Op: iop, Dst: j.Dst, Imm: m.Imm}
			remove(i)
			changed = true
		}
	}
	out := make([]vm.Instr, len(ins))
	for i := range ins {
		out[i] = ins[i].in
		if ins[i].target >= 0 {
			out[i].Off = int32(ins[i].target - i - 1)
		}
	}
	return out
}
