package compile

import (
	"fmt"

	"guardrails/internal/spec"
	"guardrails/internal/vm"
)

// Compiled is a guardrail lowered to an executable monitor image.
type Compiled struct {
	// Name is the guardrail name.
	Name string
	// Source is the checked AST the program was compiled from.
	Source *spec.Guardrail
	// Triggers are the guardrail's trigger specs; the monitor runtime
	// binds them to kernel timers and hook sites at load time.
	Triggers []spec.Trigger
	// Program evaluates the rule conjunction and, on violation, performs
	// the action sequence. Returns 1 (holds) or 0 (violated) in r0.
	Program *vm.Program
	// Actions lists the guardrail's actions. The program dispatches
	// non-SAVE actions by index through vm.HelperAction; the monitor
	// runtime interprets the index against this slice.
	Actions []spec.Action
}

// Register conventions for generated code.
const (
	// regStackBase is the first register of the expression evaluation
	// stack; regStackTop the last. Helper-call registers r1–r5 and the
	// return register r0 are below the stack.
	regStackBase = 6
	regStackTop  = 15
)

// MaxReportArgs bounds REPORT arguments: violation values are passed to
// the runtime in helper-argument registers r2–r5.
const MaxReportArgs = 4

// File compiles every guardrail in a checked file.
func File(f *spec.File) ([]*Compiled, error) {
	if err := spec.Check(f); err != nil {
		return nil, err
	}
	out := make([]*Compiled, 0, len(f.Guardrails))
	for _, g := range f.Guardrails {
		c, err := compileChecked(g)
		if err != nil {
			return nil, err
		}
		out = append(out, c)
	}
	return out, nil
}

// Guardrail compiles a single guardrail, checking it first.
func Guardrail(g *spec.Guardrail) (*Compiled, error) {
	if err := spec.CheckGuardrail(g); err != nil {
		return nil, err
	}
	return compileChecked(g)
}

// Source parses, checks, and compiles a specification source text.
func Source(src string) ([]*Compiled, error) {
	f, err := spec.Parse(src)
	if err != nil {
		return nil, err
	}
	return File(f)
}

func compileChecked(g *spec.Guardrail) (*Compiled, error) {
	b := vm.NewBuilder(g.Name)
	ec := &exprCompiler{b: b}

	// Conjoin rules: on the first rule that fails, jump to the violation
	// handler. Each rule is folded first, and top-level comparisons are
	// fused into a single inverted conditional jump (branch fusion)
	// instead of materializing a boolean and re-testing it.
	for i, r := range g.Rules {
		folded := Fold(r)
		if v, ok := constVal(folded); ok {
			if v != 0 {
				continue // constant-true rule: nothing to check
			}
			// Constant-false rule: always violated; no test needed.
			b.MovI(regStackBase, 0)
			b.JmpIfI(vm.OpJEqI, regStackBase, 0, "violated")
			continue
		}
		if err := ec.compileRuleTest(folded, "violated"); err != nil {
			return nil, fmt.Errorf("compile: guardrail %q rule %d: %w", g.Name, i, err)
		}
	}
	// All rules hold.
	b.MovI(0, 1)
	b.Exit()

	b.Label("violated")
	for idx, a := range g.Actions {
		if err := ec.compileAction(a, idx); err != nil {
			return nil, fmt.Errorf("compile: guardrail %q action %d: %w", g.Name, idx, err)
		}
	}
	b.MovI(0, 0)
	b.Exit()

	p, err := b.Finish()
	if err != nil {
		return nil, fmt.Errorf("compile: guardrail %q: %w", g.Name, err)
	}
	if err := vm.Verify(p, vm.NumBuiltinHelpers); err != nil {
		return nil, fmt.Errorf("compile: guardrail %q failed verification: %w", g.Name, err)
	}
	return &Compiled{
		Name:     g.Name,
		Source:   g,
		Triggers: g.Triggers,
		Program:  p,
		Actions:  g.Actions,
	}, nil
}

// invertedJump maps a comparison operator to the VM jump taken when the
// comparison is FALSE (the violation direction).
var invertedJump = map[spec.TokenKind]vm.Op{
	spec.TokLt: vm.OpJGe, spec.TokLe: vm.OpJGt,
	spec.TokGt: vm.OpJLe, spec.TokGe: vm.OpJLt,
	spec.TokEq: vm.OpJNe, spec.TokNe: vm.OpJEq,
}

// compileRuleTest emits "jump to failLabel if e is false". Top-level
// comparisons and conjunctions fuse into direct conditional jumps;
// anything else materializes a boolean and tests it.
func (c *exprCompiler) compileRuleTest(e spec.Expr, failLabel string) error {
	switch n := e.(type) {
	case *spec.BinaryExpr:
		if jop, ok := invertedJump[n.Op]; ok {
			if err := c.compile(n.X, regStackBase); err != nil {
				return err
			}
			if err := c.compile(n.Y, regStackBase+1); err != nil {
				return err
			}
			c.b.JmpIf(jop, regStackBase, regStackBase+1, failLabel)
			return nil
		}
		if n.Op == spec.TokAnd {
			// (X && Y) fails if either side fails.
			if err := c.compileRuleTest(n.X, failLabel); err != nil {
				return err
			}
			return c.compileRuleTest(n.Y, failLabel)
		}
	}
	if err := c.compile(e, regStackBase); err != nil {
		return err
	}
	c.b.JmpIfI(vm.OpJEqI, regStackBase, 0, failLabel)
	return nil
}

// exprCompiler generates code for expressions using registers
// [regStackBase, regStackTop] as an evaluation stack. compile(e, dst)
// leaves e's value in dst and may clobber registers above dst.
type exprCompiler struct {
	b      *vm.Builder
	labels int
}

func (c *exprCompiler) newLabel(hint string) string {
	c.labels++
	return fmt.Sprintf("%s_%d", hint, c.labels)
}

func (c *exprCompiler) compile(e spec.Expr, dst uint8) error {
	if dst > regStackTop {
		return fmt.Errorf("rule expression too deep (more than %d live temporaries)", regStackTop-regStackBase+1)
	}
	switch n := e.(type) {
	case *spec.NumLit:
		c.b.MovI(dst, n.Value)
	case *spec.BoolLit:
		if n.Value {
			c.b.MovI(dst, 1)
		} else {
			c.b.MovI(dst, 0)
		}
	case *spec.LoadExpr:
		c.b.Load(dst, n.Key)
	case *spec.IdentExpr:
		c.b.Load(dst, n.Name) // bare identifier = implicit LOAD
	case *spec.UnaryExpr:
		if err := c.compile(n.X, dst); err != nil {
			return err
		}
		switch n.Op {
		case spec.TokMinus:
			c.b.Un(vm.OpNeg, dst)
		case spec.TokNot:
			c.b.Un(vm.OpNot, dst)
		default:
			return fmt.Errorf("unsupported unary operator %v", n.Op)
		}
	case *spec.BinaryExpr:
		return c.compileBinary(n, dst)
	case *spec.CallExpr:
		return c.compileCall(n, dst)
	default:
		return fmt.Errorf("unsupported expression node %T", e)
	}
	return nil
}

func (c *exprCompiler) compileBinary(n *spec.BinaryExpr, dst uint8) error {
	switch n.Op {
	case spec.TokAnd:
		// Short-circuit: dst = X truthy? Y truthy : 0.
		end := c.newLabel("and_end")
		if err := c.compile(n.X, dst); err != nil {
			return err
		}
		c.b.Un(vm.OpBoo, dst)
		c.b.JmpIfI(vm.OpJEqI, dst, 0, end)
		if err := c.compile(n.Y, dst); err != nil {
			return err
		}
		c.b.Un(vm.OpBoo, dst)
		c.b.Label(end)
		return nil
	case spec.TokOr:
		end := c.newLabel("or_end")
		if err := c.compile(n.X, dst); err != nil {
			return err
		}
		c.b.Un(vm.OpBoo, dst)
		c.b.JmpIfI(vm.OpJNeI, dst, 0, end)
		if err := c.compile(n.Y, dst); err != nil {
			return err
		}
		c.b.Un(vm.OpBoo, dst)
		c.b.Label(end)
		return nil
	}

	if err := c.compile(n.X, dst); err != nil {
		return err
	}
	if dst+1 > regStackTop {
		return fmt.Errorf("rule expression too deep (more than %d live temporaries)", regStackTop-regStackBase+1)
	}
	if err := c.compile(n.Y, dst+1); err != nil {
		return err
	}
	switch n.Op {
	case spec.TokPlus:
		c.b.ALU(vm.OpAdd, dst, dst+1)
	case spec.TokMinus:
		c.b.ALU(vm.OpSub, dst, dst+1)
	case spec.TokStar:
		c.b.ALU(vm.OpMul, dst, dst+1)
	case spec.TokSlash:
		c.b.ALU(vm.OpDiv, dst, dst+1)
	case spec.TokLt, spec.TokLe, spec.TokGt, spec.TokGe, spec.TokEq, spec.TokNe:
		jop := map[spec.TokenKind]vm.Op{
			spec.TokLt: vm.OpJLt, spec.TokLe: vm.OpJLe,
			spec.TokGt: vm.OpJGt, spec.TokGe: vm.OpJGe,
			spec.TokEq: vm.OpJEq, spec.TokNe: vm.OpJNe,
		}[n.Op]
		trueL := c.newLabel("cmp_true")
		end := c.newLabel("cmp_end")
		c.b.JmpIf(jop, dst, dst+1, trueL)
		c.b.MovI(dst, 0)
		c.b.Jmp(end)
		c.b.Label(trueL)
		c.b.MovI(dst, 1)
		c.b.Label(end)
	default:
		return fmt.Errorf("unsupported binary operator %v", n.Op)
	}
	return nil
}

func (c *exprCompiler) compileCall(n *spec.CallExpr, dst uint8) error {
	switch n.Fn {
	case "abs":
		if err := c.compile(n.Args[0], dst); err != nil {
			return err
		}
		c.b.Un(vm.OpAbs, dst)
		return nil
	case "min", "max":
		if err := c.compile(n.Args[0], dst); err != nil {
			return err
		}
		if dst+1 > regStackTop {
			return fmt.Errorf("rule expression too deep (more than %d live temporaries)", regStackTop-regStackBase+1)
		}
		if err := c.compile(n.Args[1], dst+1); err != nil {
			return err
		}
		op := vm.OpMin
		if n.Fn == "max" {
			op = vm.OpMax
		}
		c.b.ALU(op, dst, dst+1)
		return nil
	case "sqrt", "log2":
		if err := c.compile(n.Args[0], dst); err != nil {
			return err
		}
		c.b.Mov(1, dst)
		if n.Fn == "sqrt" {
			c.b.Call(vm.HelperSqrt)
		} else {
			c.b.Call(vm.HelperLog2)
		}
		c.b.Mov(dst, 0)
		return nil
	case "now":
		c.b.Call(vm.HelperNow)
		c.b.Mov(dst, 0)
		return nil
	default:
		return fmt.Errorf("unknown function %q", n.Fn)
	}
}

// compileAction emits the violation-path code for one action. SAVE is
// fully inlined; all other actions marshal up to four values into r2–r5
// and call HelperAction with the action index in r1.
func (c *exprCompiler) compileAction(a spec.Action, idx int) error {
	dispatch := func(vals []spec.Expr) error {
		if len(vals) > MaxReportArgs {
			return fmt.Errorf("at most %d action values supported, got %d", MaxReportArgs, len(vals))
		}
		for i, e := range vals {
			if err := c.compile(Fold(e), regStackBase+uint8(i)); err != nil {
				return err
			}
		}
		c.b.MovI(1, float64(idx))
		for i := range vals {
			c.b.Mov(uint8(2+i), regStackBase+uint8(i))
		}
		c.b.Call(vm.HelperAction)
		return nil
	}
	switch n := a.(type) {
	case *spec.SaveAction:
		if err := c.compile(Fold(n.Value), regStackBase); err != nil {
			return err
		}
		c.b.Store(n.Key, regStackBase)
		return nil
	case *spec.ReportAction:
		return dispatch(n.Args)
	case *spec.ReplaceAction, *spec.RetrainAction:
		return dispatch(nil)
	case *spec.DeprioritizeAction:
		if n.Priority != nil {
			return dispatch([]spec.Expr{n.Priority})
		}
		return dispatch(nil)
	default:
		return fmt.Errorf("unsupported action %T", a)
	}
}
