// Package compile lowers checked guardrail specifications (package spec)
// to verified monitor VM programs (package vm). The compiler is a pass
// pipeline over a linear IR:
//
//	parse → check → lower (AST → IR, ir.go/lower.go)
//	      → IR passes (passes.go): constfold → algebra → cse →
//	        copyprop → immsel → dce                  [-O1 only]
//	      → codegen (linear-scan allocation, branch fusion, codegen.go)
//	      → peephole (bytecode cleanup, peephole.go) [-O1 only]
//	      → vm.Verify
//
// One program is produced per guardrail. The program evaluates the
// conjunction of the guardrail's rules; when the property holds it
// returns 1, and when it is violated it executes the guardrail's action
// sequence (SAVE actions natively as feature-store stores, other actions
// as HelperAction calls dispatched by the monitor runtime) and returns 0.
package compile

import (
	"fmt"
	"io"

	"guardrails/internal/spec"
	"guardrails/internal/vm"
)

// Compiled is a guardrail lowered to an executable monitor image.
type Compiled struct {
	// Name is the guardrail name.
	Name string
	// Source is the checked AST the program was compiled from.
	Source *spec.Guardrail
	// Triggers are the guardrail's trigger specs; the monitor runtime
	// binds them to kernel timers and hook sites at load time.
	Triggers []spec.Trigger
	// Program evaluates the rule conjunction and, on violation, performs
	// the action sequence. Returns 1 (holds) or 0 (violated) in r0.
	Program *vm.Program
	// Actions lists the guardrail's actions. The program dispatches
	// non-SAVE actions by index through vm.HelperAction; the monitor
	// runtime interprets the index against this slice.
	Actions []spec.Action
}

// Register conventions for generated code.
const (
	// regStackBase is the first allocatable general-purpose register;
	// regStackTop the last. Helper-call registers r1–r5 and the return
	// register r0 are below the allocatable file.
	regStackBase = 6
	regStackTop  = 15
)

// MaxReportArgs bounds REPORT arguments: violation values are passed to
// the runtime in helper-argument registers r2–r5.
const MaxReportArgs = 4

// Options selects the optimization level and pass tracing.
type Options struct {
	// Level is the optimization level: 0 compiles by straight lowering
	// and codegen, 1 (the default used by File/Guardrail/Source) runs
	// the full IR pass pipeline plus the bytecode peephole.
	Level int
	// Trace, when non-nil, receives the textual IR after lowering and
	// after each pass (grailc -S).
	Trace io.Writer
}

// DefaultOptions is what the plain File/Guardrail/Source entry points
// use: full optimization, no tracing.
var DefaultOptions = Options{Level: 1}

// File compiles every guardrail in a checked file at -O1.
func File(f *spec.File) ([]*Compiled, error) { return FileWith(f, DefaultOptions) }

// FileWith compiles every guardrail in a checked file.
func FileWith(f *spec.File, o Options) ([]*Compiled, error) {
	if err := spec.Check(f); err != nil {
		return nil, err
	}
	out := make([]*Compiled, 0, len(f.Guardrails))
	for _, g := range f.Guardrails {
		c, err := compileChecked(g, o)
		if err != nil {
			return nil, err
		}
		out = append(out, c)
	}
	return out, nil
}

// Guardrail compiles a single guardrail at -O1, checking it first.
func Guardrail(g *spec.Guardrail) (*Compiled, error) { return GuardrailWith(g, DefaultOptions) }

// GuardrailWith compiles a single guardrail, checking it first.
func GuardrailWith(g *spec.Guardrail, o Options) (*Compiled, error) {
	if err := spec.CheckGuardrail(g); err != nil {
		return nil, err
	}
	return compileChecked(g, o)
}

// Source parses, checks, and compiles a specification source at -O1.
func Source(src string) ([]*Compiled, error) { return SourceWith(src, DefaultOptions) }

// SourceWith parses, checks, and compiles a specification source text.
func SourceWith(src string, o Options) ([]*Compiled, error) {
	f, err := spec.Parse(src)
	if err != nil {
		return nil, err
	}
	return FileWith(f, o)
}

func compileChecked(g *spec.Guardrail, o Options) (*Compiled, error) {
	f, err := lowerGuardrail(g)
	if err != nil {
		return nil, fmt.Errorf("compile: guardrail %q: %w", g.Name, err)
	}
	trace(o, "lower", f)

	// Codegen the unoptimized IR first: at -O0 this is the final
	// program; at -O1 its length is the Meta.PreOptInsns baseline the P5
	// overhead accounting compares against. Codegen does not mutate the
	// IR, so the pipeline can keep rewriting it afterwards.
	pre, preErr := genProgram(f, g.Name)
	if o.Level <= 0 && preErr != nil {
		return nil, fmt.Errorf("compile: guardrail %q: %w", g.Name, preErr)
	}

	p := pre
	if o.Level > 0 {
		for _, ps := range passesForLevel(o.Level) {
			ps.run(f)
			trace(o, ps.name, f)
		}
		p, err = genProgram(f, g.Name)
		if err != nil {
			return nil, fmt.Errorf("compile: guardrail %q: %w", g.Name, err)
		}
		p.Code = Peephole(p.Code)
	}
	p.Meta = vm.ProgramMeta{OptLevel: o.Level, PostOptInsns: len(p.Code)}
	if preErr == nil {
		p.Meta.PreOptInsns = len(pre.Code)
	} else {
		// The unoptimized form did not fit the register file but the
		// optimized one did; there is no meaningful baseline.
		p.Meta.PreOptInsns = len(p.Code)
	}

	if err := vm.Verify(p, vm.NumBuiltinHelpers); err != nil {
		return nil, fmt.Errorf("compile: guardrail %q failed verification: %w", g.Name, err)
	}
	// Differential gate: an optimized build must also verify in its
	// unoptimized form. A guardrail whose -O0 lowering the verifier
	// rejects but whose -O1 form passes (because an IR pass folded the
	// unsafe construct away) would make safety depend on the optimizer —
	// exactly the coupling the static verifier exists to rule out.
	if o.Level > 0 && preErr == nil {
		if err := vm.Verify(pre, vm.NumBuiltinHelpers); err != nil {
			return nil, fmt.Errorf("compile: guardrail %q: -O0 baseline failed verification (differential gate): %w", g.Name, err)
		}
	}
	return &Compiled{
		Name:     g.Name,
		Source:   g,
		Triggers: g.Triggers,
		Program:  p,
		Actions:  g.Actions,
	}, nil
}

func trace(o Options, stage string, f *irFunc) {
	if o.Trace != nil {
		fmt.Fprintf(o.Trace, "; after %s\n%s\n", stage, f)
	}
}
