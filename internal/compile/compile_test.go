package compile

import (
	"fmt"
	"math"
	"strings"
	"testing"

	"guardrails/internal/spec"
	"guardrails/internal/vm"
)

// env is a test vm.Env backed by the program symbol table.
type env struct {
	p       *vm.Program
	vals    map[string]float64
	stores  map[string]float64
	actions []struct {
		idx  int
		args [4]float64
	}
	now float64
}

func newEnv(p *vm.Program) *env {
	return &env{p: p, vals: map[string]float64{}, stores: map[string]float64{}}
}

func (e *env) LoadCell(i int32) float64 {
	name := e.p.Symbols[i]
	if v, ok := e.stores[name]; ok {
		return v
	}
	return e.vals[name]
}

func (e *env) StoreCell(i int32, v float64) { e.stores[e.p.Symbols[i]] = v }

func (e *env) Helper(h vm.HelperID, args *[5]float64) (float64, error) {
	switch h {
	case vm.HelperNow:
		return e.now, nil
	case vm.HelperSqrt:
		if args[0] < 0 {
			return 0, nil
		}
		return math.Sqrt(args[0]), nil
	case vm.HelperLog2:
		if args[0] <= 0 {
			return 0, nil
		}
		return math.Log2(args[0]), nil
	case vm.HelperAction:
		e.actions = append(e.actions, struct {
			idx  int
			args [4]float64
		}{int(args[0]), [4]float64{args[1], args[2], args[3], args[4]}})
		return 0, nil
	}
	return 0, nil
}

func compileOne(t *testing.T, src string) *Compiled {
	t.Helper()
	cs, err := Source(src)
	if err != nil {
		t.Fatal(err)
	}
	if len(cs) != 1 {
		t.Fatalf("compiled %d guardrails", len(cs))
	}
	return cs[0]
}

func runProg(t *testing.T, c *Compiled, vals map[string]float64) (float64, *env) {
	t.Helper()
	e := newEnv(c.Program)
	for k, v := range vals {
		e.vals[k] = v
	}
	var m vm.Machine
	out, err := m.Run(c.Program, e, 0)
	if err != nil {
		t.Fatalf("run: %v\n%s", err, c.Program)
	}
	return out, e
}

const listing2 = `
guardrail low-false-submit {
    trigger: { TIMER(start_time, 1e9) },
    rule: { LOAD(false_submit_rate) <= 0.05 },
    action: { SAVE(ml_enabled, false) }
}`

func TestCompileListing2(t *testing.T) {
	c := compileOne(t, listing2)
	if c.Name != "low-false-submit" {
		t.Errorf("name = %q", c.Name)
	}
	// Property holds: rate below threshold.
	out, e := runProg(t, c, map[string]float64{"false_submit_rate": 0.03})
	if out != 1 {
		t.Errorf("holds case returned %v", out)
	}
	if _, wrote := e.stores["ml_enabled"]; wrote {
		t.Error("action ran although property holds")
	}
	// Property violated: the SAVE action must run.
	out, e = runProg(t, c, map[string]float64{"false_submit_rate": 0.10})
	if out != 0 {
		t.Errorf("violated case returned %v", out)
	}
	if got, wrote := e.stores["ml_enabled"]; !wrote || got != 0 {
		t.Errorf("ml_enabled = %v (wrote=%v), want 0", got, wrote)
	}
	// Boundary: exactly 0.05 satisfies <=.
	out, _ = runProg(t, c, map[string]float64{"false_submit_rate": 0.05})
	if out != 1 {
		t.Errorf("boundary case returned %v", out)
	}
}

func TestCompileMultipleRulesConjunction(t *testing.T) {
	src := `
guardrail conj {
    trigger: { TIMER(0, 1) },
    rule: {
        LOAD(a) < 10;
        LOAD(b) > 2
    },
    action: { SAVE(violated, 1) }
}`
	c := compileOne(t, src)
	cases := []struct {
		a, b float64
		want float64
	}{
		{5, 3, 1}, {15, 3, 0}, {5, 1, 0}, {15, 1, 0},
	}
	for _, cs := range cases {
		out, e := runProg(t, c, map[string]float64{"a": cs.a, "b": cs.b})
		if out != cs.want {
			t.Errorf("a=%v b=%v: out=%v want %v", cs.a, cs.b, out, cs.want)
		}
		if cs.want == 0 && e.stores["violated"] != 1 {
			t.Errorf("a=%v b=%v: action did not run", cs.a, cs.b)
		}
	}
}

func TestCompileArithmeticAndBuiltins(t *testing.T) {
	src := `
guardrail math {
    trigger: { TIMER(0, 1) },
    rule: { abs(LOAD(x) - LOAD(y)) / max(LOAD(y), 1) <= 0.5 },
    action: { SAVE(bad, 1) }
}`
	c := compileOne(t, src)
	out, _ := runProg(t, c, map[string]float64{"x": 12, "y": 10}) // |2|/10 = 0.2
	if out != 1 {
		t.Errorf("relative error 0.2 should hold, got %v", out)
	}
	out, _ = runProg(t, c, map[string]float64{"x": 20, "y": 10}) // 1.0
	if out != 0 {
		t.Errorf("relative error 1.0 should violate, got %v", out)
	}
	// max(y,1) guards division by zero.
	out, _ = runProg(t, c, map[string]float64{"x": 0.2, "y": 0})
	if out != 1 {
		t.Errorf("y=0 case: got %v", out)
	}
}

func TestCompileSqrtLog2Now(t *testing.T) {
	src := `
guardrail helpers {
    trigger: { TIMER(0, 1) },
    rule: { sqrt(LOAD(v)) + log2(LOAD(n)) < now() },
    action: { SAVE(bad, 1) }
}`
	c := compileOne(t, src)
	e := newEnv(c.Program)
	e.vals["v"] = 16 // sqrt = 4
	e.vals["n"] = 8  // log2 = 3
	e.now = 10       // 4+3 < 10 holds
	var m vm.Machine
	out, err := m.Run(c.Program, e, 0)
	if err != nil {
		t.Fatal(err)
	}
	if out != 1 {
		t.Errorf("got %v", out)
	}
	e.now = 5 // 7 < 5 fails
	out, err = m.Run(c.Program, e, 0)
	if err != nil {
		t.Fatal(err)
	}
	if out != 0 {
		t.Errorf("got %v", out)
	}
}

func TestCompileShortCircuit(t *testing.T) {
	src := `
guardrail sc {
    trigger: { TIMER(0, 1) },
    rule: { LOAD(a) > 0 || LOAD(b) / LOAD(c) > 1 },
    action: { SAVE(bad, 1) }
}`
	c := compileOne(t, src)
	// a>0 short-circuits; division by zero on the right is never reached
	// (and is safe anyway under VM semantics).
	out, _ := runProg(t, c, map[string]float64{"a": 1, "b": 5, "c": 0})
	if out != 1 {
		t.Errorf("short-circuit OR: got %v", out)
	}
	out, _ = runProg(t, c, map[string]float64{"a": 0, "b": 5, "c": 2})
	if out != 1 {
		t.Errorf("right branch true: got %v", out)
	}
	out, _ = runProg(t, c, map[string]float64{"a": 0, "b": 5, "c": 10})
	if out != 0 {
		t.Errorf("both false: got %v", out)
	}
}

func TestCompileActionDispatch(t *testing.T) {
	src := `
guardrail acts {
    trigger: { TIMER(0, 1) },
    rule: { LOAD(ok) == 1 },
    action: {
        REPORT(LOAD(lat), LOAD(err));
        REPLACE(learned, fallback);
        RETRAIN(model);
        DEPRIORITIZE(batch, 15);
        SAVE(ml_enabled, 0)
    }
}`
	c := compileOne(t, src)
	if len(c.Actions) != 5 {
		t.Fatalf("actions = %d", len(c.Actions))
	}
	out, e := runProg(t, c, map[string]float64{"ok": 0, "lat": 120, "err": 0.3})
	if out != 0 {
		t.Fatalf("out = %v", out)
	}
	// Four dispatched actions (SAVE is inlined).
	if len(e.actions) != 4 {
		t.Fatalf("dispatched %d actions: %+v", len(e.actions), e.actions)
	}
	if e.actions[0].idx != 0 || e.actions[0].args[0] != 120 || e.actions[0].args[1] != 0.3 {
		t.Errorf("REPORT dispatch = %+v", e.actions[0])
	}
	if e.actions[1].idx != 1 || e.actions[2].idx != 2 {
		t.Errorf("REPLACE/RETRAIN indices: %+v", e.actions)
	}
	if e.actions[3].idx != 3 || e.actions[3].args[0] != 15 {
		t.Errorf("DEPRIORITIZE dispatch = %+v", e.actions[3])
	}
	if e.stores["ml_enabled"] != 0 {
		t.Error("SAVE did not run")
	}
	// No dispatch when property holds.
	_, e = runProg(t, c, map[string]float64{"ok": 1})
	if len(e.actions) != 0 {
		t.Errorf("actions ran on holding property: %+v", e.actions)
	}
}

func TestCompileConstantTrueRuleSkipsCheck(t *testing.T) {
	src := `
guardrail ct {
    trigger: { TIMER(0, 1) },
    rule: { 1 < 2 },
    action: { SAVE(bad, 1) }
}`
	c := compileOne(t, src)
	out, e := runProg(t, c, nil)
	if out != 1 {
		t.Errorf("constant-true rule: got %v", out)
	}
	if len(e.stores) != 0 {
		t.Error("action ran")
	}
	// The whole rule folded away: program should be tiny (movi+exit plus
	// unreachable violation path).
	if len(c.Program.Code) > 8 {
		t.Errorf("constant-true program has %d insns:\n%s", len(c.Program.Code), c.Program)
	}
}

func TestCompileConstantFalseRuleAlwaysViolates(t *testing.T) {
	src := `
guardrail cf {
    trigger: { TIMER(0, 1) },
    rule: { 2 < 1 },
    action: { SAVE(bad, 1) }
}`
	c := compileOne(t, src)
	out, e := runProg(t, c, nil)
	if out != 0 {
		t.Errorf("constant-false rule: got %v", out)
	}
	if e.stores["bad"] != 1 {
		t.Error("action did not run")
	}
}

func TestCompileBareIdentifierIsLoad(t *testing.T) {
	src := `
guardrail bare {
    trigger: { TIMER(0, 1) },
    rule: { latency <= 100 },
    action: { SAVE(bad, 1) }
}`
	c := compileOne(t, src)
	out, _ := runProg(t, c, map[string]float64{"latency": 50})
	if out != 1 {
		t.Errorf("got %v", out)
	}
	out, _ = runProg(t, c, map[string]float64{"latency": 150})
	if out != 0 {
		t.Errorf("got %v", out)
	}
}

func TestCompileRejectsUncheckedSpecs(t *testing.T) {
	bad := []string{
		`guardrail g { trigger: { TIMER(0,1) }, rule: { 5 }, action: { REPORT() } }`,
		`guardrail g { rule: { LOAD(x) < 1 }, action: { REPORT() } }`,
	}
	for _, src := range bad {
		if _, err := Source(src); err == nil {
			t.Errorf("compiled invalid spec:\n%s", src)
		}
	}
}

func TestCompileTooManyReportArgs(t *testing.T) {
	src := `
guardrail wide {
    trigger: { TIMER(0, 1) },
    rule: { LOAD(x) < 1 },
    action: { REPORT(1 < 2, 2 < 3, 3 < 4, 4 < 5, 5 < 6) }
}`
	// Checker allows it (REPORT is variadic in the language); the
	// compiler's dispatch convention caps it.
	if _, err := Source(src); err == nil || !strings.Contains(err.Error(), "at most 4") {
		t.Errorf("expected arg-count error, got %v", err)
	}
}

func TestCompileDeepExpressionFails(t *testing.T) {
	// A deeply right-nested chain over a single repeated load exceeds the
	// register file only at -O0: CSE collapses the repeats, so -O1 must
	// accept the same rule.
	depth := 16
	expr := "LOAD(a)"
	for i := 0; i < depth; i++ {
		expr = "(LOAD(b) + " + expr + ")"
	}
	src := "guardrail deep { trigger: { TIMER(0,1) }, rule: { " + expr + " < 1 }, action: { REPORT() } }"
	if _, err := SourceWith(src, Options{Level: 0}); err == nil || !strings.Contains(err.Error(), "too deep") {
		t.Errorf("-O0: expected depth error, got %v", err)
	}
	if _, err := Source(src); err != nil {
		t.Errorf("-O1: CSE should collapse the repeated loads: %v", err)
	}

	// With distinct keys there is nothing to share: both levels reject.
	expr = "LOAD(a)"
	for i := 0; i < depth; i++ {
		expr = fmt.Sprintf("(LOAD(b%d) + %s)", i, expr)
	}
	src = "guardrail deep { trigger: { TIMER(0,1) }, rule: { " + expr + " < 1 }, action: { REPORT() } }"
	for _, lvl := range []int{0, 1} {
		if _, err := SourceWith(src, Options{Level: lvl}); err == nil || !strings.Contains(err.Error(), "too deep") {
			t.Errorf("-O%d: expected depth error, got %v", lvl, err)
		}
	}
}

func TestCompiledProgramsAlwaysVerify(t *testing.T) {
	srcs := []string{
		listing2,
		`guardrail a { trigger: { FUNCTION(f) }, rule: { !(LOAD(x) == 0) && LOAD(y) < 5 }, action: { RETRAIN(m) } }`,
		`guardrail b { trigger: { TIMER(0,1) }, rule: { min(LOAD(p), LOAD(q)) >= -3.5 }, action: { DEPRIORITIZE(t) } }`,
	}
	for _, src := range srcs {
		cs, err := Source(src)
		if err != nil {
			t.Fatalf("%s: %v", src, err)
		}
		for _, c := range cs {
			if err := vm.Verify(c.Program, vm.NumBuiltinHelpers); err != nil {
				t.Errorf("%s: %v", c.Name, err)
			}
		}
	}
}

func TestGuardrailDirectCompile(t *testing.T) {
	g, err := spec.ParseOne(listing2)
	if err != nil {
		t.Fatal(err)
	}
	c, err := Guardrail(g)
	if err != nil {
		t.Fatal(err)
	}
	if c.Source != g || len(c.Triggers) != 1 {
		t.Error("compiled metadata wrong")
	}
}
