package compile

import (
	"fmt"

	"guardrails/internal/spec"
	"guardrails/internal/vm"
)

// Lowering: checked AST → IR. Rules lower through condition position
// (lowerCond), which turns comparisons, &&/||, and ! directly into
// conditional-branch terminators — the generalization of the old
// backend's "branch fusion". Predicates in value position (a comparison
// stored by SAVE, say) materialize 0/1 through a diamond (lowerBool).
//
// The lowerer performs no optimization: -O0 is lowering plus codegen,
// and every cleanup (constant folding, CSE, immediate selection, dead
// code) is an explicit IR pass in passes.go.

type lowerer struct {
	f   *irFunc
	cur *block
}

// lowerGuardrail builds the IR for one checked guardrail:
//
//	entry ── rule 1 holds? ──...── rule N holds? ── hold: ret 1
//	   └────────── any rule fails ──────────▶ violated: actions; ret 0
func lowerGuardrail(g *spec.Guardrail) (*irFunc, error) {
	f := newIRFunc(g.Name)
	l := &lowerer{f: f}
	l.cur = f.place(f.newBlock())
	violated := f.newBlock()

	for i, r := range g.Rules {
		if !spec.IsPredicate(r) {
			// The checker guarantees this; fail loudly if bypassed.
			return nil, fmt.Errorf("rule %d is not a predicate", i)
		}
		cont := f.newBlock()
		if err := l.lowerCond(r, cont, violated); err != nil {
			return nil, fmt.Errorf("rule %d: %w", i, err)
		}
		l.cur = f.place(cont)
	}
	one := l.emitConst(1)
	l.cur.term = terminator{Kind: termRet, Ret: one}

	l.cur = f.place(violated)
	for idx, a := range g.Actions {
		if err := l.lowerAction(a, idx); err != nil {
			return nil, fmt.Errorf("action %d: %w", idx, err)
		}
	}
	zero := l.emitConst(0)
	l.cur.term = terminator{Kind: termRet, Ret: zero}
	return f, nil
}

func (l *lowerer) emit(in irInstr) { l.cur.ins = append(l.cur.ins, in) }

func (l *lowerer) emitConst(v float64) vreg {
	dst := l.f.newVReg()
	l.emit(irInstr{Op: irConst, Dst: dst, Imm: v})
	return dst
}

// cmpOf maps a comparison token to its IR comparison kind.
func cmpOf(op spec.TokenKind) (cmpKind, bool) {
	switch op {
	case spec.TokLt:
		return cmpLt, true
	case spec.TokLe:
		return cmpLe, true
	case spec.TokGt:
		return cmpGt, true
	case spec.TokGe:
		return cmpGe, true
	case spec.TokEq:
		return cmpEq, true
	case spec.TokNe:
		return cmpNe, true
	}
	return 0, false
}

// lowerCond terminates the current block with control flow that reaches
// t when e is true and f when e is false. Intermediate blocks are placed
// as they are created; t and f must be placed by the caller afterwards,
// keeping every edge forward in layout order.
func (l *lowerer) lowerCond(e spec.Expr, t, f *block) error {
	switch n := e.(type) {
	case *spec.BoolLit:
		dst := t
		if !n.Value {
			dst = f
		}
		l.cur.term = terminator{Kind: termJmp, Then: dst}
		return nil
	case *spec.UnaryExpr:
		if n.Op == spec.TokNot {
			return l.lowerCond(n.X, f, t)
		}
	case *spec.BinaryExpr:
		if cmp, ok := cmpOf(n.Op); ok {
			a, err := l.lowerValue(n.X)
			if err != nil {
				return err
			}
			b, err := l.lowerValue(n.Y)
			if err != nil {
				return err
			}
			l.cur.term = terminator{Kind: termBr, Cmp: cmp, A: a, B: b, Then: t, Else: f}
			return nil
		}
		switch n.Op {
		case spec.TokAnd: // X && Y: X false short-circuits to f
			mid := l.f.newBlock()
			if err := l.lowerCond(n.X, mid, f); err != nil {
				return err
			}
			l.cur = l.f.place(mid)
			return l.lowerCond(n.Y, t, f)
		case spec.TokOr: // X || Y: X true short-circuits to t
			mid := l.f.newBlock()
			if err := l.lowerCond(n.X, t, mid); err != nil {
				return err
			}
			l.cur = l.f.place(mid)
			return l.lowerCond(n.Y, t, f)
		}
	}
	// Anything else: evaluate and test truthiness.
	v, err := l.lowerValue(e)
	if err != nil {
		return err
	}
	zero := l.emitConst(0)
	l.cur.term = terminator{Kind: termBr, Cmp: cmpNe, A: v, B: zero, Then: t, Else: f}
	return nil
}

// lowerBool materializes a predicate's 0/1 value through a diamond. The
// result vreg is assigned in both arms and therefore marked multi-def.
func (l *lowerer) lowerBool(e spec.Expr) (vreg, error) {
	dst := l.f.newVReg()
	l.f.multiDef[dst] = true
	tB, fB, join := l.f.newBlock(), l.f.newBlock(), l.f.newBlock()
	if err := l.lowerCond(e, tB, fB); err != nil {
		return 0, err
	}
	l.cur = l.f.place(tB)
	l.emit(irInstr{Op: irConst, Dst: dst, Imm: 1})
	l.cur.term = terminator{Kind: termJmp, Then: join}
	l.cur = l.f.place(fB)
	l.emit(irInstr{Op: irConst, Dst: dst, Imm: 0})
	l.cur.term = terminator{Kind: termJmp, Then: join}
	l.cur = l.f.place(join)
	return dst, nil
}

// lowerValue emits code leaving e's value in a fresh vreg.
func (l *lowerer) lowerValue(e spec.Expr) (vreg, error) {
	if v, ok := spec.ConstValue(e); ok {
		return l.emitConst(v), nil
	}
	switch n := e.(type) {
	case *spec.LoadExpr:
		return l.emitLoad(n.Key), nil
	case *spec.IdentExpr:
		return l.emitLoad(n.Name), nil // bare identifier = implicit LOAD
	case *spec.UnaryExpr:
		a, err := l.lowerValue(n.X)
		if err != nil {
			return 0, err
		}
		dst := l.f.newVReg()
		switch n.Op {
		case spec.TokMinus:
			l.emit(irInstr{Op: irNeg, Dst: dst, A: a})
		case spec.TokNot:
			l.emit(irInstr{Op: irNot, Dst: dst, A: a})
		default:
			return 0, fmt.Errorf("unsupported unary operator %v", n.Op)
		}
		return dst, nil
	case *spec.BinaryExpr:
		switch n.Op {
		case spec.TokPlus, spec.TokMinus, spec.TokStar, spec.TokSlash:
			a, err := l.lowerValue(n.X)
			if err != nil {
				return 0, err
			}
			b, err := l.lowerValue(n.Y)
			if err != nil {
				return 0, err
			}
			op := map[spec.TokenKind]irOp{
				spec.TokPlus: irAdd, spec.TokMinus: irSub,
				spec.TokStar: irMul, spec.TokSlash: irDiv,
			}[n.Op]
			dst := l.f.newVReg()
			l.emit(irInstr{Op: op, Dst: dst, A: a, B: b})
			return dst, nil
		case spec.TokLt, spec.TokLe, spec.TokGt, spec.TokGe,
			spec.TokEq, spec.TokNe, spec.TokAnd, spec.TokOr:
			return l.lowerBool(n)
		}
		return 0, fmt.Errorf("unsupported binary operator %v", n.Op)
	case *spec.CallExpr:
		return l.lowerCall(n)
	default:
		return 0, fmt.Errorf("unsupported expression node %T", e)
	}
}

func (l *lowerer) emitLoad(key string) vreg {
	dst := l.f.newVReg()
	l.emit(irInstr{Op: irLoad, Dst: dst, Sym: key})
	return dst
}

func (l *lowerer) lowerCall(n *spec.CallExpr) (vreg, error) {
	lowerArgs := func() ([]vreg, error) {
		out := make([]vreg, len(n.Args))
		for i, a := range n.Args {
			v, err := l.lowerValue(a)
			if err != nil {
				return nil, err
			}
			out[i] = v
		}
		return out, nil
	}
	switch n.Fn {
	case "abs", "min", "max":
		args, err := lowerArgs()
		if err != nil {
			return 0, err
		}
		dst := l.f.newVReg()
		switch n.Fn {
		case "abs":
			l.emit(irInstr{Op: irAbs, Dst: dst, A: args[0]})
		case "min":
			l.emit(irInstr{Op: irMin, Dst: dst, A: args[0], B: args[1]})
		default:
			l.emit(irInstr{Op: irMax, Dst: dst, A: args[0], B: args[1]})
		}
		return dst, nil
	case "sqrt", "log2", "now":
		args, err := lowerArgs()
		if err != nil {
			return 0, err
		}
		h := map[string]vm.HelperID{"sqrt": vm.HelperSqrt, "log2": vm.HelperLog2, "now": vm.HelperNow}[n.Fn]
		dst := l.f.newVReg()
		l.emit(irInstr{Op: irCall, Dst: dst, Helper: h, Args: args})
		return dst, nil
	default:
		return 0, fmt.Errorf("unknown function %q", n.Fn)
	}
}

// lowerAction emits the violation-path IR for one action. SAVE inlines
// as a feature-store write; everything else marshals the action index
// plus up to MaxReportArgs values into a HelperAction call.
func (l *lowerer) lowerAction(a spec.Action, idx int) error {
	dispatch := func(vals []spec.Expr) error {
		if len(vals) > MaxReportArgs {
			return fmt.Errorf("at most %d action values supported, got %d", MaxReportArgs, len(vals))
		}
		args := make([]vreg, 0, len(vals)+1)
		args = append(args, l.emitConst(float64(idx)))
		for _, e := range vals {
			v, err := l.lowerValue(e)
			if err != nil {
				return err
			}
			args = append(args, v)
		}
		l.emit(irInstr{Op: irCall, Dst: l.f.newVReg(), Helper: vm.HelperAction, Args: args})
		return nil
	}
	switch n := a.(type) {
	case *spec.SaveAction:
		v, err := l.lowerValue(n.Value)
		if err != nil {
			return err
		}
		l.emit(irInstr{Op: irStore, Sym: n.Key, A: v})
		return nil
	case *spec.ReportAction:
		return dispatch(n.Args)
	case *spec.ReplaceAction, *spec.RetrainAction:
		return dispatch(nil)
	case *spec.DeprioritizeAction:
		if n.Priority != nil {
			return dispatch([]spec.Expr{n.Priority})
		}
		return dispatch(nil)
	default:
		return fmt.Errorf("unsupported action %T", a)
	}
}
