package compile

import (
	"math"
	"math/rand"
	"strings"
	"testing"

	"guardrails/internal/spec"
	"guardrails/internal/vm"
)

func TestBranchFusionShrinksListing2(t *testing.T) {
	c := compileOne(t, listing2)
	if got := len(c.Program.Code); got > 8 {
		t.Errorf("listing2 compiled to %d insns, want <= 8 (optimizing pipeline)\n%s", got, c.Program)
	}
	// Exactly one conditional jump on the hot path (the peephole re-fuses
	// the threshold constant into its immediate form); no boolean
	// materialization (movi 0/movi 1 pair) before the test.
	var cmpJumps, boolOps int
	for _, in := range c.Program.Code {
		switch in.Op {
		case vm.OpJGt, vm.OpJLe, vm.OpJLt, vm.OpJGe, vm.OpJEq, vm.OpJNe,
			vm.OpJGtI, vm.OpJLeI, vm.OpJLtI, vm.OpJGeI, vm.OpJEqI, vm.OpJNeI:
			cmpJumps++
		case vm.OpBoo, vm.OpNot:
			boolOps++
		}
	}
	if cmpJumps != 1 || boolOps != 0 {
		t.Errorf("cmpJumps=%d boolOps=%d\n%s", cmpJumps, boolOps, c.Program)
	}
	// Optimization provenance is recorded for overhead accounting.
	if c.Program.Meta.OptLevel != 1 || c.Program.Meta.PostOptInsns != len(c.Program.Code) {
		t.Errorf("meta = %+v", c.Program.Meta)
	}
	if c.Program.Meta.PreOptInsns < c.Program.Meta.PostOptInsns {
		t.Errorf("optimization grew the program: %+v", c.Program.Meta)
	}
}

func TestBranchFusionConjunction(t *testing.T) {
	src := `
guardrail conj {
    trigger: { TIMER(0, 1) },
    rule: { LOAD(a) < 10 && LOAD(b) > 2 },
    action: { SAVE(bad, 1) }
}`
	c := compileOne(t, src)
	// Both conjuncts fuse to direct jumps: no OpBoo normalization.
	for _, in := range c.Program.Code {
		if in.Op == vm.OpBoo {
			t.Fatalf("conjunction not fused:\n%s", c.Program)
		}
	}
	// Semantics preserved.
	cases := []struct {
		a, b, want float64
	}{{5, 3, 1}, {15, 3, 0}, {5, 1, 0}}
	for _, cs := range cases {
		out, _ := runProg(t, c, map[string]float64{"a": cs.a, "b": cs.b})
		if out != cs.want {
			t.Errorf("a=%v b=%v: %v, want %v", cs.a, cs.b, out, cs.want)
		}
	}
}

// randExpr builds a random predicate over keys k0..k3 with the given
// recursion depth.
func randExpr(rng *rand.Rand, depth int) string {
	arith := func() string { return randArith(rng, depth) }
	ops := []string{"<", "<=", ">", ">=", "==", "!="}
	cmp := arith() + " " + ops[rng.Intn(len(ops))] + " " + arith()
	if depth <= 0 {
		return cmp
	}
	switch rng.Intn(4) {
	case 0:
		return "(" + randExpr(rng, depth-1) + " && " + randExpr(rng, depth-1) + ")"
	case 1:
		return "(" + randExpr(rng, depth-1) + " || " + randExpr(rng, depth-1) + ")"
	case 2:
		return "!(" + randExpr(rng, depth-1) + ")"
	default:
		return cmp
	}
}

func randArith(rng *rand.Rand, depth int) string {
	leaf := func() string {
		if rng.Intn(2) == 0 {
			return []string{"LOAD(k0)", "LOAD(k1)", "LOAD(k2)", "LOAD(k3)"}[rng.Intn(4)]
		}
		// Small integer literals keep float math exact.
		return []string{"0", "1", "2", "3", "5", "-2"}[rng.Intn(6)]
	}
	if depth <= 0 {
		return leaf()
	}
	switch rng.Intn(5) {
	case 0:
		return "(" + randArith(rng, depth-1) + " + " + randArith(rng, depth-1) + ")"
	case 1:
		return "(" + randArith(rng, depth-1) + " - " + randArith(rng, depth-1) + ")"
	case 2:
		return "(" + randArith(rng, depth-1) + " * " + randArith(rng, depth-1) + ")"
	case 3:
		return "min(" + randArith(rng, depth-1) + ", " + randArith(rng, depth-1) + ")"
	default:
		return leaf()
	}
}

// evalExpr is a reference interpreter for the spec expression language,
// independent of the VM.
func evalExpr(e spec.Expr, env map[string]float64) float64 {
	b2f := func(v bool) float64 {
		if v {
			return 1
		}
		return 0
	}
	switch n := e.(type) {
	case *spec.NumLit:
		return n.Value
	case *spec.BoolLit:
		return b2f(n.Value)
	case *spec.LoadExpr:
		return env[n.Key]
	case *spec.IdentExpr:
		return env[n.Name]
	case *spec.UnaryExpr:
		x := evalExpr(n.X, env)
		if n.Op == spec.TokMinus {
			return -x
		}
		return b2f(x == 0)
	case *spec.CallExpr:
		args := make([]float64, len(n.Args))
		for i, a := range n.Args {
			args[i] = evalExpr(a, env)
		}
		switch n.Fn {
		case "abs":
			return math.Abs(args[0])
		case "min":
			return math.Min(args[0], args[1])
		case "max":
			return math.Max(args[0], args[1])
		case "sqrt":
			if args[0] < 0 {
				return 0
			}
			return math.Sqrt(args[0])
		case "log2":
			if args[0] <= 0 {
				return 0
			}
			return math.Log2(args[0])
		}
		return 0
	case *spec.BinaryExpr:
		x := evalExpr(n.X, env)
		switch n.Op {
		case spec.TokAnd:
			if x == 0 {
				return 0
			}
			return b2f(evalExpr(n.Y, env) != 0)
		case spec.TokOr:
			if x != 0 {
				return 1
			}
			return b2f(evalExpr(n.Y, env) != 0)
		}
		y := evalExpr(n.Y, env)
		switch n.Op {
		case spec.TokPlus:
			return x + y
		case spec.TokMinus:
			return x - y
		case spec.TokStar:
			return x * y
		case spec.TokSlash:
			if y == 0 {
				return 0
			}
			return x / y
		case spec.TokLt:
			return b2f(x < y)
		case spec.TokLe:
			return b2f(x <= y)
		case spec.TokGt:
			return b2f(x > y)
		case spec.TokGe:
			return b2f(x >= y)
		case spec.TokEq:
			return b2f(x == y)
		case spec.TokNe:
			return b2f(x != y)
		}
	}
	return 0
}

// TestRandomRulesCompileAndAgree cross-checks the full pipeline: random
// predicates are compiled at both -O0 (straight lowering + codegen) and
// -O1 (full pass pipeline + peephole) and executed on the VM across
// several random cell environments; both truth values must match the
// reference interpreter, so every IR pass is semantics-preserving on the
// whole sampled expression space.
func TestRandomRulesCompileAndAgree(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	for trial := 0; trial < 300; trial++ {
		exprSrc := randExpr(rng, 2)
		src := "guardrail fuzz { trigger: { TIMER(0,1) }, rule: { " + exprSrc + " }, action: { SAVE(bad, 1) } }"
		g, err := spec.ParseOne(src)
		if err != nil {
			t.Fatalf("trial %d: parse %q: %v", trial, exprSrc, err)
		}
		o1, err := GuardrailWith(g, Options{Level: 1})
		if err != nil {
			// Depth overflow of the register stack is a legitimate
			// rejection for very deep random expressions.
			continue
		}
		// -O0 may overflow the register file where -O1 fits (CSE and DCE
		// shrink live ranges); any other -O0 failure is a bug.
		o0, o0err := GuardrailWith(g, Options{Level: 0})
		if o0err != nil && !strings.Contains(o0err.Error(), "too deep") {
			t.Fatalf("trial %d: -O0 failed on %q: %v", trial, exprSrc, o0err)
		}
		if o1.Program.Meta.PostOptInsns > o1.Program.Meta.PreOptInsns {
			t.Fatalf("trial %d: -O1 grew %q from %d to %d insns", trial, exprSrc,
				o1.Program.Meta.PreOptInsns, o1.Program.Meta.PostOptInsns)
		}
		for round := 0; round < 4; round++ {
			env := map[string]float64{}
			for _, k := range []string{"k0", "k1", "k2", "k3"} {
				env[k] = float64(rng.Intn(7) - 3)
			}
			want := evalExpr(g.Rules[0], env) != 0
			out1, _ := runProg(t, o1, env)
			if (out1 != 0) != want {
				t.Fatalf("trial %d: -O1 VM says %v, reference says %v for %q (env %v)\n%s",
					trial, out1 != 0, want, exprSrc, env, o1.Program)
			}
			if o0err != nil {
				continue
			}
			out0, _ := runProg(t, o0, env)
			if (out0 != 0) != want {
				t.Fatalf("trial %d: -O0 VM says %v, reference says %v for %q (env %v)\n%s",
					trial, out0 != 0, want, exprSrc, env, o0.Program)
			}
		}
	}
}
