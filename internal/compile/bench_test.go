package compile

import (
	"testing"

	"guardrails/internal/spec"
)

// benchSrc exercises every pipeline stage: repeated loads (CSE),
// constants (folding, immediate selection), builtins (call codegen), and
// a conjunction (branch fusion).
const benchSrc = `
guardrail bench {
    trigger: { TIMER(start_time, 1e9) },
    rule: {
        abs(LOAD(x) - LOAD(y)) / max(LOAD(y), 1) <= 0.5;
        LOAD(x) + 0 < 2 * LOAD(x) || LOAD(z) == 1
    },
    action: { REPORT(LOAD(x), LOAD(y)); SAVE(ml_enabled, 0) }
}`

// BenchmarkCompilePipeline measures the full .grail → verified image
// path at each optimization level.
func BenchmarkCompilePipeline(b *testing.B) {
	for _, bc := range []struct {
		name  string
		level int
	}{{"O0", 0}, {"O1", 1}} {
		b.Run(bc.name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := SourceWith(benchSrc, Options{Level: bc.level}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkCompileStages isolates each pipeline stage: parsing+checking,
// lowering, each IR pass, and codegen.
func BenchmarkCompileStages(b *testing.B) {
	g, err := spec.ParseOne(benchSrc)
	if err != nil {
		b.Fatal(err)
	}
	if err := spec.CheckGuardrail(g); err != nil {
		b.Fatal(err)
	}
	b.Run("lower", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := lowerGuardrail(g); err != nil {
				b.Fatal(err)
			}
		}
	})
	for pi, p := range passesForLevel(1) {
		// Each pass benchmarks against the IR state its predecessors
		// produce, not the raw lowered form.
		prefix := passesForLevel(1)[:pi]
		b.Run("pass/"+p.name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				b.StopTimer()
				f, err := lowerGuardrail(g)
				if err != nil {
					b.Fatal(err)
				}
				for _, q := range prefix {
					q.run(f)
				}
				b.StartTimer()
				p.run(f)
			}
		})
	}
	b.Run("codegen", func(b *testing.B) {
		f, err := lowerGuardrail(g)
		if err != nil {
			b.Fatal(err)
		}
		for _, q := range passesForLevel(1) {
			q.run(f)
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := genProgram(f, g.Name); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("peephole", func(b *testing.B) {
		f, err := lowerGuardrail(g)
		if err != nil {
			b.Fatal(err)
		}
		for _, q := range passesForLevel(1) {
			q.run(f)
		}
		p, err := genProgram(f, g.Name)
		if err != nil {
			b.Fatal(err)
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			Peephole(p.Code)
		}
	})
}
