package compile

import (
	"testing"

	"guardrails/internal/spec"
)

// parseExpr extracts the single rule expression from a wrapped source.
func parseExpr(t *testing.T, exprSrc string) spec.Expr {
	t.Helper()
	src := "guardrail g { trigger: { TIMER(0,1) }, rule: { " + exprSrc + " }, action: { REPORT() } }"
	g, err := spec.ParseOne(src)
	if err != nil {
		t.Fatalf("parse %q: %v", exprSrc, err)
	}
	return g.Rules[0]
}

// parseValueExpr parses an arbitrary (non-predicate) expression via a
// SAVE action value, which has no predicate requirement.
func parseValueExpr(t *testing.T, exprSrc string) spec.Expr {
	t.Helper()
	src := "guardrail g { trigger: { TIMER(0,1) }, rule: { 1 < 2 }, action: { SAVE(k, " + exprSrc + ") } }"
	g, err := spec.ParseOne(src)
	if err != nil {
		t.Fatalf("parse %q: %v", exprSrc, err)
	}
	return g.Actions[0].(*spec.SaveAction).Value
}

func TestFoldConstants(t *testing.T) {
	cases := []struct {
		src  string
		want string
	}{
		{"1 + 2 * 3", "7"},
		{"10 / 4", "2.5"},
		{"10 / 0", "0"}, // VM division semantics
		{"-(3 + 4)", "-7"},
		{"abs(0 - 5)", "5"},
		{"min(3, 7)", "3"},
		{"max(3, 7)", "7"},
		{"sqrt(16)", "4"},
		{"sqrt(0 - 4)", "0"},
		{"log2(8)", "3"},
		{"log2(0)", "0"},
	}
	for _, c := range cases {
		got := spec.ExprString(Fold(parseValueExpr(t, c.src)))
		if got != c.want {
			t.Errorf("Fold(%q) = %s, want %s", c.src, got, c.want)
		}
	}
}

func TestFoldPredicates(t *testing.T) {
	cases := []struct {
		src  string
		want string
	}{
		{"1 < 2", "true"},
		{"2 < 1", "false"},
		{"3 <= 3", "true"},
		{"3 > 3", "false"},
		{"3 >= 3", "true"},
		{"1 == 1", "true"},
		{"1 != 1", "false"},
		{"1 < 2 && 3 < 4", "true"},
		{"1 < 2 && 4 < 3", "false"},
		{"2 < 1 || 3 < 4", "true"},
		{"!(1 < 2)", "false"},
		{"true && false", "false"},
	}
	for _, c := range cases {
		got := spec.ExprString(Fold(parseExpr(t, c.src)))
		if got != c.want {
			t.Errorf("Fold(%q) = %s, want %s", c.src, got, c.want)
		}
	}
}

func TestFoldAlgebraicIdentities(t *testing.T) {
	cases := []struct {
		src  string
		want string
	}{
		{"LOAD(x) + 0", "LOAD(x)"},
		{"0 + LOAD(x)", "LOAD(x)"},
		{"LOAD(x) - 0", "LOAD(x)"},
		{"LOAD(x) * 1", "LOAD(x)"},
		{"1 * LOAD(x)", "LOAD(x)"},
		{"LOAD(x) * 0", "0"},
		{"0 * LOAD(x)", "0"},
		{"LOAD(x) / 1", "LOAD(x)"},
		{"--LOAD(x)", "LOAD(x)"},
	}
	for _, c := range cases {
		got := spec.ExprString(Fold(parseValueExpr(t, c.src)))
		if got != c.want {
			t.Errorf("Fold(%q) = %s, want %s", c.src, got, c.want)
		}
	}
}

func TestFoldShortCircuitConstants(t *testing.T) {
	// true && P reduces to a normalized P; false || P likewise.
	got := spec.ExprString(Fold(parseExpr(t, "true && LOAD(x) < 1")))
	if got != "(LOAD(x) < 1)" {
		t.Errorf("true && P = %s", got)
	}
	got = spec.ExprString(Fold(parseExpr(t, "false || LOAD(x) < 1")))
	if got != "(LOAD(x) < 1)" {
		t.Errorf("false || P = %s", got)
	}
	got = spec.ExprString(Fold(parseExpr(t, "false && LOAD(x) < 1")))
	if got != "false" {
		t.Errorf("false && P = %s", got)
	}
	got = spec.ExprString(Fold(parseExpr(t, "true || LOAD(x) < 1")))
	if got != "true" {
		t.Errorf("true || P = %s", got)
	}
}

func TestFoldNormalizationPreserved(t *testing.T) {
	// "true && LOAD(x)" must NOT reduce to bare LOAD(x): AND yields 0/1,
	// LOAD(x) yields its raw value. (Only reachable via SAVE values since
	// rules require predicates.)
	e := Fold(parseValueExpr(t, "true && LOAD(x)"))
	got := spec.ExprString(e)
	if got == "LOAD(x)" {
		t.Errorf("normalization lost: %s", got)
	}
}

func TestFoldLeavesDynamicAlone(t *testing.T) {
	for _, src := range []string{"LOAD(x) < 1", "now() < 5", "LOAD(a) + LOAD(b) < 2"} {
		before := spec.ExprString(parseExpr(t, src))
		after := spec.ExprString(Fold(parseExpr(t, src)))
		if before != after {
			t.Errorf("Fold(%q): %s -> %s (should be unchanged)", src, before, after)
		}
	}
}

func TestFoldPartial(t *testing.T) {
	got := spec.ExprString(Fold(parseExpr(t, "LOAD(x) + (2 * 3) < 4 + 4")))
	want := "((LOAD(x) + 6) < 8)"
	if got != want {
		t.Errorf("got %s, want %s", got, want)
	}
}
