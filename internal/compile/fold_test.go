package compile

import (
	"testing"

	"guardrails/internal/spec"
)

// parseExpr extracts the single rule expression from a wrapped source.
func parseExpr(t *testing.T, exprSrc string) spec.Expr {
	t.Helper()
	src := "guardrail g { trigger: { TIMER(0,1) }, rule: { " + exprSrc + " }, action: { REPORT() } }"
	g, err := spec.ParseOne(src)
	if err != nil {
		t.Fatalf("parse %q: %v", exprSrc, err)
	}
	return g.Rules[0]
}

// parseValueExpr parses an arbitrary (non-predicate) expression via a
// SAVE action value, which has no predicate requirement.
func parseValueExpr(t *testing.T, exprSrc string) spec.Expr {
	t.Helper()
	src := "guardrail g { trigger: { TIMER(0,1) }, rule: { 1 < 2 }, action: { SAVE(k, " + exprSrc + ") } }"
	g, err := spec.ParseOne(src)
	if err != nil {
		t.Fatalf("parse %q: %v", exprSrc, err)
	}
	return g.Actions[0].(*spec.SaveAction).Value
}

func TestConstEvalValues(t *testing.T) {
	cases := []struct {
		src  string
		want float64
	}{
		{"7", 7},
		{"true", 1},
		{"false", 0},
		{"1 + 2 * 3", 7},
		{"10 / 4", 2.5},
		{"10 / 0", 0}, // VM division semantics
		{"-(3 + 4)", -7},
		{"abs(0 - 5)", 5},
		{"min(3, 7)", 3},
		{"max(3, 7)", 7},
		{"sqrt(16)", 4},
		{"sqrt(0 - 4)", 0},
		{"log2(8)", 3},
		{"log2(0)", 0},
	}
	for _, c := range cases {
		got, ok := ConstEval(parseValueExpr(t, c.src))
		if !ok {
			t.Errorf("ConstEval(%q) not constant", c.src)
			continue
		}
		if got != c.want {
			t.Errorf("ConstEval(%q) = %v, want %v", c.src, got, c.want)
		}
	}
}

func TestConstEvalPredicates(t *testing.T) {
	cases := []struct {
		src  string
		want float64
	}{
		{"1 < 2", 1},
		{"2 < 1", 0},
		{"3 <= 3", 1},
		{"3 > 3", 0},
		{"3 >= 3", 1},
		{"1 == 1", 1},
		{"1 != 1", 0},
		{"1 < 2 && 3 < 4", 1},
		{"1 < 2 && 4 < 3", 0},
		{"2 < 1 || 3 < 4", 1},
		{"!(1 < 2)", 0},
		{"true && false", 0},
	}
	for _, c := range cases {
		got, ok := ConstEval(parseExpr(t, c.src))
		if !ok {
			t.Errorf("ConstEval(%q) not constant", c.src)
			continue
		}
		if got != c.want {
			t.Errorf("ConstEval(%q) = %v, want %v", c.src, got, c.want)
		}
	}
}

func TestConstEvalDynamic(t *testing.T) {
	for _, src := range []string{
		"LOAD(x)",
		"LOAD(x) + 1",
		"now()",
		"now() + 1",
		"min(now(), 3)",
		"1 < 2 && LOAD(x) < 1",
	} {
		if v, ok := ConstEval(parseValueExpr(t, src)); ok {
			t.Errorf("ConstEval(%q) = %v, want non-constant", src, v)
		}
	}
}
