package compile

import (
	"guardrails/internal/spec"
	"guardrails/internal/vm"
)

// Compile-time constant evaluation over the AST. The optimizer proper
// folds constants as an IR pass (passes.go); this evaluator exists for
// the places that need a constant *without* compiling — the monitor
// runtime's out-of-band SAVE dispatch, and tests. It implements exactly
// the VM's semantics: x/0 = 0, sqrt of a negative and log2 of a
// non-positive clamp to 0, booleans are 0/1, and now() never folds.

// ConstEval returns the value of e if it is a compile-time constant.
func ConstEval(e spec.Expr) (float64, bool) {
	if v, ok := spec.ConstValue(e); ok {
		return v, true
	}
	switch n := e.(type) {
	case *spec.UnaryExpr:
		x, ok := ConstEval(n.X)
		if !ok {
			return 0, false
		}
		switch n.Op {
		case spec.TokMinus:
			return -x, true
		case spec.TokNot:
			return foldUn(irNot, x), true
		}
		return 0, false
	case *spec.BinaryExpr:
		x, ok := ConstEval(n.X)
		if !ok {
			return 0, false
		}
		y, ok := ConstEval(n.Y)
		if !ok {
			return 0, false
		}
		switch n.Op {
		case spec.TokPlus:
			return foldBin(irAdd, x, y), true
		case spec.TokMinus:
			return foldBin(irSub, x, y), true
		case spec.TokStar:
			return foldBin(irMul, x, y), true
		case spec.TokSlash:
			return foldBin(irDiv, x, y), true
		case spec.TokLt:
			return b2f(cmpLt.eval(x, y)), true
		case spec.TokLe:
			return b2f(cmpLe.eval(x, y)), true
		case spec.TokGt:
			return b2f(cmpGt.eval(x, y)), true
		case spec.TokGe:
			return b2f(cmpGe.eval(x, y)), true
		case spec.TokEq:
			return b2f(cmpEq.eval(x, y)), true
		case spec.TokNe:
			return b2f(cmpNe.eval(x, y)), true
		case spec.TokAnd:
			return b2f(truthy(x) && truthy(y)), true
		case spec.TokOr:
			return b2f(truthy(x) || truthy(y)), true
		}
		return 0, false
	case *spec.CallExpr:
		args := make([]float64, len(n.Args))
		for i, a := range n.Args {
			v, ok := ConstEval(a)
			if !ok {
				return 0, false
			}
			args[i] = v
		}
		switch n.Fn {
		case "abs":
			return foldUn(irAbs, args[0]), true
		case "min":
			return foldBin(irMin, args[0], args[1]), true
		case "max":
			return foldBin(irMax, args[0], args[1]), true
		case "sqrt":
			return foldHelper(vm.HelperSqrt, args[0])
		case "log2":
			return foldHelper(vm.HelperLog2, args[0])
		}
		return 0, false
	}
	return 0, false
}

func b2f(v bool) float64 {
	if v {
		return 1
	}
	return 0
}
