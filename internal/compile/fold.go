// Package compile lowers checked guardrail specifications (package spec)
// to verified monitor VM programs (package vm). The pipeline is:
//
//	parse → check → fold (constant folding + algebraic simplification)
//	      → codegen (short-circuit boolean lowering, stack-style register
//	        allocation) → vm.Verify
//
// One program is produced per guardrail. The program evaluates the
// conjunction of the guardrail's rules; when the property holds it
// returns 1, and when it is violated it executes the guardrail's action
// sequence (SAVE actions natively as feature-store stores, other actions
// as HelperAction calls dispatched by the monitor runtime) and returns 0.
package compile

import (
	"math"

	"guardrails/internal/spec"
)

// Fold rewrites an expression with constant subexpressions evaluated and
// trivial algebraic identities simplified (x+0, x*1, x*0, x/1, double
// negation). Pure builtins (abs, sqrt, log2, min, max) fold when their
// arguments are constant; now() never folds. Folding preserves the
// VM's division semantics (x/0 = 0).
func Fold(e spec.Expr) spec.Expr {
	switch n := e.(type) {
	case *spec.UnaryExpr:
		x := Fold(n.X)
		if v, ok := constVal(x); ok {
			switch n.Op {
			case spec.TokMinus:
				return &spec.NumLit{Value: -v, Pos: n.Pos}
			case spec.TokNot:
				return boolLit(v == 0, n.Pos)
			}
		}
		// --x => x
		if inner, ok := x.(*spec.UnaryExpr); ok && n.Op == spec.TokMinus && inner.Op == spec.TokMinus {
			return inner.X
		}
		// !!x is NOT simplified to x: ! normalizes to 0/1.
		return &spec.UnaryExpr{Op: n.Op, X: x, Pos: n.Pos}
	case *spec.BinaryExpr:
		return foldBinary(n)
	case *spec.CallExpr:
		args := make([]spec.Expr, len(n.Args))
		allConst := true
		vals := make([]float64, len(n.Args))
		for i, a := range n.Args {
			args[i] = Fold(a)
			if v, ok := constVal(args[i]); ok {
				vals[i] = v
			} else {
				allConst = false
			}
		}
		if allConst {
			if v, ok := foldCall(n.Fn, vals); ok {
				return &spec.NumLit{Value: v, Pos: n.Pos}
			}
		}
		return &spec.CallExpr{Fn: n.Fn, Args: args, Pos: n.Pos}
	default:
		return e
	}
}

func foldBinary(n *spec.BinaryExpr) spec.Expr {
	x := Fold(n.X)
	y := Fold(n.Y)
	xv, xc := constVal(x)
	yv, yc := constVal(y)

	if xc && yc {
		switch n.Op {
		case spec.TokPlus:
			return &spec.NumLit{Value: xv + yv, Pos: n.Pos}
		case spec.TokMinus:
			return &spec.NumLit{Value: xv - yv, Pos: n.Pos}
		case spec.TokStar:
			return &spec.NumLit{Value: xv * yv, Pos: n.Pos}
		case spec.TokSlash:
			if yv == 0 {
				return &spec.NumLit{Value: 0, Pos: n.Pos} // VM semantics
			}
			return &spec.NumLit{Value: xv / yv, Pos: n.Pos}
		case spec.TokLt:
			return boolLit(xv < yv, n.Pos)
		case spec.TokLe:
			return boolLit(xv <= yv, n.Pos)
		case spec.TokGt:
			return boolLit(xv > yv, n.Pos)
		case spec.TokGe:
			return boolLit(xv >= yv, n.Pos)
		case spec.TokEq:
			return boolLit(xv == yv, n.Pos)
		case spec.TokNe:
			return boolLit(xv != yv, n.Pos)
		case spec.TokAnd:
			return boolLit(xv != 0 && yv != 0, n.Pos)
		case spec.TokOr:
			return boolLit(xv != 0 || yv != 0, n.Pos)
		}
	}

	// Algebraic identities. Note x*0 folds to 0 only when x is a pure
	// load/literal — all our operands are side-effect free, so it is
	// always safe in this language.
	switch n.Op {
	case spec.TokPlus:
		if xc && xv == 0 {
			return y
		}
		if yc && yv == 0 {
			return x
		}
	case spec.TokMinus:
		if yc && yv == 0 {
			return x
		}
	case spec.TokStar:
		if xc && xv == 1 {
			return y
		}
		if yc && yv == 1 {
			return x
		}
		if (xc && xv == 0) || (yc && yv == 0) {
			return &spec.NumLit{Value: 0, Pos: n.Pos}
		}
	case spec.TokSlash:
		if yc && yv == 1 {
			return x
		}
	case spec.TokAnd:
		if xc {
			if xv == 0 {
				return boolLit(false, n.Pos)
			}
			return truthy(y, n.Pos)
		}
		if yc && yv != 0 {
			return truthy(x, n.Pos)
		}
	case spec.TokOr:
		if xc {
			if xv != 0 {
				return boolLit(true, n.Pos)
			}
			return truthy(y, n.Pos)
		}
		if yc && yv == 0 {
			return truthy(x, n.Pos)
		}
	}
	return &spec.BinaryExpr{Op: n.Op, X: x, Y: y, Pos: n.Pos}
}

// truthy wraps e so that it evaluates to exactly 0 or 1, preserving the
// normalization AND/OR perform. Predicates are already 0/1, so they are
// returned unchanged.
func truthy(e spec.Expr, pos spec.Pos) spec.Expr {
	if isNormalized(e) {
		return e
	}
	// !!e normalizes without changing truth value.
	return &spec.UnaryExpr{Op: spec.TokNot,
		X: &spec.UnaryExpr{Op: spec.TokNot, X: e, Pos: pos}, Pos: pos}
}

// isNormalized reports whether e always evaluates to 0 or 1.
func isNormalized(e spec.Expr) bool {
	switch n := e.(type) {
	case *spec.BoolLit:
		return true
	case *spec.NumLit:
		return n.Value == 0 || n.Value == 1
	case *spec.UnaryExpr:
		return n.Op == spec.TokNot
	case *spec.BinaryExpr:
		switch n.Op {
		case spec.TokLt, spec.TokLe, spec.TokGt, spec.TokGe,
			spec.TokEq, spec.TokNe, spec.TokAnd, spec.TokOr:
			return true
		}
	}
	return false
}

func foldCall(fn string, vals []float64) (float64, bool) {
	switch fn {
	case "abs":
		return math.Abs(vals[0]), true
	case "sqrt":
		if vals[0] < 0 {
			return 0, true // helper semantics
		}
		return math.Sqrt(vals[0]), true
	case "log2":
		if vals[0] <= 0 {
			return 0, true
		}
		return math.Log2(vals[0]), true
	case "min":
		return math.Min(vals[0], vals[1]), true
	case "max":
		return math.Max(vals[0], vals[1]), true
	default: // now() and anything impure
		return 0, false
	}
}

func constVal(e spec.Expr) (float64, bool) {
	switch n := e.(type) {
	case *spec.NumLit:
		return n.Value, true
	case *spec.BoolLit:
		if n.Value {
			return 1, true
		}
		return 0, true
	}
	return 0, false
}

func boolLit(v bool, pos spec.Pos) spec.Expr {
	return &spec.BoolLit{Value: v, Pos: pos}
}
