package compile

import (
	"math"
	"strconv"

	"guardrails/internal/vm"
)

// The optimization pipeline. Each pass rewrites the IR in place; the
// pass manager in compile.go runs them in order and dumps the IR after
// each when tracing (-S). All passes rely on two invariants the lowerer
// establishes and every pass preserves: block edges only point forward
// in layout order, and every vreg outside irFunc.multiDef has exactly
// one defining instruction which precedes all of its uses.

// irPass is one named rewrite over the IR.
type irPass struct {
	name string
	run  func(*irFunc)
}

// passesForLevel returns the pipeline for an optimization level. -O0 is
// lowering plus codegen only; -O1 runs the full pipeline.
func passesForLevel(level int) []irPass {
	if level <= 0 {
		return nil
	}
	return []irPass{
		{"constfold", passConstFold},
		{"algebra", passAlgebra},
		{"cse", passCSE},
		{"copyprop", passCopyProp},
		{"immsel", passImmSel},
		{"dce", passDCE},
	}
}

// ssaConsts maps every single-def vreg defined by irConst to its value.
func ssaConsts(f *irFunc) map[vreg]float64 {
	consts := make(map[vreg]float64)
	for _, b := range f.blocks {
		for _, in := range b.ins {
			if in.Op == irConst && !f.multiDef[in.Dst] {
				consts[in.Dst] = in.Imm
			}
		}
	}
	return consts
}

// ssaDefs maps every single-def vreg to its defining instruction.
func ssaDefs(f *irFunc) map[vreg]*irInstr {
	defs := make(map[vreg]*irInstr)
	for _, b := range f.blocks {
		for i := range b.ins {
			in := &b.ins[i]
			if in.Op != irStore && !f.multiDef[in.Dst] {
				defs[in.Dst] = in
			}
		}
	}
	return defs
}

func truthy(v float64) bool { return v != 0 }

// foldUn evaluates a unary op with VM semantics.
func foldUn(op irOp, a float64) float64 {
	switch op {
	case irNeg:
		return -a
	case irAbs:
		return math.Abs(a)
	case irNot:
		if truthy(a) {
			return 0
		}
		return 1
	default: // irBoo
		if truthy(a) {
			return 1
		}
		return 0
	}
}

// foldBin evaluates a binary op with VM semantics (x/0 = 0).
func foldBin(op irOp, a, b float64) float64 {
	switch op {
	case irAdd, irAddI:
		return a + b
	case irSub, irSubI:
		return a - b
	case irMul, irMulI:
		return a * b
	case irDiv, irDivI:
		if b == 0 {
			return 0
		}
		return a / b
	case irMin:
		return math.Min(a, b)
	default: // irMax
		return math.Max(a, b)
	}
}

// foldHelper evaluates the pure math helpers with their documented
// clamping semantics. Only Sqrt and Log2 are foldable.
func foldHelper(h vm.HelperID, a float64) (float64, bool) {
	switch h {
	case vm.HelperSqrt:
		if a < 0 {
			return 0, true
		}
		return math.Sqrt(a), true
	case vm.HelperLog2:
		if a <= 0 {
			return 0, true
		}
		return math.Log2(a), true
	}
	return 0, false
}

// passConstFold propagates constants forward and folds every pure
// operation whose operands are known, including the clamped sqrt/log2
// helpers. Conditional branches over constants become unconditional
// jumps, which passDCE then exploits to drop the untaken side.
func passConstFold(f *irFunc) {
	consts := make(map[vreg]float64)
	for _, b := range f.blocks {
		for i := range b.ins {
			in := &b.ins[i]
			if in.Op != irStore && f.multiDef[in.Dst] {
				continue
			}
			switch in.Op {
			case irConst:
				consts[in.Dst] = in.Imm
			case irCopy:
				if v, ok := consts[in.A]; ok {
					*in = irInstr{Op: irConst, Dst: in.Dst, Imm: v}
					consts[in.Dst] = v
				}
			case irNeg, irAbs, irNot, irBoo:
				if v, ok := consts[in.A]; ok {
					r := foldUn(in.Op, v)
					*in = irInstr{Op: irConst, Dst: in.Dst, Imm: r}
					consts[in.Dst] = r
				}
			case irAdd, irSub, irMul, irDiv, irMin, irMax:
				a, okA := consts[in.A]
				bv, okB := consts[in.B]
				if okA && okB {
					r := foldBin(in.Op, a, bv)
					*in = irInstr{Op: irConst, Dst: in.Dst, Imm: r}
					consts[in.Dst] = r
				}
			case irAddI, irSubI, irMulI, irDivI:
				if a, ok := consts[in.A]; ok {
					r := foldBin(in.Op, a, in.Imm)
					*in = irInstr{Op: irConst, Dst: in.Dst, Imm: r}
					consts[in.Dst] = r
				}
			case irCall:
				if len(in.Args) != 1 {
					continue
				}
				a, ok := consts[in.Args[0]]
				if !ok {
					continue
				}
				if r, folded := foldHelper(in.Helper, a); folded {
					*in = irInstr{Op: irConst, Dst: in.Dst, Imm: r}
					consts[in.Dst] = r
				}
			}
		}
		t := &b.term
		if t.Kind != termBr {
			continue
		}
		a, okA := consts[t.A]
		if !okA {
			continue
		}
		bv, okB := t.Imm, t.UseImm
		if !t.UseImm {
			bv, okB = consts[t.B]
		}
		if okB {
			dst := t.Else
			if t.Cmp.eval(a, bv) {
				dst = t.Then
			}
			*t = terminator{Kind: termJmp, Then: dst}
		}
	}
}

// passAlgebra applies identity simplifications: x+0, x-0, x*1, x/1
// collapse to copies; x*0 and 0/x collapse to 0 (matching the AST-level
// folder this pipeline replaces); neg(neg x) and not(not x) collapse to
// copy/bool. Folds that are unsound for NaN operands beyond what the
// old folder already assumed (x-x, comparisons of a value with itself)
// are deliberately not performed.
func passAlgebra(f *irFunc) {
	consts := ssaConsts(f)
	defs := ssaDefs(f)
	isC := func(v vreg, c float64) bool {
		got, ok := consts[v]
		return ok && got == c
	}
	for _, b := range f.blocks {
		for i := range b.ins {
			in := &b.ins[i]
			if in.Op != irStore && f.multiDef[in.Dst] {
				continue
			}
			switch in.Op {
			case irAdd:
				if isC(in.A, 0) {
					*in = irInstr{Op: irCopy, Dst: in.Dst, A: in.B}
				} else if isC(in.B, 0) {
					*in = irInstr{Op: irCopy, Dst: in.Dst, A: in.A}
				}
			case irSub:
				if isC(in.B, 0) {
					*in = irInstr{Op: irCopy, Dst: in.Dst, A: in.A}
				}
			case irMul:
				switch {
				case isC(in.A, 0) || isC(in.B, 0):
					*in = irInstr{Op: irConst, Dst: in.Dst, Imm: 0}
				case isC(in.A, 1):
					*in = irInstr{Op: irCopy, Dst: in.Dst, A: in.B}
				case isC(in.B, 1):
					*in = irInstr{Op: irCopy, Dst: in.Dst, A: in.A}
				}
			case irDiv:
				if isC(in.A, 0) {
					*in = irInstr{Op: irConst, Dst: in.Dst, Imm: 0}
				} else if isC(in.B, 1) {
					*in = irInstr{Op: irCopy, Dst: in.Dst, A: in.A}
				}
			case irNeg:
				if d, ok := defs[in.A]; ok && d.Op == irNeg {
					*in = irInstr{Op: irCopy, Dst: in.Dst, A: d.A}
				}
			case irNot:
				if d, ok := defs[in.A]; ok && d.Op == irNot {
					*in = irInstr{Op: irBoo, Dst: in.Dst, A: d.A}
				}
			}
		}
	}
}

// cseKey returns the value-numbering key for an instruction, or "" when
// the instruction is not a candidate (stores, calls, copies).
func cseKey(in *irInstr) string {
	fb := func(v float64) string {
		return strconv.FormatUint(math.Float64bits(v), 16)
	}
	vs := func(v vreg) string { return strconv.Itoa(int(v)) }
	switch in.Op {
	case irConst:
		return "C:" + fb(in.Imm)
	case irLoad:
		return "L:" + in.Sym
	case irNeg, irAbs, irNot, irBoo:
		return "U:" + in.Op.String() + ":" + vs(in.A)
	case irAdd, irMul, irMin, irMax: // commutative: canonicalize operand order
		a, b := in.A, in.B
		if b < a {
			a, b = b, a
		}
		return "B:" + in.Op.String() + ":" + vs(a) + ":" + vs(b)
	case irSub, irDiv:
		return "B:" + in.Op.String() + ":" + vs(in.A) + ":" + vs(in.B)
	case irAddI, irSubI, irMulI, irDivI:
		return "I:" + in.Op.String() + ":" + vs(in.A) + ":" + fb(in.Imm)
	}
	return ""
}

// passCSE eliminates common subexpressions with local value numbering
// extended across single-predecessor chains: a block with exactly one
// predecessor inherits its predecessor's available-expression table.
// In particular, repeated LOADs of one key within a rule collapse to a
// single feature-store read. A store kills the loaded value of its key;
// a helper call conservatively kills all loads (the action helper can
// write the feature store through the runtime).
func passCSE(f *irFunc) {
	npred := make(map[*block]int)
	pred := make(map[*block]*block)
	for _, b := range f.blocks {
		for _, s := range b.term.succs() {
			npred[s]++
			pred[s] = b
		}
	}
	tables := make(map[*block]map[string]vreg)
	for _, b := range f.blocks {
		avail := make(map[string]vreg)
		if npred[b] == 1 {
			for k, v := range tables[pred[b]] {
				avail[k] = v
			}
		}
		for i := range b.ins {
			in := &b.ins[i]
			switch in.Op {
			case irStore:
				delete(avail, "L:"+in.Sym)
				continue
			case irCall:
				for k := range avail {
					if len(k) > 1 && k[0] == 'L' {
						delete(avail, k)
					}
				}
				continue
			}
			if f.multiDef[in.Dst] || f.multiDef[in.A] || f.multiDef[in.B] {
				continue
			}
			key := cseKey(in)
			if key == "" {
				continue
			}
			if w, ok := avail[key]; ok {
				*in = irInstr{Op: irCopy, Dst: in.Dst, A: w}
			} else {
				avail[key] = in.Dst
			}
		}
		tables[b] = avail
	}
}

// succs returns the terminator's successor blocks.
func (t *terminator) succs() []*block {
	switch t.Kind {
	case termJmp:
		return []*block{t.Then}
	case termBr:
		return []*block{t.Then, t.Else}
	}
	return nil
}

// passCopyProp rewrites uses of copy destinations to the copy source,
// leaving the (now dead) copies for passDCE. Only single-def vregs on
// both sides participate: a multi-def source could in principle be
// redefined between the copy and a use, so it is left alone.
func passCopyProp(f *irFunc) {
	repl := make(map[vreg]vreg)
	for _, b := range f.blocks {
		for _, in := range b.ins {
			if in.Op == irCopy && !f.multiDef[in.Dst] && !f.multiDef[in.A] {
				src := in.A
				if r, ok := repl[src]; ok {
					src = r
				}
				repl[in.Dst] = src
			}
		}
	}
	if len(repl) == 0 {
		return
	}
	sub := func(v vreg) vreg {
		if r, ok := repl[v]; ok {
			return r
		}
		return v
	}
	for _, b := range f.blocks {
		for i := range b.ins {
			in := &b.ins[i]
			switch in.Op {
			case irConst, irLoad:
				// no vreg operands
			case irCall:
				for j := range in.Args {
					in.Args[j] = sub(in.Args[j])
				}
			default:
				in.A = sub(in.A)
				in.B = sub(in.B)
			}
		}
		switch b.term.Kind {
		case termBr:
			b.term.A = sub(b.term.A)
			if !b.term.UseImm {
				b.term.B = sub(b.term.B)
			}
		case termRet:
			b.term.Ret = sub(b.term.Ret)
		}
	}
}

// passImmSel selects register-immediate forms: a binary op with one
// constant operand becomes addi/subi/muli/divi (using commutativity
// where the ISA lacks a reversed form), and a conditional branch
// against a constant becomes the immediate comparison the VM's fused
// compare-and-jump opcodes support, swapping the comparison when the
// constant is on the left.
func passImmSel(f *irFunc) {
	consts := ssaConsts(f)
	for _, b := range f.blocks {
		for i := range b.ins {
			in := &b.ins[i]
			if in.Op != irStore && f.multiDef[in.Dst] {
				continue
			}
			switch in.Op {
			case irAdd, irMul:
				immOp := irAddI
				if in.Op == irMul {
					immOp = irMulI
				}
				if v, ok := consts[in.B]; ok {
					*in = irInstr{Op: immOp, Dst: in.Dst, A: in.A, Imm: v}
				} else if v, ok := consts[in.A]; ok {
					*in = irInstr{Op: immOp, Dst: in.Dst, A: in.B, Imm: v}
				}
			case irSub, irDiv:
				immOp := irSubI
				if in.Op == irDiv {
					immOp = irDivI
				}
				if v, ok := consts[in.B]; ok {
					*in = irInstr{Op: immOp, Dst: in.Dst, A: in.A, Imm: v}
				}
			}
		}
		t := &b.term
		if t.Kind != termBr || t.UseImm {
			continue
		}
		if v, ok := consts[t.B]; ok {
			t.UseImm, t.Imm, t.B = true, v, 0
		} else if v, ok := consts[t.A]; ok {
			t.Cmp, t.A, t.B = t.Cmp.swap(), t.B, 0
			t.UseImm, t.Imm = true, v
		}
	}
}

// instrUses appends the vregs an instruction reads to buf.
func instrUses(in *irInstr, buf []vreg) []vreg {
	switch in.Op {
	case irConst, irLoad:
		return buf
	case irCall:
		return append(buf, in.Args...)
	case irStore, irCopy, irNeg, irAbs, irNot, irBoo, irAddI, irSubI, irMulI, irDivI:
		return append(buf, in.A)
	default: // binary register forms
		return append(buf, in.A, in.B)
	}
}

// termUses appends the vregs a terminator reads to buf.
func termUses(t *terminator, buf []vreg) []vreg {
	switch t.Kind {
	case termBr:
		buf = append(buf, t.A)
		if !t.UseImm {
			buf = append(buf, t.B)
		}
	case termRet:
		buf = append(buf, t.Ret)
	}
	return buf
}

// sideEffecting reports whether an instruction must be kept even when
// its result is unused. Feature-store writes and the report/action
// helpers are effects; the pure math helpers and now() are not.
func sideEffecting(in *irInstr) bool {
	switch in.Op {
	case irStore:
		return true
	case irCall:
		switch in.Helper {
		case vm.HelperSqrt, vm.HelperLog2, vm.HelperNow:
			return false
		}
		return true
	}
	return false
}

// passDCE removes blocks unreachable from the entry (e.g. the untaken
// side of a branch passConstFold decided) and then strips pure
// instructions whose results are never read, iterating to a fixpoint so
// whole dead expression trees disappear.
func passDCE(f *irFunc) {
	if len(f.blocks) == 0 {
		return
	}
	reach := map[*block]bool{f.blocks[0]: true}
	kept := f.blocks[:0]
	for _, b := range f.blocks {
		if !reach[b] {
			continue
		}
		for _, s := range b.term.succs() {
			reach[s] = true
		}
		b.id = len(kept)
		kept = append(kept, b)
	}
	f.blocks = kept

	uses := make(map[vreg]int)
	var buf []vreg
	for _, b := range f.blocks {
		for i := range b.ins {
			buf = instrUses(&b.ins[i], buf[:0])
			for _, v := range buf {
				uses[v]++
			}
		}
		buf = termUses(&b.term, buf[:0])
		for _, v := range buf {
			uses[v]++
		}
	}
	for changed := true; changed; {
		changed = false
		for _, b := range f.blocks {
			live := b.ins[:0]
			for i := range b.ins {
				in := b.ins[i]
				if !sideEffecting(&in) && uses[in.Dst] == 0 {
					buf = instrUses(&in, buf[:0])
					for _, v := range buf {
						uses[v]--
					}
					changed = true
					continue
				}
				live = append(live, in)
			}
			b.ins = live
		}
	}
}
