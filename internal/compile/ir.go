package compile

import (
	"fmt"
	"strings"

	"guardrails/internal/vm"
)

// This file defines the compiler's linear IR: the representation between
// the checked AST and VM bytecode that the optimization passes
// (passes.go) rewrite. The IR is a forward-only CFG of basic blocks over
// an unbounded set of virtual registers. Values are SSA by construction
// with one deliberate exception: boolean materialization (a predicate
// used in value position) assigns its result vreg in two arms of a
// diamond; such vregs are recorded in irFunc.multiDef and the passes
// treat them as opaque.

// vreg is a virtual register. Codegen maps vregs onto the VM's general
// purpose registers r6..r15 by linear scan.
type vreg int32

// irOp is an IR instruction opcode. Straight-line instructions only;
// control flow lives in block terminators.
type irOp uint8

const (
	irConst irOp = iota // Dst = Imm
	irLoad              // Dst = LOAD(Sym)
	irStore             // SAVE(Sym) = A
	irCopy              // Dst = A
	irNeg               // Dst = -A
	irAbs               // Dst = |A|
	irNot               // Dst = !truthy(A)
	irBoo               // Dst = truthy(A) ? 1 : 0
	irAdd               // Dst = A + B
	irSub               // Dst = A - B
	irMul               // Dst = A * B
	irDiv               // Dst = A / B (x/0 = 0, VM semantics)
	irMin               // Dst = min(A, B)
	irMax               // Dst = max(A, B)
	irAddI              // Dst = A + Imm   (immediate selection)
	irSubI              // Dst = A - Imm
	irMulI              // Dst = A * Imm
	irDivI              // Dst = A / Imm
	irCall              // Dst = Helper(Args...)
)

var irOpNames = [...]string{
	irConst: "const", irLoad: "load", irStore: "store", irCopy: "copy",
	irNeg: "neg", irAbs: "abs", irNot: "not", irBoo: "bool",
	irAdd: "add", irSub: "sub", irMul: "mul", irDiv: "div",
	irMin: "min", irMax: "max",
	irAddI: "addi", irSubI: "subi", irMulI: "muli", irDivI: "divi",
	irCall: "call",
}

func (o irOp) String() string {
	if int(o) < len(irOpNames) {
		return irOpNames[o]
	}
	return fmt.Sprintf("irop(%d)", uint8(o))
}

// irInstr is one straight-line IR instruction. Field use is per-opcode;
// unary ops read A, binary ops read A and B, immediate forms read A and
// Imm, irCall reads Args.
type irInstr struct {
	Op     irOp
	Dst    vreg
	A, B   vreg
	Imm    float64
	Sym    string // irLoad / irStore
	Helper vm.HelperID
	Args   []vreg // irCall
}

// cmpKind is a comparison in a conditional branch terminator.
type cmpKind uint8

const (
	cmpLt cmpKind = iota
	cmpLe
	cmpGt
	cmpGe
	cmpEq
	cmpNe
)

var cmpNames = [...]string{cmpLt: "lt", cmpLe: "le", cmpGt: "gt", cmpGe: "ge", cmpEq: "eq", cmpNe: "ne"}

func (c cmpKind) String() string { return cmpNames[c] }

// invert returns the comparison taken when this one is false.
func (c cmpKind) invert() cmpKind {
	switch c {
	case cmpLt:
		return cmpGe
	case cmpLe:
		return cmpGt
	case cmpGt:
		return cmpLe
	case cmpGe:
		return cmpLt
	case cmpEq:
		return cmpNe
	default:
		return cmpEq
	}
}

// swap returns the comparison with its operands exchanged (a<b ≡ b>a).
func (c cmpKind) swap() cmpKind {
	switch c {
	case cmpLt:
		return cmpGt
	case cmpLe:
		return cmpGe
	case cmpGt:
		return cmpLt
	case cmpGe:
		return cmpLe
	default: // eq/ne are symmetric
		return c
	}
}

// eval applies the comparison to two values.
func (c cmpKind) eval(a, b float64) bool {
	switch c {
	case cmpLt:
		return a < b
	case cmpLe:
		return a <= b
	case cmpGt:
		return a > b
	case cmpGe:
		return a >= b
	case cmpEq:
		return a == b
	default:
		return a != b
	}
}

// jumpOp returns the VM conditional jump taken when the comparison
// holds, in register (imm=false) or immediate (imm=true) form.
func (c cmpKind) jumpOp(imm bool) vm.Op {
	if imm {
		return [...]vm.Op{cmpLt: vm.OpJLtI, cmpLe: vm.OpJLeI, cmpGt: vm.OpJGtI, cmpGe: vm.OpJGeI, cmpEq: vm.OpJEqI, cmpNe: vm.OpJNeI}[c]
	}
	return [...]vm.Op{cmpLt: vm.OpJLt, cmpLe: vm.OpJLe, cmpGt: vm.OpJGt, cmpGe: vm.OpJGe, cmpEq: vm.OpJEq, cmpNe: vm.OpJNe}[c]
}

// termKind discriminates block terminators.
type termKind uint8

const (
	termNone termKind = iota // unterminated (only during lowering)
	termJmp                  // goto Then
	termBr                   // if (A Cmp B | A Cmp Imm) goto Then else goto Else
	termRet                  // return Ret (in r0)
)

// terminator ends a basic block. All edges point to blocks placed later
// in layout order, preserving the VM's forward-only jump discipline.
type terminator struct {
	Kind       termKind
	Cmp        cmpKind
	A, B       vreg
	Imm        float64
	UseImm     bool // B is unused; compare A against Imm
	Then, Else *block
	Ret        vreg
}

// block is a basic block: straight-line instructions plus a terminator.
type block struct {
	id   int // layout position, assigned by irFunc.place
	ins  []irInstr
	term terminator
}

// irFunc is one guardrail's IR: blocks in layout order (entry first, all
// branch edges forward) plus virtual-register bookkeeping.
type irFunc struct {
	name   string
	blocks []*block
	nvregs int
	// multiDef marks vregs assigned in more than one block (boolean
	// materialization diamonds). Passes must not constant-track, CSE, or
	// copy-propagate through them.
	multiDef map[vreg]bool
}

func newIRFunc(name string) *irFunc {
	return &irFunc{name: name, multiDef: make(map[vreg]bool)}
}

func (f *irFunc) newVReg() vreg {
	v := vreg(f.nvregs)
	f.nvregs++
	return v
}

// newBlock creates an unplaced block. Blocks enter the layout (and get
// their id) via place, so lowering can create join targets early and
// still emit a strictly forward layout.
func (f *irFunc) newBlock() *block { return &block{id: -1} }

// place appends b to the layout.
func (f *irFunc) place(b *block) *block {
	b.id = len(f.blocks)
	f.blocks = append(f.blocks, b)
	return b
}

// numInstrs counts straight-line instructions plus terminators — the
// IR-size metric the pass pipeline reports.
func (f *irFunc) numInstrs() int {
	n := 0
	for _, b := range f.blocks {
		n += len(b.ins)
		if b.term.Kind != termNone {
			n++
		}
	}
	return n
}

// String renders the IR in the textual form grailc -S dumps.
func (f *irFunc) String() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "; ir %q: %d blocks, %d instrs, %d vregs\n", f.name, len(f.blocks), f.numInstrs(), f.nvregs)
	for _, b := range f.blocks {
		fmt.Fprintf(&sb, "b%d:\n", b.id)
		for _, in := range b.ins {
			fmt.Fprintf(&sb, "  %s\n", in.String())
		}
		fmt.Fprintf(&sb, "  %s\n", b.term.String())
	}
	return sb.String()
}

func (in irInstr) String() string {
	switch in.Op {
	case irConst:
		return fmt.Sprintf("v%d = const %g", in.Dst, in.Imm)
	case irLoad:
		return fmt.Sprintf("v%d = load [%s]", in.Dst, in.Sym)
	case irStore:
		return fmt.Sprintf("store [%s], v%d", in.Sym, in.A)
	case irCopy:
		return fmt.Sprintf("v%d = copy v%d", in.Dst, in.A)
	case irNeg, irAbs, irNot, irBoo:
		return fmt.Sprintf("v%d = %s v%d", in.Dst, in.Op, in.A)
	case irAdd, irSub, irMul, irDiv, irMin, irMax:
		return fmt.Sprintf("v%d = %s v%d, v%d", in.Dst, in.Op, in.A, in.B)
	case irAddI, irSubI, irMulI, irDivI:
		return fmt.Sprintf("v%d = %s v%d, %g", in.Dst, in.Op, in.A, in.Imm)
	case irCall:
		args := make([]string, len(in.Args))
		for i, a := range in.Args {
			args[i] = fmt.Sprintf("v%d", a)
		}
		return fmt.Sprintf("v%d = call helper#%d(%s)", in.Dst, int(in.Helper), strings.Join(args, ", "))
	default:
		return fmt.Sprintf("?%s", in.Op)
	}
}

func (t terminator) String() string {
	switch t.Kind {
	case termJmp:
		return fmt.Sprintf("jmp b%d", t.Then.id)
	case termBr:
		if t.UseImm {
			return fmt.Sprintf("br%s v%d, %g -> b%d, b%d", t.Cmp, t.A, t.Imm, t.Then.id, t.Else.id)
		}
		return fmt.Sprintf("br%s v%d, v%d -> b%d, b%d", t.Cmp, t.A, t.B, t.Then.id, t.Else.id)
	case termRet:
		return fmt.Sprintf("ret v%d", t.Ret)
	default:
		return "<unterminated>"
	}
}
