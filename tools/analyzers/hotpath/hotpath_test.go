package hotpath

import (
	"go/ast"
	"go/parser"
	"go/token"
	"go/types"
	"strings"
	"testing"
)

const fixture = `package fixture

import "time"

type item struct{ n int }

//guardrails:hotpath
func dirty(m map[string]int, xs []int) int {
	s := make([]int, 4)        // want: make allocates
	p := new(item)             // want: new allocates
	xs = append(xs, 1)         // want: append may grow and allocate
	q := &item{n: 2}           // want: &composite literal
	lit := []int{1, 2, 3}      // want: slice literal
	mm := map[string]int{}     // want: map literal
	f := func() int { return len(lit) } // want: func literal
	t := time.Now()            // want: time.Now
	b := []byte("k")           // want: string conversion copies
	total := 0
	for _, v := range m {      // want: map iteration
		total += v
	}
	_ = mm
	return s[0] + p.n + q.n + f() + int(t.Unix()) + total + len(b) + xs[0]
}

//guardrails:hotpath
func suppressed() error {
	return &timeoutError{} //guardrails:coldpath cold error path
}

type timeoutError struct{}

func (*timeoutError) Error() string { return "timeout" }

// unmarked is as dirty as it gets but carries no directive: no findings.
func unmarked() []int {
	return append(make([]int, 1), 2)
}

//guardrails:hotpath
func clean(xs []int, arg float64) float64 {
	total := arg
	for _, x := range xs {
		total += float64(x)
	}
	var buf [8]float64
	buf[0] = total
	return buf[0]
}
`

// fakeTimeImporter satisfies the one import the fixture needs without
// touching compiled export data, keeping the test hermetic.
type fakeTimeImporter struct{}

func (fakeTimeImporter) Import(path string) (*types.Package, error) {
	if path != "time" {
		return nil, &importError{path}
	}
	pkg := types.NewPackage("time", "time")
	timeStruct := types.NewNamed(
		types.NewTypeName(token.NoPos, pkg, "Time", nil),
		types.NewStruct(nil, nil), nil)
	unix := types.NewFunc(token.NoPos, pkg, "Unix", types.NewSignatureType(
		types.NewVar(token.NoPos, pkg, "t", timeStruct), nil, nil,
		nil, types.NewTuple(types.NewVar(token.NoPos, pkg, "", types.Typ[types.Int64])), false))
	timeStruct.AddMethod(unix)
	now := types.NewFunc(token.NoPos, pkg, "Now", types.NewSignatureType(
		nil, nil, nil, nil,
		types.NewTuple(types.NewVar(token.NoPos, pkg, "", timeStruct)), false))
	pkg.Scope().Insert(timeStruct.Obj())
	pkg.Scope().Insert(now)
	pkg.MarkComplete()
	return pkg, nil
}

type importError struct{ path string }

func (e *importError) Error() string { return "unexpected import " + e.path }

func analyzeFixture(t *testing.T, src string) []Finding {
	t.Helper()
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, "fixture.go", src, parser.ParseComments)
	if err != nil {
		t.Fatal(err)
	}
	info := &types.Info{
		Types: map[ast.Expr]types.TypeAndValue{},
		Uses:  map[*ast.Ident]types.Object{},
		Defs:  map[*ast.Ident]types.Object{},
	}
	conf := types.Config{Importer: fakeTimeImporter{}}
	if _, err := conf.Check("fixture", fset, []*ast.File{f}, info); err != nil {
		t.Fatal(err)
	}
	return Analyze(&Package{Fset: fset, Files: []*ast.File{f}, Info: info})
}

// TestAnalyzeFlagsAllCategories: every allocation category plus
// time.Now and map iteration is caught in the marked dirty function.
func TestAnalyzeFlagsAllCategories(t *testing.T) {
	findings := analyzeFixture(t, fixture)
	wants := []string{
		"make allocates",
		"new allocates",
		"append may grow and allocate",
		"&composite literal",
		"slice literal",
		"map literal",
		"func literal",
		"time.Now",
		"string conversion copies",
		"map iteration",
	}
	for _, want := range wants {
		found := false
		for _, f := range findings {
			if f.Func == "dirty" && strings.Contains(f.What, want) {
				found = true
			}
		}
		if !found {
			t.Errorf("no finding matching %q in: %v", want, findings)
		}
	}
}

// TestAnalyzeScope: unmarked functions, clean marked functions, and
// coldpath-suppressed lines produce no findings.
func TestAnalyzeScope(t *testing.T) {
	for _, f := range analyzeFixture(t, fixture) {
		switch f.Func {
		case "unmarked":
			t.Errorf("unmarked function flagged: %v", f)
		case "clean":
			t.Errorf("clean function flagged: %v", f)
		case "suppressed":
			t.Errorf("coldpath-suppressed line flagged: %v", f)
		}
	}
}

// TestAnalyzeShadowedBuiltin: a local function named make is not the
// builtin; calling it must not be flagged.
func TestAnalyzeShadowedBuiltin(t *testing.T) {
	const src = `package fixture

func make(n int) int { return n }

//guardrails:hotpath
func usesShadow() int {
	return make(3)
}
`
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, "shadow.go", src, parser.ParseComments)
	if err != nil {
		t.Fatal(err)
	}
	info := &types.Info{
		Types: map[ast.Expr]types.TypeAndValue{},
		Uses:  map[*ast.Ident]types.Object{},
		Defs:  map[*ast.Ident]types.Object{},
	}
	conf := types.Config{}
	if _, err := conf.Check("fixture", fset, []*ast.File{f}, info); err != nil {
		t.Fatal(err)
	}
	findings := Analyze(&Package{Fset: fset, Files: []*ast.File{f}, Info: info})
	if len(findings) != 0 {
		t.Errorf("shadowed make flagged: %v", findings)
	}
}

// TestFindingString pins the file:line:col rendering the driver and CI
// grep on.
func TestFindingString(t *testing.T) {
	f := Finding{
		Pos:  token.Position{Filename: "x.go", Line: 3, Column: 7},
		Func: "Machine.Run", What: "make allocates",
	}
	if got, want := f.String(), "x.go:3:7: hotpath: Machine.Run: make allocates"; got != want {
		t.Errorf("String() = %q, want %q", got, want)
	}
}

// TestImporterHelper keeps the fake importer honest about rejecting
// unexpected imports.
func TestImporterHelper(t *testing.T) {
	if _, err := (fakeTimeImporter{}).Import("os"); err == nil {
		t.Error("fake importer accepted an unexpected import")
	}
}
