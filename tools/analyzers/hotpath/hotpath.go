// Package hotpath is a static analysis over type-checked Go source
// that enforces the repo's zero-allocation discipline on its marked
// hot paths: the VM interpreter loops, the monitor fire path, and the
// provenance capture path all run on every hook firing, and the
// runtime allocation-free tests (hotpath_alloc_test.go) only cover the
// inputs they happen to drive. This pass covers every path through the
// source.
//
// A function opts in with the directive comment
//
//	//guardrails:hotpath
//
// in its doc comment. Inside a marked function the analysis flags:
//
//   - heap allocations: make, new, append, &T{...}, slice and map
//     composite literals, func literals (closures), and string/[]byte
//     conversions that copy
//   - time.Now calls (hot paths must take the already-sampled trigger
//     time, not re-read the clock)
//   - map iteration (range over a map is not allocation-free in the
//     general case and its order nondeterminism has no place on a
//     fire path)
//
// A finding on a provably cold line — a trap constructor on an error
// return, say — is suppressed by the line comment
//
//	//guardrails:coldpath
//
// The analysis is purely stdlib (go/ast + go/types); the driver is
// cmd/hotpathcheck.
package hotpath

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// MarkerDirective marks a function as hot-path in its doc comment.
const MarkerDirective = "//guardrails:hotpath"

// SuppressDirective suppresses findings on its line.
const SuppressDirective = "//guardrails:coldpath"

// Finding is one hot-path violation.
type Finding struct {
	// Pos locates the offending expression.
	Pos token.Position
	// Func is the enclosing marked function's name.
	Func string
	// What describes the violation.
	What string
}

// String renders the finding in file:line:col: message form.
func (f Finding) String() string {
	return fmt.Sprintf("%s: hotpath: %s: %s", f.Pos, f.Func, f.What)
}

// Package is one type-checked package to analyze. Info must carry
// Types and Uses (Defs and Selections are not required).
type Package struct {
	Fset  *token.FileSet
	Files []*ast.File
	Info  *types.Info
}

// Analyze returns every hot-path violation in the package's marked
// functions, sorted by position.
func Analyze(pkg *Package) []Finding {
	var out []Finding
	for _, file := range pkg.Files {
		cold := coldLines(pkg.Fset, file)
		for _, decl := range file.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok || fn.Body == nil || !marked(fn) {
				continue
			}
			v := &visitor{pkg: pkg, fn: funcName(fn), cold: cold}
			ast.Walk(v, fn.Body)
			out = append(out, v.findings...)
		}
	}
	sort.Slice(out, func(i, j int) bool {
		a, b := out[i].Pos, out[j].Pos
		if a.Filename != b.Filename {
			return a.Filename < b.Filename
		}
		if a.Line != b.Line {
			return a.Line < b.Line
		}
		return a.Column < b.Column
	})
	return out
}

// marked reports whether the function's doc comment carries the
// hot-path directive.
func marked(fn *ast.FuncDecl) bool {
	if fn.Doc == nil {
		return false
	}
	for _, c := range fn.Doc.List {
		if strings.TrimSpace(c.Text) == MarkerDirective {
			return true
		}
	}
	return false
}

// funcName renders the function's name including a receiver qualifier.
func funcName(fn *ast.FuncDecl) string {
	if fn.Recv == nil || len(fn.Recv.List) == 0 {
		return fn.Name.Name
	}
	recv := fn.Recv.List[0].Type
	if star, ok := recv.(*ast.StarExpr); ok {
		recv = star.X
	}
	if id, ok := recv.(*ast.Ident); ok {
		return id.Name + "." + fn.Name.Name
	}
	return fn.Name.Name
}

// coldLines collects the lines carrying the suppression directive.
func coldLines(fset *token.FileSet, file *ast.File) map[int]bool {
	lines := map[int]bool{}
	for _, cg := range file.Comments {
		for _, c := range cg.List {
			if strings.HasPrefix(strings.TrimSpace(c.Text), SuppressDirective) {
				lines[fset.Position(c.Pos()).Line] = true
			}
		}
	}
	return lines
}

type visitor struct {
	pkg      *Package
	fn       string
	cold     map[int]bool
	findings []Finding
}

func (v *visitor) flag(n ast.Node, what string) {
	pos := v.pkg.Fset.Position(n.Pos())
	if v.cold[pos.Line] {
		return
	}
	v.findings = append(v.findings, Finding{Pos: pos, Func: v.fn, What: what})
}

func (v *visitor) Visit(n ast.Node) ast.Visitor {
	switch e := n.(type) {
	case *ast.FuncLit:
		v.flag(e, "func literal allocates a closure")
		// Still walk the body: code inside the closure runs on the hot
		// path too.
		return v
	case *ast.CallExpr:
		v.call(e)
	case *ast.UnaryExpr:
		if e.Op == token.AND {
			if _, ok := e.X.(*ast.CompositeLit); ok {
				v.flag(e, "&composite literal escapes to the heap")
			}
		}
	case *ast.CompositeLit:
		if t := v.pkg.Info.TypeOf(e); t != nil {
			switch t.Underlying().(type) {
			case *types.Slice:
				v.flag(e, "slice literal allocates its backing array")
			case *types.Map:
				v.flag(e, "map literal allocates")
			}
		}
	case *ast.RangeStmt:
		if t := v.pkg.Info.TypeOf(e.X); t != nil {
			if _, ok := t.Underlying().(*types.Map); ok {
				v.flag(e, "map iteration (nondeterministic order, not allocation-free)")
			}
		}
	}
	return v
}

// call classifies one call expression: allocating builtins, time.Now,
// and copying string conversions.
func (v *visitor) call(e *ast.CallExpr) {
	switch fun := e.Fun.(type) {
	case *ast.Ident:
		if v.isBuiltin(fun) {
			switch fun.Name {
			case "make":
				v.flag(e, "make allocates")
			case "new":
				v.flag(e, "new allocates")
			case "append":
				v.flag(e, "append may grow and allocate")
			}
		}
	case *ast.SelectorExpr:
		if id, ok := fun.X.(*ast.Ident); ok {
			if pn, ok := v.pkg.Info.Uses[id].(*types.PkgName); ok &&
				pn.Imported().Path() == "time" && fun.Sel.Name == "Now" {
				v.flag(e, "time.Now on the hot path (use the sampled trigger time)")
			}
		}
	}
	// A conversion T(x) between string and byte/rune slices copies.
	if tv, ok := v.pkg.Info.Types[e.Fun]; ok && tv.IsType() && len(e.Args) == 1 {
		to := tv.Type.Underlying()
		from := v.pkg.Info.TypeOf(e.Args[0])
		if from != nil && copyingConversion(from.Underlying(), to) {
			v.flag(e, "string conversion copies")
		}
	}
}

// isBuiltin reports whether the identifier resolves to a universe
// builtin (not a shadowing local).
func (v *visitor) isBuiltin(id *ast.Ident) bool {
	_, ok := v.pkg.Info.Uses[id].(*types.Builtin)
	return ok
}

// copyingConversion reports whether converting from → to copies the
// backing data (string ↔ []byte / []rune).
func copyingConversion(from, to types.Type) bool {
	isStr := func(t types.Type) bool {
		b, ok := t.(*types.Basic)
		return ok && b.Info()&types.IsString != 0
	}
	isByteOrRuneSlice := func(t types.Type) bool {
		s, ok := t.(*types.Slice)
		if !ok {
			return false
		}
		b, ok := s.Elem().Underlying().(*types.Basic)
		return ok && (b.Kind() == types.Byte || b.Kind() == types.Rune ||
			b.Kind() == types.Uint8 || b.Kind() == types.Int32)
	}
	return (isStr(from) && isByteOrRuneSlice(to)) || (isByteOrRuneSlice(from) && isStr(to))
}
