package guardrails

// Integration tests for the static-verification plane: compiled
// guardrails arrive at the monitor runtime carrying the abstract
// interpreter's proof, the load split (proven fast path vs. guarded
// fallback) is observable in the Prometheus exposition, and the facade
// surfaces the certified step bound.

import (
	"strings"
	"testing"

	"guardrails/internal/vm"
)

const staticVerifySpec = `
guardrail static-verify-watch {
    trigger: { TIMER(0, 1e8) },
    rule: { LOAD(sig) <= 1.0 },
    action: { REPORT(LOAD(sig)) }
}`

// TestProvenLoadVisibleInPrometheus: loading a compiled (and therefore
// verifier-proven) guardrail must increment monitor_loads_proven_total,
// and force-loading an unproven copy of the same program must increment
// the guarded-fallback counter instead.
func TestProvenLoadVisibleInPrometheus(t *testing.T) {
	sys := NewSystem()
	sink := sys.AttachTelemetry(64)
	if _, err := sys.LoadGuardrails(staticVerifySpec, Options{}); err != nil {
		t.Fatal(err)
	}

	cs, err := CompileSpec(staticVerifySpec)
	if err != nil {
		t.Fatal(err)
	}
	unproven := *cs[0]
	prog := *unproven.Program
	prog.Meta = vm.ProgramMeta{} // what a decoded image looks like
	prog.Name = "decoded-image-twin"
	unproven.Program = &prog
	unproven.Name = prog.Name
	if _, err := sys.Runtime.Load(&unproven, Options{}); err != nil {
		t.Fatal(err)
	}

	var sb strings.Builder
	if err := sink.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{
		"monitor_loads_proven_total 1",
		"monitor_loads_guarded_total 1",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q:\n%s", want, out)
		}
	}
}

// TestCompiledProgramsCarryProof: every program out of CompileSpec has
// Meta proof fields set, and the facade's VerifySteps admission test
// works against the certified bound.
func TestCompiledProgramsCarryProof(t *testing.T) {
	cs, err := CompileSpec(staticVerifySpec)
	if err != nil {
		t.Fatal(err)
	}
	p := cs[0].Program
	if !p.Meta.TrapFree || p.Meta.MaxSteps <= 0 {
		t.Fatalf("compiled program carries no proof: %+v", p.Meta)
	}
	if err := VerifySteps(p, p.Meta.MaxSteps); err != nil {
		t.Errorf("program rejected by its own certified bound: %v", err)
	}
	if err := VerifySteps(p, p.Meta.MaxSteps-1); err == nil {
		t.Error("VerifySteps accepted a budget below the certified bound")
	}
}
