// Command congestion demonstrates a robustness guardrail (P2) over a
// learned congestion controller. The controller — cloned from an
// aggressive delay-gradient rule — is glass-smooth on clean RTT
// measurements, but injected measurement noise turns its high gain into
// rate oscillation. A guardrail watching the decision coefficient of
// variation disables it in favour of loss-based AIMD, restoring
// utilization.
package main

import (
	"flag"
	"fmt"
	"os"

	"guardrails"
	"guardrails/internal/monitor"
	"guardrails/internal/netcc"
)

const spec = `
guardrail cc-robustness {
    trigger: { TIMER(1e10, 2e8) }, // judge steady state, every 200ms after t=10s
    rule: { LOAD(cc_rate_cov) <= 0.15 },
    action: {
        REPORT(LOAD(cc_rate_cov));
        SAVE(cc_ml_enabled, 0)
    }
}`

func main() {
	seed := flag.Int64("seed", 1, "run seed")
	noise := flag.Float64("noise", 0.3, "RTT measurement noise sigma (lognormal)")
	flag.Parse()

	learned := netcc.NewLearned(*seed)
	fmt.Fprintln(os.Stderr, "cloning learned controller from the delay-gradient teacher...")
	if _, err := learned.Clone(netcc.DelayGradientTeacher{}, netcc.DefaultPathConfig()); err != nil {
		fmt.Fprintln(os.Stderr, "error:", err)
		os.Exit(1)
	}

	run := func(label string, sigma float64, guarded bool) {
		sys := guardrails.NewSystem()
		cfg := netcc.DefaultRunConfig(*seed)
		cfg.NoiseSigma = sigma
		var fallback netcc.Controller
		if guarded {
			fallback = netcc.NewAIMD()
			if _, err := sys.LoadGuardrails(spec, monitor.Options{ViolationStreak: 2}); err != nil {
				fmt.Fprintln(os.Stderr, "error:", err)
				os.Exit(1)
			}
		}
		m, err := netcc.Run(sys.Kernel, sys.Store, learned, fallback, cfg)
		if err != nil {
			fmt.Fprintln(os.Stderr, "error:", err)
			os.Exit(1)
		}
		state := "learned"
		if guarded && sys.Store.Load(netcc.KeyCCEnabled) == 0 {
			state = "fell back to AIMD"
		}
		fmt.Printf("%-28s util=%.2f  rate_cov=%.3f  p95_rtt=%v  loss=%.4f  [%s]\n",
			label, m.Utilization, m.RateCoV, m.P95RTT, m.LossFraction, state)
	}

	run("clean, unguarded", 0, false)
	run(fmt.Sprintf("noisy (sigma=%.1f), unguarded", *noise), *noise, false)
	run(fmt.Sprintf("noisy (sigma=%.1f), guarded", *noise), *noise, true)
}
