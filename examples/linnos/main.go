// Command linnos runs the paper's §5 case study interactively: a
// LinnOS-style learned I/O latency predictor routes reads on a
// simulated flash array; the workload shifts write-heavy mid-run; the
// Listing 2 guardrail detects the rising false-submit rate and falls
// back to the hedged baseline. It prints the Figure 2 series.
package main

import (
	"flag"
	"fmt"
	"os"

	"guardrails/internal/experiments"
)

func main() {
	seed := flag.Int64("seed", 1, "experiment seed")
	calm := flag.Int("calm", 20, "calm phase seconds")
	shift := flag.Int("shift", 40, "shifted phase seconds")
	flag.Parse()

	cfg := experiments.DefaultFig2Config(*seed)
	cfg.CalmSeconds = *calm
	cfg.ShiftSeconds = *shift

	fmt.Fprintln(os.Stderr, "training LinnOS classifier on the calm workload...")
	res, err := experiments.RunFig2(cfg)
	if err != nil {
		fmt.Fprintln(os.Stderr, "error:", err)
		os.Exit(1)
	}
	fmt.Print(res.Render())
}
