// Command scheduler demonstrates a fairness/liveness guardrail (P6)
// over a learned shortest-job-first CPU scheduler: the learned picker
// minimizes mean response time but starves long jobs; a guardrail
// watching the ready queue's maximum wait REPLACEs it with CFS the
// moment any task is starved beyond 100ms.
package main

import (
	"flag"
	"fmt"
	"os"

	"guardrails"
	"guardrails/internal/featurestore"
	"guardrails/internal/kernel"
	"guardrails/internal/monitor"
	"guardrails/internal/sched"
)

const spec = `
guardrail no-starvation {
    trigger: { TIMER(start_time, 5e7) }, // check every 50ms
    rule: { LOAD(sched_max_wait_ms) <= 100 },
    action: {
        REPORT(LOAD(sched_max_wait_ms));
        REPLACE(learned_sjf, cfs)
    }
}`

func main() {
	seed := flag.Int64("seed", 42, "simulation seed")
	jobs := flag.Int("jobs", 4000, "jobs to run")
	flag.Parse()

	cfg := sched.DefaultSimConfig(*seed)
	cfg.ArrivalRate = 170

	// Train the learned picker on jobs completed under CFS.
	trainK := kernel.New()
	trainSt := featurestore.New()
	trainSim, err := sched.NewSim(trainK, trainSt, cfg, func() sched.Picker { return sched.NewCFS() })
	check(err)
	trainSim.Start(sched.GenerateJobs(cfg, 2000))
	trainK.Run()
	learned := sched.NewLearnedSJF(*seed + 1)
	_, err = learned.Train(trainSim.Completed())
	check(err)
	fmt.Fprintf(os.Stderr, "trained learned-sjf on %d completed jobs\n", len(trainSim.Completed()))

	// Guarded run: the picker slot is owned by the action registry.
	sys := guardrails.NewSystem()
	check(sys.Runtime.Policies.DefineSlot("sched_picker", map[string]any{
		"learned_sjf": sched.Picker(learned),
		"cfs":         sched.Picker(sched.NewCFS()),
	}, "learned_sjf"))
	sim, err := sched.NewSim(sys.Kernel, sys.Store, cfg, func() sched.Picker {
		_, cur, err := sys.Runtime.Policies.Current("sched_picker")
		if err != nil {
			return sched.NewCFS()
		}
		return cur.(sched.Picker)
	})
	check(err)
	_, err = sys.LoadGuardrails(spec, monitor.Options{})
	check(err)

	sim.Start(sched.GenerateJobs(cfg, *jobs))
	// RunUntil, not Run: the guardrail's periodic TIMER keeps the event
	// queue non-empty forever.
	sys.Kernel.RunUntil(300 * guardrails.Second)

	m := sim.Metrics()
	fmt.Printf("completed %d jobs | mean response %v | p99 %v | max ready wait %v | starved dispatches %d\n",
		m.Completed, m.MeanResponse, m.P99Response, m.MaxReadyWait, m.StarvedEvents)
	name, _, _ := sys.Runtime.Policies.Current("sched_picker")
	fmt.Printf("final picker: %s\n", name)
	for _, sw := range sys.Runtime.Policies.History("sched_picker") {
		fmt.Printf("swap at %v: %s -> %s\n", sw.Time, sw.From, sw.To)
	}
	for _, v := range sys.Runtime.Log.Recent(3) {
		fmt.Println("violation:", v)
	}
}

func check(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, "error:", err)
		os.Exit(1)
	}
}
