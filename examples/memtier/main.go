// Command memtier demonstrates an out-of-bounds-output guardrail (P3)
// over a learned tiered-memory placement policy. The policy was trained
// against a four-tier hierarchy; the deployed kernel has two tiers, so
// cold pages make it emit tier indices that no longer exist. A bounds
// guardrail reports the illegal-output rate and REPLACEs the model with
// the frequency heuristic.
package main

import (
	"flag"
	"fmt"
	"os"

	"guardrails"
	"guardrails/internal/experiments"
	"guardrails/internal/memtier"
	"guardrails/internal/monitor"
	"guardrails/internal/trace"
)

const spec = `
guardrail mem-placement-bounds {
    trigger: { TIMER(start_time, 1e8) }, // check every 100ms
    rule: { LOAD(mem_illegal_rate) <= 0.01 },
    action: {
        REPORT(LOAD(mem_illegal_rate));
        REPLACE(learned, frequency)
    }
}`

// registryPolicy routes placement through the runtime's policy slot so
// REPLACE takes effect immediately.
type registryPolicy struct {
	sys *guardrails.System
}

func (p *registryPolicy) Name() string {
	name, _, _ := p.sys.Runtime.Policies.Current("mem_policy")
	return name
}

func (p *registryPolicy) Place(s memtier.PageStats, pressure float64) memtier.Decision {
	_, cur, err := p.sys.Runtime.Policies.Current("mem_policy")
	if err != nil {
		return memtier.Decision{Tier: memtier.TierNVM}
	}
	return cur.(memtier.Policy).Place(s, pressure)
}

func main() {
	seed := flag.Int64("seed", 7, "experiment seed")
	flag.Parse()

	learned, err := experiments.TrainStale4TierPlacement(*seed)
	check(err)
	sys := guardrails.NewSystem()
	check(sys.Runtime.Policies.DefineSlot("mem_policy", map[string]any{
		"learned":   memtier.Policy(learned),
		"frequency": memtier.Policy(&memtier.FrequencyPolicy{HotThreshold: 4}),
	}, "learned"))
	mgr, err := memtier.NewManager(sys.Kernel, sys.Store, 2048, &registryPolicy{sys: sys})
	check(err)

	rng := trace.NewRand(*seed)
	now := guardrails.Time(0)
	drive := func(n int, page func(i int) uint64, label string) {
		for i := 0; i < n; i++ {
			mgr.Access(page(i))
			if i%500 == 0 {
				now += 50 * guardrails.Millisecond
				sys.Kernel.RunUntil(now)
			}
		}
		st := mgr.Stats()
		name, _, _ := sys.Runtime.Policies.Current("mem_policy")
		fmt.Printf("%-10s accesses=%-7d illegal=%-5d policy=%-9s illegal_rate=%.3f\n",
			label, st.Accesses, st.IllegalDecisions, name,
			sys.Store.Load(memtier.KeyIllegalRate))
	}

	// Warm the working set first, then deploy the guardrail on the live
	// system (incremental deployment, §3.3).
	drive(20000, func(int) uint64 { return uint64(rng.Intn(1000)) }, "warmup")
	_, err = sys.LoadGuardrails(spec, monitor.Options{})
	check(err)
	fmt.Println("guardrail deployed")

	drive(30000, func(int) uint64 { return uint64(rng.Intn(1000)) }, "hot phase")
	drive(60000, func(i int) uint64 { return uint64(100000 + i) }, "cold scan")

	for _, v := range sys.Runtime.Log.Recent(2) {
		fmt.Println("violation:", v)
	}
}

func check(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, "error:", err)
		os.Exit(1)
	}
}
