// Command quickstart shows the guardrails framework end to end in fifty
// lines: declare a guardrail over a (mock) learned policy's signals,
// load it into a simulated system, and watch it detect a violation and
// flip the policy's control knob — with the telemetry plane attached,
// so the run ends with a Prometheus-style metrics page.
package main

import (
	"fmt"
	"os"

	"guardrails"
)

// spec is the paper's Listing 2: if the learned I/O predictor's
// false-submit rate exceeds 5%, disable it.
const spec = `
guardrail low-false-submit {
    trigger: {
        TIMER(start_time, 1e9) // Periodically check every 1s.
    },
    rule: {
        LOAD(false_submit_rate) <= 0.05
    },
    action: {
        REPORT(LOAD(false_submit_rate));
        SAVE(ml_enabled, false)
    }
}`

func main() {
	sys := guardrails.NewSystem()
	telemetry := sys.AttachTelemetry(1024)
	sys.Store.Save("ml_enabled", 1)

	mons, err := sys.LoadGuardrails(spec, guardrails.Options{})
	if err != nil {
		panic(err)
	}
	fmt.Printf("loaded guardrail %q (%d VM instructions)\n\n",
		mons[0].Name(), len(mons[0].Program().Code))
	fmt.Println(mons[0].Program())

	// A mock learned policy publishes its false-submit rate every 100ms:
	// healthy for 5 seconds, then misbehaving.
	sys.Kernel.Every(0, 100*guardrails.Millisecond, 12*guardrails.Second,
		func(now guardrails.Time) {
			rate := 0.01
			if now >= 5*guardrails.Second {
				rate = 0.18
			}
			sys.Store.Save("false_submit_rate", rate)
		})

	// Observe the knob.
	sys.Store.Watch("ml_enabled", func(_ string, v float64) {
		fmt.Printf("[%v] ml_enabled -> %v\n", sys.Kernel.Now(), v)
	})

	sys.Kernel.RunUntil(12 * guardrails.Second)

	st := mons[0].Stats()
	fmt.Printf("\nevaluations=%d violations=%d actions=%d\n",
		st.Evals, st.Violations, st.ActionsFired)
	for _, v := range sys.Runtime.Log.Recent(3) {
		fmt.Println("violation:", v)
	}

	fmt.Println("\n-- telemetry (Prometheus exposition) --")
	if err := telemetry.WritePrometheus(os.Stdout); err != nil {
		panic(err)
	}
}
