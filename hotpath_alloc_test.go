package guardrails

// Allocation guards for the in-kernel hot paths: a monitor evaluation
// must not touch the heap, or the guardrail's own overhead violates the
// P5 discipline it enforces. testing.AllocsPerRun fails these the moment
// a change reintroduces a per-dispatch or per-evaluation allocation.

import (
	"testing"

	"guardrails/internal/compile"
	"guardrails/internal/featurestore"
	"guardrails/internal/kernel"
	"guardrails/internal/monitor"
	"guardrails/internal/provenance"
	"guardrails/internal/vm"
)

// staticEnv is the smallest possible vm.Env: direct cell-index access.
type staticEnv struct{ vals []float64 }

func (e *staticEnv) LoadCell(i int32) float64     { return e.vals[i] }
func (e *staticEnv) StoreCell(i int32, v float64) { e.vals[i] = v }
func (e *staticEnv) Helper(h vm.HelperID, args *[5]float64) (float64, error) {
	return 0, nil
}

func TestMachineRunAllocationFree(t *testing.T) {
	cs, err := compile.Source(benchSpec)
	if err != nil {
		t.Fatal(err)
	}
	env := &staticEnv{vals: make([]float64, len(cs[0].Program.Symbols))}
	var m vm.Machine
	if _, err := m.Run(cs[0].Program, env, 0); err != nil {
		t.Fatal(err)
	}
	if n := testing.AllocsPerRun(1000, func() {
		if _, err := m.Run(cs[0].Program, env, 0); err != nil {
			t.Fatal(err)
		}
	}); n != 0 {
		t.Errorf("vm.Machine.Run allocates %v times per run, want 0", n)
	}
}

func TestMonitorEvaluateSteadyStateAllocationFree(t *testing.T) {
	k := kernel.New()
	st := featurestore.New()
	rt := monitor.New(k, st)
	ms, err := rt.LoadSource(benchSpec, monitor.Options{})
	if err != nil {
		t.Fatal(err)
	}
	st.Save("false_submit_rate", 0.01) // property holds: no action dispatch
	ms[0].Evaluate(0)                  // warm up lazy state
	if n := testing.AllocsPerRun(1000, func() { ms[0].Evaluate(0) }); n != 0 {
		t.Errorf("steady-state Monitor.Evaluate allocates %v times per run, want 0", n)
	}
}

// TestMonitorEvaluateProvenanceDisabledAllocationFree: the nil-recorder
// capture sites (one atomic load plus nil tests) must keep the hot path
// allocation-free — the CI gate for the disabled provenance plane.
func TestMonitorEvaluateProvenanceDisabledAllocationFree(t *testing.T) {
	k := kernel.New()
	st := featurestore.New()
	rt := monitor.New(k, st)
	rt.SetProvenance(nil) // explicit: the disabled plane
	ms, err := rt.LoadSource(benchSpec, monitor.Options{})
	if err != nil {
		t.Fatal(err)
	}
	st.Save("false_submit_rate", 0.01)
	ms[0].Evaluate(0)
	if n := testing.AllocsPerRun(1000, func() { ms[0].Evaluate(0) }); n != 0 {
		t.Errorf("Evaluate with provenance disabled allocates %v times per run, want 0", n)
	}
}

// TestMonitorEvaluateProvenanceEnabledAllocationFree: even with every
// decision recorded (healthyEvery=1, branch tracing on, scratch fill,
// ring commit), capture stays on the stack and in preallocated rings.
func TestMonitorEvaluateProvenanceEnabledAllocationFree(t *testing.T) {
	k := kernel.New()
	st := featurestore.New()
	rt := monitor.New(k, st)
	rt.SetProvenance(provenance.New(256, 1))
	ms, err := rt.LoadSource(benchSpec, monitor.Options{})
	if err != nil {
		t.Fatal(err)
	}
	st.Save("false_submit_rate", 0.01)
	ms[0].Evaluate(0)
	if n := testing.AllocsPerRun(1000, func() { ms[0].Evaluate(0) }); n != 0 {
		t.Errorf("Evaluate with provenance enabled allocates %v times per run, want 0", n)
	}
	if rt.Provenance().Total() == 0 {
		t.Fatal("recorder captured nothing; the measurement exercised the wrong path")
	}
}
