// Command hotpathcheck runs the hot-path static analysis
// (tools/analyzers/hotpath) over Go packages: functions marked
// //guardrails:hotpath must stay free of heap allocations, time.Now
// calls, and map iteration, with //guardrails:coldpath suppressing
// findings on provably cold lines.
//
// Usage:
//
//	hotpathcheck ./internal/vm ./internal/monitor ./internal/provenance
//
// Exit status: 0 when every marked function is clean, 1 on findings,
// 2 on operational errors. The implementation is stdlib-only: package
// metadata and dependency export data come from `go list -json
// -export -deps`, and the target packages are parsed from source and
// type-checked with go/types.
package main

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"sort"

	"guardrails/tools/analyzers/hotpath"
)

func main() {
	args := os.Args[1:]
	if len(args) == 0 {
		fmt.Fprintln(os.Stderr, "usage: hotpathcheck packages...")
		os.Exit(2)
	}
	code, err := run(os.Stdout, args)
	if err != nil {
		fmt.Fprintf(os.Stderr, "hotpathcheck: %v\n", err)
		os.Exit(2)
	}
	os.Exit(code)
}

// listedPackage is the subset of `go list -json` output the driver
// needs.
type listedPackage struct {
	ImportPath string
	Dir        string
	Export     string
	GoFiles    []string
	Match      []string
	Standard   bool
}

// run analyzes the packages matching patterns, printing findings to w.
// It returns 1 when any marked function is dirty, 0 when clean.
func run(w io.Writer, patterns []string) (int, error) {
	pkgs, err := goList(patterns)
	if err != nil {
		return 0, err
	}

	// Dependency export data (compiled by -export) feeds the importer;
	// the matched target packages themselves are type-checked from
	// source so the analysis sees their ASTs.
	exports := map[string]string{}
	for _, p := range pkgs {
		if p.Export != "" {
			exports[p.ImportPath] = p.Export
		}
	}
	lookup := func(path string) (io.ReadCloser, error) {
		f, ok := exports[path]
		if !ok {
			return nil, fmt.Errorf("no export data for %q", path)
		}
		return os.Open(f)
	}

	findings := 0
	for _, p := range pkgs {
		if len(p.Match) == 0 {
			continue
		}
		fs, err := analyzePackage(p, lookup)
		if err != nil {
			return 0, fmt.Errorf("%s: %w", p.ImportPath, err)
		}
		for _, f := range fs {
			fmt.Fprintln(w, f)
		}
		findings += len(fs)
	}
	if findings > 0 {
		fmt.Fprintf(w, "hotpathcheck: %d finding(s)\n", findings)
		return 1, nil
	}
	return 0, nil
}

// goList shells out to the go tool for package metadata plus compiled
// export data of every dependency.
func goList(patterns []string) ([]*listedPackage, error) {
	args := append([]string{"list", "-json", "-export", "-deps"}, patterns...)
	cmd := exec.Command("go", args...)
	var out, errb bytes.Buffer
	cmd.Stdout = &out
	cmd.Stderr = &errb
	if err := cmd.Run(); err != nil {
		return nil, fmt.Errorf("go list: %v\n%s", err, errb.String())
	}
	var pkgs []*listedPackage
	dec := json.NewDecoder(&out)
	for {
		p := new(listedPackage)
		if err := dec.Decode(p); err == io.EOF {
			break
		} else if err != nil {
			return nil, fmt.Errorf("decoding go list output: %v", err)
		}
		pkgs = append(pkgs, p)
	}
	return pkgs, nil
}

// analyzePackage parses and type-checks one target package from
// source, then runs the hot-path analysis over it.
func analyzePackage(p *listedPackage, lookup func(string) (io.ReadCloser, error)) ([]hotpath.Finding, error) {
	fset := token.NewFileSet()
	var files []*ast.File
	names := append([]string{}, p.GoFiles...)
	sort.Strings(names)
	for _, name := range names {
		f, err := parser.ParseFile(fset, filepath.Join(p.Dir, name), nil, parser.ParseComments)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}
	info := &types.Info{
		Types: map[ast.Expr]types.TypeAndValue{},
		Uses:  map[*ast.Ident]types.Object{},
		Defs:  map[*ast.Ident]types.Object{},
	}
	conf := types.Config{Importer: importer.ForCompiler(fset, "gc", lookup)}
	if _, err := conf.Check(p.ImportPath, fset, files, info); err != nil {
		return nil, fmt.Errorf("type checking: %v", err)
	}
	return hotpath.Analyze(&hotpath.Package{Fset: fset, Files: files, Info: info}), nil
}
