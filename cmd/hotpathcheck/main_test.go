package main

import (
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
)

// repoRoot walks up from the working directory to the module root.
func repoRoot(t *testing.T) string {
	t.Helper()
	dir, err := os.Getwd()
	if err != nil {
		t.Fatal(err)
	}
	for {
		if _, err := os.Stat(filepath.Join(dir, "go.mod")); err == nil {
			return dir
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			t.Fatal("no go.mod above the test directory")
		}
		dir = parent
	}
}

// TestMarkedPackagesClean runs the real driver over the repo's marked
// hot paths — the same invocation CI gates on — and requires zero
// findings.
func TestMarkedPackagesClean(t *testing.T) {
	if _, err := exec.LookPath("go"); err != nil {
		t.Skip("go tool not on PATH")
	}
	root := repoRoot(t)
	if err := os.Chdir(root); err != nil {
		t.Fatal(err)
	}
	var sb strings.Builder
	code, err := run(&sb, []string{"./internal/vm", "./internal/monitor", "./internal/provenance"})
	if err != nil {
		t.Fatalf("hotpathcheck failed: %v", err)
	}
	if code != 0 {
		t.Errorf("marked hot paths are dirty:\n%s", sb.String())
	}
}

// TestDriverFlagsSeededViolation plants a marked allocating function in
// a throwaway package inside the module and checks the driver flags it
// and exits 1.
func TestDriverFlagsSeededViolation(t *testing.T) {
	if _, err := exec.LookPath("go"); err != nil {
		t.Skip("go tool not on PATH")
	}
	root := repoRoot(t)
	if err := os.Chdir(root); err != nil {
		t.Fatal(err)
	}
	dir := filepath.Join(root, "tools", "analyzers", "hotpath", "zz_seeded_violation")
	if err := os.MkdirAll(dir, 0o755); err != nil {
		t.Fatal(err)
	}
	defer os.RemoveAll(dir)
	src := `package seeded

//guardrails:hotpath
func leaky(n int) []int {
	return make([]int, n)
}
`
	if err := os.WriteFile(filepath.Join(dir, "seeded.go"), []byte(src), 0o644); err != nil {
		t.Fatal(err)
	}
	var sb strings.Builder
	code, err := run(&sb, []string{"./tools/analyzers/hotpath/zz_seeded_violation"})
	if err != nil {
		t.Fatalf("hotpathcheck failed: %v", err)
	}
	if code != 1 {
		t.Errorf("seeded violation not flagged (exit %d):\n%s", code, sb.String())
	}
	if !strings.Contains(sb.String(), "make allocates") {
		t.Errorf("finding text missing:\n%s", sb.String())
	}
}
