// Command guardrail-bench is the experiment harness: it runs every
// experiment in the reproduction's index (DESIGN.md / EXPERIMENTS.md)
// and prints the paper-style rows and series.
//
// Usage:
//
//	guardrail-bench [-seed N] [-only fig2,p1,p2,p3,p4,p5,p6,osc,trig,vm,chaos,rollout,shards]
//	guardrail-bench -chaos        (just the fault-injection run)
//	guardrail-bench -rollout-chaos [-rollout-out report.json]
//	guardrail-bench -only fig2 -metrics-out metrics.json -trace-out trace.json
//	guardrail-bench -only fig2 -bench-out BENCH_fig2.json
//	guardrail-bench -throughput [-shards N]
//	guardrail-bench -throughput -shards-out BENCH_shards.json
//	guardrail-bench -only fig2 -prov -why-out why.json
//	guardrail-bench -only fig2 -serve :9090
//	guardrail-bench -prov-overhead [-prov-tol 0.05]
//
// The chaos experiment (also selectable as -only chaos) reruns Figure 2
// under the standard fault plan and reports the fault audit and the
// breaker's recovery latency.
//
// The rollout chaos experiment (-rollout-chaos, or -only rollout) runs
// staged fleet rollouts against the rollout control plane: a healthy
// canary must auto-promote through transient admission failures, a
// violation storm must roll back in shadow, a broken corrective action
// must roll back at canary share, and breakglass must quarantine
// fleet-wide. The process exits nonzero when any rollback is missed;
// -rollout-out archives the JSON report.
//
// The throughput mode (-throughput, or -only shards) measures how many
// hook fires per wall-clock second the monitor plane sustains on the
// sharded multi-core kernel. With -shards N it measures that one shard
// count; without it (or with -shards-out) it sweeps 1, 4, and NumCPU
// shards, and -shards-out archives the sweep as the committed
// BENCH_shards.json. Simulated quantities in the snapshot (hook fires,
// evals, events) are deterministic; the fires/sec rate is wall-clock
// and scales with real cores.
//
// Decision provenance (-prov) attaches a sampled per-fire "why"
// recorder to the fig2 guarded stack; the simulated results are
// identical with or without it. -why-out archives the records as JSON,
// and -serve keeps the process alive after the runs serving the live
// ops endpoint (/metrics, /snapshot.json, /flight, /why?monitor=...,
// /healthz) — point `grailctl explain` at it. -prov-overhead measures
// the wall-clock cost sampled provenance adds to a steady-state
// evaluation and exits nonzero when it exceeds -prov-tol.
//
// The telemetry flags apply to the Figure 2 run: -metrics-out writes
// the guarded system's counter/histogram snapshot as JSON, -trace-out
// writes its flight recorder as Chrome trace_event JSON (loadable in
// Perfetto or chrome://tracing), and -bench-out writes the
// deterministic per-config latency/violation summary committed as
// BENCH_fig2.json.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	"guardrails/internal/experiments"
	"guardrails/internal/kernel"
	"guardrails/internal/provenance"
	"guardrails/internal/telemetry"
)

// writeFile streams one export (snapshot, trace, bench summary) to path.
func writeFile(path string, write func(w io.Writer) error) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := write(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

func main() {
	seed := flag.Int64("seed", 1, "experiment seed")
	only := flag.String("only", "", "comma-separated experiment ids (default: all)")
	chaos := flag.Bool("chaos", false, "run only the fault-injection chaos experiment")
	rolloutChaos := flag.Bool("rollout-chaos", false, "run only the staged-rollout chaos experiment")
	rolloutOut := flag.String("rollout-out", "", "write the rollout chaos report (JSON) to this file")
	metricsOut := flag.String("metrics-out", "", "write the fig2 guarded system's telemetry snapshot (JSON) to this file")
	traceOut := flag.String("trace-out", "", "write the fig2 guarded system's flight recorder (Chrome trace_event JSON) to this file")
	benchOut := flag.String("bench-out", "", "write the fig2 per-config benchmark summary (JSON) to this file")
	throughput := flag.Bool("throughput", false, "run only the sharded-kernel hook-fire throughput experiment")
	shards := flag.Int("shards", 0, "shard count for -throughput (0 sweeps 1, 4, and NumCPU)")
	shardsOut := flag.String("shards-out", "", "write the shard-throughput sweep (JSON, BENCH_shards.json) to this file")
	prov := flag.Bool("prov", false, "attach a sampled decision-provenance recorder to the fig2 guarded stack")
	whyOut := flag.String("why-out", "", "write the fig2 decision-provenance records (JSON) to this file (implies -prov)")
	serveAddr := flag.String("serve", "", "after the runs, serve the fig2 ops endpoint (/metrics, /snapshot.json, /flight, /why, /healthz) on this address and block")
	provOverhead := flag.Bool("prov-overhead", false, "run only the sampled-provenance hot-path overhead measurement")
	provTol := flag.Float64("prov-tol", 0.05, "overhead budget for -prov-overhead (fraction; 0.05 = 5%)")
	flag.Parse()

	want := map[string]bool{}
	if *only != "" {
		for _, id := range strings.Split(*only, ",") {
			want[strings.TrimSpace(id)] = true
		}
	}
	if *chaos {
		want["chaos"] = true
	}
	if *rolloutChaos {
		want["rollout"] = true
	}
	if *throughput {
		want["shards"] = true
	}
	if *provOverhead {
		want["provoverhead"] = true
	}
	run := func(id string) bool {
		if id == "provoverhead" {
			// Wall-clock measurement: opt-in only (-prov-overhead or
			// -only provoverhead), never part of the default sweep.
			return want[id]
		}
		return len(want) == 0 || want[id]
	}

	// The ops endpoint and provenance exports hang off the fig2 run.
	var opsSink *telemetry.Sink
	var opsRec *provenance.Recorder

	type experiment struct {
		id string
		fn func() (string, error)
	}
	exps := []experiment{
		{"fig2", func() (string, error) {
			cfg := experiments.DefaultFig2Config(*seed)
			cfg.CollectLatencies = *benchOut != ""
			var sink *telemetry.Sink
			if *metricsOut != "" || *traceOut != "" || *serveAddr != "" {
				sink = telemetry.New(nil, 8192)
				cfg.Telemetry = sink
				opsSink = sink
			}
			var rec *provenance.Recorder
			if *prov || *whyOut != "" || *serveAddr != "" {
				rec = provenance.New(4096, provenance.DefaultHealthyEvery)
				cfg.Provenance = rec
				opsRec = rec
			}
			r, err := experiments.RunFig2(cfg)
			if err != nil {
				return "", err
			}
			if *metricsOut != "" {
				if err := writeFile(*metricsOut, sink.WriteJSON); err != nil {
					return "", fmt.Errorf("fig2: metrics-out: %w", err)
				}
			}
			if *traceOut != "" {
				if err := writeFile(*traceOut, sink.WriteTrace); err != nil {
					return "", fmt.Errorf("fig2: trace-out: %w", err)
				}
			}
			if *whyOut != "" {
				if err := writeFile(*whyOut, rec.WriteJSON); err != nil {
					return "", fmt.Errorf("fig2: why-out: %w", err)
				}
			}
			if *benchOut != "" {
				b := experiments.NewBenchFig2(cfg, r)
				if err := writeFile(*benchOut, b.WriteJSON); err != nil {
					return "", fmt.Errorf("fig2: bench-out: %w", err)
				}
			}
			return r.Render(), nil
		}},
		{"p1", func() (string, error) {
			r, err := experiments.RunP1Drift(*seed)
			if err != nil {
				return "", err
			}
			return r.Render(), nil
		}},
		{"p2", func() (string, error) {
			rows, err := experiments.RunP2Robustness(*seed, []float64{0, 0.1, 0.2, 0.3, 0.4})
			if err != nil {
				return "", err
			}
			return experiments.RenderP2(rows), nil
		}},
		{"p3", func() (string, error) {
			r, err := experiments.RunP3OutOfBounds(*seed)
			if err != nil {
				return "", err
			}
			return r.Render(), nil
		}},
		{"p4", func() (string, error) {
			r, err := experiments.RunP4Quality(*seed)
			if err != nil {
				return "", err
			}
			return r.Render(), nil
		}},
		{"p5", func() (string, error) {
			rows, err := experiments.RunP5Overhead(*seed, []kernel.Time{
				6 * kernel.Microsecond,
				60 * kernel.Microsecond,
				400 * kernel.Microsecond,
			})
			if err != nil {
				return "", err
			}
			return experiments.RenderP5(rows), nil
		}},
		{"p6", func() (string, error) {
			r, err := experiments.RunP6Fairness(*seed)
			if err != nil {
				return "", err
			}
			return r.Render(), nil
		}},
		{"osc", func() (string, error) {
			r, err := experiments.RunOscillation(*seed)
			if err != nil {
				return "", err
			}
			return r.Render(), nil
		}},
		{"trig", func() (string, error) {
			rows, err := experiments.RunTriggerSweep(*seed)
			if err != nil {
				return "", err
			}
			return experiments.RenderTriggers(rows), nil
		}},
		{"vm", func() (string, error) {
			rows, err := experiments.RunVMMicro()
			if err != nil {
				return "", err
			}
			return experiments.RenderVMMicro(rows), nil
		}},
		{"chaos", func() (string, error) {
			r, err := experiments.RunChaos(experiments.DefaultChaosConfig(*seed))
			if err != nil {
				return "", err
			}
			out := r.Render()
			if r.Missed > 0 {
				return out, fmt.Errorf("chaos: %d injected faults left no trace", r.Missed)
			}
			return out, nil
		}},
		{"rollout", func() (string, error) {
			r, err := experiments.RunRolloutChaos(experiments.DefaultRolloutChaosConfig(*seed))
			if err != nil {
				return "", err
			}
			if *rolloutOut != "" {
				if err := writeFile(*rolloutOut, func(w io.Writer) error {
					enc := json.NewEncoder(w)
					enc.SetIndent("", "  ")
					return enc.Encode(r)
				}); err != nil {
					return "", fmt.Errorf("rollout: rollout-out: %w", err)
				}
			}
			out := r.Render()
			if !r.Pass {
				return out, fmt.Errorf("rollout: %d acceptance check(s) failed (missed rollback or breakglass)", len(r.Failures))
			}
			return out, nil
		}},
		{"shards", func() (string, error) {
			counts := experiments.ShardSweepCounts()
			if *shards > 0 {
				counts = []int{*shards}
			}
			b, err := experiments.RunShardSweep(counts)
			if err != nil {
				return "", err
			}
			if *shardsOut != "" {
				if err := writeFile(*shardsOut, b.WriteJSON); err != nil {
					return "", fmt.Errorf("shards: shards-out: %w", err)
				}
			}
			return b.Render(), nil
		}},
		{"provoverhead", func() (string, error) {
			r, err := experiments.RunProvOverhead(0, 0, *provTol)
			if err != nil {
				return "", err
			}
			out := r.Render()
			if !r.Pass {
				return out, fmt.Errorf("provoverhead: sampled provenance costs %.2f%% on the hot path, budget %.0f%%",
					100*r.Overhead, 100*r.Tol)
			}
			return out, nil
		}},
	}

	exit := 0
	for _, e := range exps {
		if !run(e.id) {
			continue
		}
		fmt.Fprintf(os.Stderr, "running %s...\n", e.id)
		out, err := e.fn()
		if err != nil {
			fmt.Fprintf(os.Stderr, "%s: %v\n", e.id, err)
			exit = 1
			continue
		}
		fmt.Println(out)
	}

	if *serveAddr != "" && opsSink != nil {
		srv, err := telemetry.ServeOps(*serveAddr, telemetry.OpsConfig{
			Sink: func() *telemetry.Sink { return opsSink },
			Why: func(name string, n int) (any, error) {
				return provenance.Views(opsRec.ForMonitor(name, n)), nil
			},
		})
		if err != nil {
			fmt.Fprintf(os.Stderr, "serve: %v\n", err)
			os.Exit(1)
		}
		fmt.Fprintf(os.Stderr, "serving ops endpoint on http://%s (/metrics /snapshot.json /flight /why /healthz); ^C to stop\n", srv.Addr())
		select {} // serve until interrupted
	}
	os.Exit(exit)
}
