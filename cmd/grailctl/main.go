// Command grailctl is the fleet-operations CLI for guardrail
// deployments: it diffs two deployment generations semantically and
// rehearses a staged rollout (shadow → canary → fleet-wide) against a
// deterministic synthetic workload before anyone touches a live fleet.
//
// Usage:
//
//	grailctl diff [-budget N] [-json] -old a.grail[,b.grail...] -new c.grail[,...]
//	grailctl rollout [-seed N] [-budget N] [-json] [-shadow-ms N] [-canary-ms N]
//	         [-canary-share num/den] -old a.grail[,...] -new c.grail[,...]
//
// diff prints each guardrail's change classification (added, removed,
// retuned, modified, unchanged, with per-item details such as threshold
// deltas), then re-runs interference analysis scoped to the changed
// guardrails and their coupled neighbours. When the candidate
// generation declares "assert" property blocks, diff also runs the
// bounded temporal model checker over the whole candidate (GM001…
// diagnostics) — a retuned guardrail that refutes a declared property
// is caught here, before any rehearsal. Exit status: 0 when the scoped
// analysis is clean and every property is proved, 1 on warnings or
// unproved properties, 2 on usage or spec errors.
//
// rollout loads the old generation into a simulated kernel, drives a
// seeded synthetic workload over every hook site and feature key the
// deployment touches, then runs the new generation through the staged
// rollout control plane with telemetry-gated promotion. Exit status: 0
// when the candidate promotes, 1 when it is refused, rolls back, or
// fails static, 2 on usage or spec errors — so a CI pipeline can
// rehearse a rollout and block the real one on regression.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"math/rand"
	"os"
	"sort"
	"strings"

	"guardrails/internal/compile"
	"guardrails/internal/featurestore"
	"guardrails/internal/kernel"
	"guardrails/internal/monitor"
	"guardrails/internal/rollout"
	"guardrails/internal/spec"
	"guardrails/internal/spec/interfere"
	"guardrails/internal/spec/modelcheck"
	"guardrails/internal/telemetry"
	"guardrails/internal/vm"
)

func main() {
	os.Exit(run(os.Stdout, os.Stderr, os.Args[1:]))
}

func run(stdout, stderr io.Writer, args []string) int {
	if len(args) == 0 {
		usage(stderr)
		return 2
	}
	switch args[0] {
	case "diff":
		return runDiff(stdout, stderr, args[1:])
	case "rollout":
		return runRollout(stdout, stderr, args[1:])
	case "explain":
		return runExplain(stdout, stderr, args[1:])
	default:
		fmt.Fprintf(stderr, "grailctl: unknown verb %q\n", args[0])
		usage(stderr)
		return 2
	}
}

func usage(w io.Writer) {
	fmt.Fprintln(w, `usage: grailctl diff    [-budget N] [-json] -old specs -new specs
       grailctl rollout [-seed N] [-budget N] [-json] [-shadow-ms N] [-canary-ms N] [-canary-share num/den] -old specs -new specs
       grailctl explain [-addr host:port] [-n N] [-json] monitor
specs is a comma-separated list of .grail files`)
}

// generation is one parsed deployment generation.
type generation struct {
	compiled   []*compile.Compiled
	features   []*spec.FeatureDecl
	properties []*spec.PropertyDecl
}

// loadGeneration parses, checks, and compiles a comma-separated spec
// list.
func loadGeneration(stderr io.Writer, list string) (*generation, bool) {
	g := &generation{}
	for _, path := range strings.Split(list, ",") {
		path = strings.TrimSpace(path)
		if path == "" {
			continue
		}
		data, err := os.ReadFile(path)
		if err != nil {
			fmt.Fprintf(stderr, "grailctl: %v\n", err)
			return nil, false
		}
		f, err := spec.Parse(string(data))
		if err != nil {
			fmt.Fprintf(stderr, "grailctl: %s: %v\n", path, err)
			return nil, false
		}
		if err := spec.Check(f); err != nil {
			fmt.Fprintf(stderr, "grailctl: %s: %v\n", path, err)
			return nil, false
		}
		cs, err := compile.File(f)
		if err != nil {
			fmt.Fprintf(stderr, "grailctl: %s: %v\n", path, err)
			return nil, false
		}
		g.compiled = append(g.compiled, cs...)
		g.features = append(g.features, f.Features...)
		g.properties = append(g.properties, f.Properties...)
	}
	return g, true
}

// loadGenerations parses the -old and -new spec lists.
func loadGenerations(stderr io.Writer, oldList, newList string) (old, new *generation, ok bool) {
	if newList == "" {
		fmt.Fprintln(stderr, "grailctl: -new is required")
		return nil, nil, false
	}
	old = &generation{}
	if oldList != "" {
		if old, ok = loadGeneration(stderr, oldList); !ok {
			return nil, nil, false
		}
	}
	if new, ok = loadGeneration(stderr, newList); !ok {
		return nil, nil, false
	}
	return old, new, true
}

// --- diff ---------------------------------------------------------------

func runDiff(stdout, stderr io.Writer, args []string) int {
	fs := flag.NewFlagSet("grailctl diff", flag.ContinueOnError)
	fs.SetOutput(stderr)
	budget := fs.Int("budget", 0, "default per-hook-site certified step budget (0 = unlimited)")
	jsonOut := fs.Bool("json", false, "emit the diff and scoped report as JSON")
	oldList := fs.String("old", "", "comma-separated spec files of the incumbent generation")
	newList := fs.String("new", "", "comma-separated spec files of the candidate generation")
	if err := fs.Parse(args); err != nil {
		return 2
	}
	old, new, ok := loadGenerations(stderr, *oldList, *newList)
	if !ok {
		return 2
	}

	d := rollout.Compare(old.compiled, new.compiled)
	dep := &interfere.Deployment{
		Monitors: new.compiled, Features: new.features, HookBudget: *budget,
	}
	scoped, names := rollout.Scope(d, dep)
	report := interfere.Analyze(scoped)

	// Declared temporal properties gate the candidate generation the
	// same way they gate rollout.Begin: a candidate that breaks an
	// "assert" block is refused at diff time, before any rehearsal.
	var temporal *modelcheck.Report
	if len(new.properties) > 0 {
		temporal = modelcheck.Check(dep, modelcheck.Config{Properties: new.properties})
	}

	if *jsonOut {
		enc := json.NewEncoder(stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(struct {
			Diff     *rollout.Diff      `json:"diff"`
			Scope    []string           `json:"scope"`
			Report   *interfere.Report  `json:"report"`
			Temporal *modelcheck.Report `json:"temporal,omitempty"`
		}{d, names, report, temporal}); err != nil {
			fmt.Fprintf(stderr, "grailctl: %v\n", err)
			return 2
		}
	} else {
		for _, ch := range d.Changes {
			fmt.Fprintln(stdout, ch.String())
		}
		fmt.Fprintf(stdout, "diff: %s\n", d.Summary())
		fmt.Fprintf(stdout, "scoped re-analysis (%d of %d guardrails: %s): %s\n",
			len(names), len(new.compiled), strings.Join(names, ", "), report.Summary())
		for _, diag := range report.Diagnostics {
			fmt.Fprintf(stdout, "  %s\n", diag)
		}
		if temporal != nil {
			for _, diag := range temporal.Diagnostics {
				fmt.Fprintf(stdout, "  %s\n", diag)
			}
			for _, p := range temporal.Properties {
				line := fmt.Sprintf("property %s: %s", p.Property, p.Status)
				if p.Reason != "" {
					line += " (" + p.Reason + ")"
				}
				fmt.Fprintln(stdout, line)
			}
			fmt.Fprintf(stdout, "model check: %s\n", temporal.Summary())
		}
	}
	if report.Warnings() > 0 || (temporal != nil && !temporal.Clean()) {
		return 1
	}
	return 0
}

// --- rollout rehearsal --------------------------------------------------

func runRollout(stdout, stderr io.Writer, args []string) int {
	fs := flag.NewFlagSet("grailctl rollout", flag.ContinueOnError)
	fs.SetOutput(stderr)
	seed := fs.Int64("seed", 1, "workload seed")
	budget := fs.Int("budget", 0, "default per-hook-site certified step budget (0 = unlimited)")
	jsonOut := fs.Bool("json", false, "emit the rehearsal outcome as JSON")
	shadowMS := fs.Int("shadow-ms", 500, "shadow window (simulated milliseconds)")
	canaryMS := fs.Int("canary-ms", 1000, "canary window (simulated milliseconds)")
	share := fs.String("canary-share", "1/4", "canary action-traffic share (num/den)")
	oldList := fs.String("old", "", "comma-separated spec files of the incumbent generation")
	newList := fs.String("new", "", "comma-separated spec files of the candidate generation")
	if err := fs.Parse(args); err != nil {
		return 2
	}
	var num, den uint64
	if _, err := fmt.Sscanf(*share, "%d/%d", &num, &den); err != nil || den == 0 || num == 0 {
		fmt.Fprintf(stderr, "grailctl: bad -canary-share %q (want num/den)\n", *share)
		return 2
	}
	old, new, ok := loadGenerations(stderr, *oldList, *newList)
	if !ok {
		return 2
	}

	k := kernel.New()
	st := featurestore.New()
	rt := monitor.New(k, st)
	sink := telemetry.New(func() telemetry.Time { return int64(k.Now()) }, 1<<15)
	rt.SetTelemetry(sink)
	k.SetTelemetry(sink)

	for _, c := range old.compiled {
		if _, err := rt.Load(c, monitor.Options{}); err != nil {
			fmt.Fprintf(stderr, "grailctl: loading incumbent %s: %v\n", c.Name, err)
			return 2
		}
	}
	ctl := rollout.NewController(rt)
	ctl.Adopt(old.compiled)

	driveWorkload(k, st, old, new, *seed)

	cfg := rollout.Config{
		ShadowWindow: kernel.Time(*shadowMS) * kernel.Millisecond,
		CanaryWindow: kernel.Time(*canaryMS) * kernel.Millisecond,
		CanaryNum:    num, CanaryDen: den,
		HookBudget: *budget,
		Features:   new.features,
		Properties: new.properties,
	}
	err := ctl.Begin(new.compiled, cfg)
	if err == nil {
		// Rollouts run as kernel events; drive the clock until terminal.
		deadline := kernel.Time(10*(*shadowMS+*canaryMS)) * kernel.Millisecond
		for k.Now() < deadline && !ctl.Phase().Terminal() {
			k.RunUntil(k.Now() + 100*kernel.Millisecond)
		}
	}

	outcome := struct {
		Phase   string           `json:"phase"`
		Reason  string           `json:"reason,omitempty"`
		Refused string           `json:"refused,omitempty"`
		Gen     uint64           `json:"fleet_generation"`
		Diff    *rollout.Diff    `json:"diff"`
		History []rollout.Record `json:"history"`
	}{
		Phase: ctl.Phase().String(), Reason: ctl.Reason(),
		Gen: ctl.FleetGeneration(), Diff: rollout.Compare(old.compiled, new.compiled),
		History: ctl.History(),
	}
	if err != nil {
		outcome.Refused = err.Error()
	}

	if *jsonOut {
		enc := json.NewEncoder(stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(outcome); err != nil {
			fmt.Fprintf(stderr, "grailctl: %v\n", err)
			return 2
		}
	} else {
		fmt.Fprintf(stdout, "diff: %s\n", outcome.Diff.Summary())
		for _, rec := range outcome.History {
			fmt.Fprintf(stdout, "%-12s gen=%d %s", rec.At, rec.Gen, rec.Event)
			if rec.Note != "" {
				fmt.Fprintf(stdout, "  (%s)", rec.Note)
			}
			fmt.Fprintln(stdout)
		}
		if outcome.Refused != "" {
			fmt.Fprintf(stdout, "rollout rehearsal: refused: %s\n", outcome.Refused)
		} else {
			fmt.Fprintf(stdout, "rollout rehearsal: %s (fleet generation %d)\n", outcome.Phase, outcome.Gen)
			if outcome.Reason != "" {
				fmt.Fprintf(stdout, "  reason: %s\n", outcome.Reason)
			}
		}
	}
	if err != nil || ctl.Phase() != rollout.PhasePromoted {
		return 1
	}
	return 0
}

// driveWorkload synthesizes deterministic traffic for the rehearsal:
// every FUNCTION hook site either generation attaches to fires each
// simulated millisecond, and every feature key any program loads is
// refreshed from the seeded generator — uniform over its declared
// range, or [0, 1) when undeclared.
func driveWorkload(k *kernel.Kernel, st *featurestore.Store, old, new *generation, seed int64) {
	sites := map[string]bool{}
	loadKeys := map[string]bool{}
	for _, g := range []*generation{old, new} {
		for _, c := range g.compiled {
			for _, t := range c.Triggers {
				if ft, ok := t.(*spec.FuncTrigger); ok {
					sites[ft.Site] = true
				}
			}
			for _, in := range c.Program.Code {
				if in.Op == vm.OpLoad {
					loadKeys[c.Program.Symbols[in.Cell]] = true
				}
			}
		}
	}
	ranges := map[string][2]float64{}
	for _, g := range []*generation{old, new} {
		for _, f := range g.features {
			if _, ok := ranges[f.Key]; !ok {
				ranges[f.Key] = [2]float64{f.Lo, f.Hi}
			}
		}
	}
	rng := rand.New(rand.NewSource(seed))
	var siteList []string
	for s := range sites {
		siteList = append(siteList, s)
	}
	var keyList []string
	for key := range loadKeys {
		keyList = append(keyList, key)
	}
	// Deterministic iteration order.
	sort.Strings(siteList)
	sort.Strings(keyList)
	k.Every(0, kernel.Millisecond, 0, func(now kernel.Time) {
		for _, key := range keyList {
			lo, hi := 0.0, 1.0
			if r, ok := ranges[key]; ok {
				lo, hi = r[0], r[1]
			}
			st.Save(key, lo+rng.Float64()*(hi-lo))
		}
		for _, s := range siteList {
			k.Fire(s, rng.Float64())
		}
	})
}
