package main

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

const (
	ctlIncumbent = `
feature lat_ma range(0.0, 1.0)

guardrail lat-guard {
    trigger: { FUNCTION(io_done) },
    rule: { LOAD(lat_ma) <= 0.5 },
    action: { SAVE(alert, 1) }
}`

	ctlRetuned = `
feature lat_ma range(0.0, 1.0)

guardrail lat-guard {
    trigger: { FUNCTION(io_done) },
    rule: { LOAD(lat_ma) <= 0.55 },
    action: { SAVE(alert, 1) }
}`

	ctlStorm = `
feature lat_ma range(0.0, 1.0)

guardrail lat-guard {
    trigger: { FUNCTION(io_done) },
    rule: { LOAD(lat_ma) <= 0.01 },
    action: { SAVE(alert, 1) }
}`
)

func writeSpec(t *testing.T, name, src string) string {
	t.Helper()
	p := filepath.Join(t.TempDir(), name)
	if err := os.WriteFile(p, []byte(src), 0o644); err != nil {
		t.Fatal(err)
	}
	return p
}

func runCtl(t *testing.T, args ...string) (int, string, string) {
	t.Helper()
	var out, errb bytes.Buffer
	code := run(&out, &errb, args)
	return code, out.String(), errb.String()
}

func TestUsageExitCodes(t *testing.T) {
	if code, _, _ := runCtl(t); code != 2 {
		t.Errorf("no args: exit %d, want 2", code)
	}
	if code, _, _ := runCtl(t, "frobnicate"); code != 2 {
		t.Errorf("unknown verb: exit %d, want 2", code)
	}
	if code, _, _ := runCtl(t, "diff"); code != 2 {
		t.Errorf("diff without -new: exit %d, want 2", code)
	}
}

func TestDiffClassifiesRetune(t *testing.T) {
	old := writeSpec(t, "old.grail", ctlIncumbent)
	new_ := writeSpec(t, "new.grail", ctlRetuned)
	code, out, _ := runCtl(t, "diff", "-old", old, "-new", new_)
	if code != 0 {
		t.Fatalf("exit %d, want 0; out:\n%s", code, out)
	}
	if !strings.Contains(out, "retuned") || !strings.Contains(out, "0.5 -> 0.55") {
		t.Errorf("diff output missing retune classification:\n%s", out)
	}
	if !strings.Contains(out, "scoped re-analysis") {
		t.Errorf("diff output missing scoped analysis summary:\n%s", out)
	}
}

func TestDiffSpecErrorExits2(t *testing.T) {
	bad := writeSpec(t, "bad.grail", "guardrail oops {")
	code, _, errb := runCtl(t, "diff", "-new", bad)
	if code != 2 {
		t.Errorf("exit %d, want 2; stderr: %s", code, errb)
	}
}

func TestDiffJSON(t *testing.T) {
	old := writeSpec(t, "old.grail", ctlIncumbent)
	new_ := writeSpec(t, "new.grail", ctlRetuned)
	code, out, _ := runCtl(t, "diff", "-json", "-old", old, "-new", new_)
	if code != 0 {
		t.Fatalf("exit %d, want 0", code)
	}
	var doc struct {
		Diff struct {
			Changes []struct {
				Name string `json:"name"`
				Kind string `json:"kind"`
			} `json:"changes"`
		} `json:"diff"`
		Scope []string `json:"scope"`
	}
	if err := json.Unmarshal([]byte(out), &doc); err != nil {
		t.Fatalf("diff -json produced invalid JSON: %v\n%s", err, out)
	}
	if len(doc.Diff.Changes) != 1 || doc.Diff.Changes[0].Kind != "retuned" {
		t.Errorf("changes = %+v, want one retuned", doc.Diff.Changes)
	}
	if len(doc.Scope) != 1 || doc.Scope[0] != "lat-guard" {
		t.Errorf("scope = %v, want [lat-guard]", doc.Scope)
	}
}

func TestRolloutRehearsalPromotes(t *testing.T) {
	old := writeSpec(t, "old.grail", ctlIncumbent)
	new_ := writeSpec(t, "new.grail", ctlRetuned)
	code, out, _ := runCtl(t, "rollout", "-seed", "5", "-old", old, "-new", new_)
	if code != 0 {
		t.Fatalf("exit %d, want 0; out:\n%s", code, out)
	}
	for _, want := range []string{"phase:shadow", "phase:canary", "promoted", "fleet generation 2"} {
		if !strings.Contains(out, want) {
			t.Errorf("rehearsal output missing %q:\n%s", want, out)
		}
	}
}

func TestRolloutRehearsalRollsBack(t *testing.T) {
	old := writeSpec(t, "old.grail", ctlIncumbent)
	storm := writeSpec(t, "storm.grail", ctlStorm)
	code, out, _ := runCtl(t, "rollout", "-seed", "5", "-old", old, "-new", storm)
	if code != 1 {
		t.Fatalf("exit %d, want 1; out:\n%s", code, out)
	}
	if !strings.Contains(out, "rolled_back") || !strings.Contains(out, "violation rate") {
		t.Errorf("rehearsal output missing rollback reason:\n%s", out)
	}
	if strings.Contains(out, "phase:canary") {
		t.Errorf("storm candidate reached canary in rehearsal:\n%s", out)
	}
}

func TestRolloutRehearsalJSON(t *testing.T) {
	old := writeSpec(t, "old.grail", ctlIncumbent)
	new_ := writeSpec(t, "new.grail", ctlRetuned)
	code, out, _ := runCtl(t, "rollout", "-json", "-seed", "5", "-old", old, "-new", new_)
	if code != 0 {
		t.Fatalf("exit %d, want 0", code)
	}
	var doc struct {
		Phase string `json:"phase"`
		Gen   uint64 `json:"fleet_generation"`
	}
	if err := json.Unmarshal([]byte(out), &doc); err != nil {
		t.Fatalf("rollout -json produced invalid JSON: %v\n%s", err, out)
	}
	if doc.Phase != "promoted" || doc.Gen != 2 {
		t.Errorf("phase=%q gen=%d, want promoted/2", doc.Phase, doc.Gen)
	}
}
