package main

import (
	"strings"
	"testing"
)

// ctlAsserted is the retuned candidate plus a declared safety property
// the retune cannot break ("alert never exceeds 1") and one it can
// ("alert stays 0") — the second refutes, so diff must exit 1.
const ctlAssertedBad = `
feature lat_ma range(0.0, 1.0)

assert always LOAD(alert) <= 0

guardrail lat-guard {
    trigger: { FUNCTION(io_done) },
    rule: { LOAD(lat_ma) <= 0.55 },
    action: { SAVE(alert, 1) }
}`

const ctlAssertedGood = `
feature lat_ma range(0.0, 1.0)

assert always LOAD(alert) <= 1

guardrail lat-guard {
    trigger: { FUNCTION(io_done) },
    rule: { LOAD(lat_ma) <= 0.55 },
    action: { SAVE(alert, 1) }
}`

// TestDiffRefusesBrokenProperty: a retuned candidate whose declared
// "assert always" the model checker refutes fails grailctl diff with
// the GM001 diagnostic, before any rollout rehearsal.
func TestDiffRefusesBrokenProperty(t *testing.T) {
	oldSpec := writeSpec(t, "old.grail", ctlIncumbent)
	newSpec := writeSpec(t, "new.grail", ctlAssertedBad)
	code, out, _ := runCtl(t, "diff", "-old", oldSpec, "-new", newSpec)
	if code != 1 {
		t.Fatalf("diff with broken property exited %d, want 1\n%s", code, out)
	}
	for _, want := range []string{"[GM001]", "REFUTED", "model check:"} {
		if !strings.Contains(out, want) {
			t.Errorf("diff output missing %q:\n%s", want, out)
		}
	}
}

// TestDiffProvesDeclaredProperty: the same retune under a property it
// satisfies passes, with the proof in the output.
func TestDiffProvesDeclaredProperty(t *testing.T) {
	oldSpec := writeSpec(t, "old.grail", ctlIncumbent)
	newSpec := writeSpec(t, "new.grail", ctlAssertedGood)
	code, out, errb := runCtl(t, "diff", "-old", oldSpec, "-new", newSpec)
	if code != 0 {
		t.Fatalf("diff with proved property exited %d\nstdout:\n%s\nstderr:\n%s", code, out, errb)
	}
	if !strings.Contains(out, "PROVED") {
		t.Errorf("diff output missing proof:\n%s", out)
	}
}

// TestRolloutRefusesBrokenProperty: the rehearsal verb hands declared
// properties to rollout.Begin, which refuses the candidate before
// shadow.
func TestRolloutRefusesBrokenProperty(t *testing.T) {
	oldSpec := writeSpec(t, "old.grail", ctlIncumbent)
	newSpec := writeSpec(t, "new.grail", ctlAssertedBad)
	code, out, _ := runCtl(t, "rollout", "-old", oldSpec, "-new", newSpec)
	if code != 1 {
		t.Fatalf("rollout with broken property exited %d, want 1\n%s", code, out)
	}
	if !strings.Contains(out, "refused by temporal model checking") {
		t.Errorf("rehearsal did not report the temporal refusal:\n%s", out)
	}
}
