package main

import (
	"strings"
	"testing"

	"guardrails"
)

// startExplainTarget boots a live System.ServeOps endpoint on an
// ephemeral loopback port with one violated guardrail, returning its
// address — the real thing grailctl explain is pointed at.
func startExplainTarget(t *testing.T) string {
	t.Helper()
	sys := guardrails.NewSystem()
	sys.AttachTelemetry(256)
	sys.AttachProvenance(256, 1)
	mons, err := sys.LoadGuardrails(`
guardrail lat-guard {
    trigger: { FUNCTION(io_done) },
    rule: { LOAD(lat_ma) <= 0.5 },
    action: { SAVE(alert, 1) }
}`, guardrails.Options{})
	if err != nil {
		t.Fatal(err)
	}
	sys.Store.Save("lat_ma", 0.8)
	mons[0].Evaluate(0.8)
	srv, err := sys.ServeOps("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { srv.Close() })
	return srv.Addr()
}

func TestExplainAgainstLiveEndpoint(t *testing.T) {
	addr := startExplainTarget(t)
	code, out, errb := runCtl(t, "explain", "-addr", addr, "-n", "3", "lat-guard")
	if code != 0 {
		t.Fatalf("exit %d, stderr: %s", code, errb)
	}
	for _, want := range []string{
		"lat-guard — last 1 decision(s):",
		"VIOLATION",
		"loaded: lat_ma=0.8",
		"rule: VIOLATED",
		"action alert: save",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("explain output missing %q:\n%s", want, out)
		}
	}
}

func TestExplainJSONOutput(t *testing.T) {
	addr := startExplainTarget(t)
	code, out, errb := runCtl(t, "explain", "-addr", addr, "-json", "lat-guard")
	if code != 0 {
		t.Fatalf("exit %d, stderr: %s", code, errb)
	}
	for _, want := range []string{`"kind": "violation"`, `"monitor": "lat-guard"`} {
		if !strings.Contains(out, want) {
			t.Errorf("json output missing %q:\n%s", want, out)
		}
	}
}

func TestExplainUnknownMonitorIsEmpty(t *testing.T) {
	addr := startExplainTarget(t)
	code, out, _ := runCtl(t, "explain", "-addr", addr, "ghost")
	if code != 0 {
		t.Fatalf("exit %d", code)
	}
	if !strings.Contains(out, "ghost: no decision records retained") {
		t.Errorf("output = %s", out)
	}
}

func TestExplainUsageErrors(t *testing.T) {
	if code, _, _ := runCtl(t, "explain"); code != 2 {
		t.Errorf("no monitor arg: exit %d, want 2", code)
	}
	if code, _, _ := runCtl(t, "explain", "a", "b"); code != 2 {
		t.Errorf("two monitor args: exit %d, want 2", code)
	}
	// Nothing listens here: a connection error is an operational (2)
	// failure, not a panic.
	if code, _, errb := runCtl(t, "explain", "-addr", "127.0.0.1:1", "mon"); code != 2 || errb == "" {
		t.Errorf("dead endpoint: exit %d, stderr %q", code, errb)
	}
}
