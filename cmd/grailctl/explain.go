package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"strings"

	"guardrails/internal/provenance"
)

// runExplain answers "why did this monitor fire?" against a live ops
// endpoint (System.ServeOps / guardrail-bench -serve): it fetches the
// monitor's last-N decision records from /why and renders them as a
// causal chain — trigger, features loaded, branch path, verdict,
// actions — or as raw JSON with -json.
func runExplain(stdout, stderr io.Writer, args []string) int {
	fs := flag.NewFlagSet("grailctl explain", flag.ContinueOnError)
	fs.SetOutput(stderr)
	addr := fs.String("addr", "localhost:9090", "ops endpoint address (host:port)")
	n := fs.Int("n", 5, "number of most-recent decision records to fetch")
	jsonOut := fs.Bool("json", false, "emit the raw decision records as JSON")
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if fs.NArg() != 1 {
		fmt.Fprintln(stderr, "grailctl: explain takes exactly one monitor name")
		return 2
	}
	monitor := fs.Arg(0)

	u := fmt.Sprintf("http://%s/why?monitor=%s&n=%d", *addr, url.QueryEscape(monitor), *n)
	resp, err := http.Get(u)
	if err != nil {
		fmt.Fprintf(stderr, "grailctl: %v\n", err)
		return 2
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		fmt.Fprintf(stderr, "grailctl: reading %s: %v\n", u, err)
		return 2
	}
	if resp.StatusCode != http.StatusOK {
		fmt.Fprintf(stderr, "grailctl: %s: %s: %s\n", u, resp.Status, strings.TrimSpace(string(body)))
		return 2
	}

	var recs []provenance.RecordJSON
	if err := json.Unmarshal(body, &recs); err != nil {
		fmt.Fprintf(stderr, "grailctl: decoding %s: %v\n", u, err)
		return 2
	}
	if *jsonOut {
		enc := json.NewEncoder(stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(recs); err != nil {
			fmt.Fprintf(stderr, "grailctl: %v\n", err)
			return 2
		}
		return 0
	}
	fmt.Fprint(stdout, provenance.Explain(monitor, recs))
	return 0
}
