// Command grailvm compiles a guardrail specification and evaluates its
// monitors once against feature-store values supplied on the command
// line, printing each rule's verdict and the actions a violation would
// dispatch. It is the quickest way to sanity-check a guardrail before
// deploying it.
//
// Usage:
//
//	grailvm -spec file.grail [-set key=value]...
//	grailvm -e 'guardrail g { ... }' -set false_submit_rate=0.2
//	grailvm -image monitor.img -set key=value    (grailc -o output)
//	grailvm -asm monitor.s -set key=value        (hand-written assembly)
//	grailvm -spec file.grail -set key=value -serve :9090
//
// With -serve the process stays alive after printing the verdicts and
// serves the live ops endpoint — /metrics, /snapshot.json, /flight,
// /why?monitor=..., /healthz — with always-on decision provenance, so
// `grailctl explain <monitor> -addr localhost:9090` can replay why each
// rule held or fired.
//
// Image and assembly modes evaluate the raw monitor program against the
// supplied feature-store state: rules and SAVE actions execute; REPORT/
// REPLACE/RETRAIN/DEPRIORITIZE dispatches are counted but have no
// bindings outside a full runtime. Both modes re-verify the program
// through the abstract interpreter before running it; -max-steps N
// additionally rejects programs whose certified worst-case step bound
// exceeds N.
package main

import (
	"flag"
	"fmt"
	"math"
	"os"
	"strconv"
	"strings"

	"guardrails"
	"guardrails/internal/featurestore"
	"guardrails/internal/vm"
)

type setFlags []string

func (s *setFlags) String() string { return strings.Join(*s, ",") }
func (s *setFlags) Set(v string) error {
	*s = append(*s, v)
	return nil
}

func main() {
	specPath := flag.String("spec", "", "guardrail specification file")
	expr := flag.String("e", "", "guardrail specification text")
	imagePath := flag.String("image", "", "binary monitor image (grailc -o)")
	asmPath := flag.String("asm", "", "monitor assembly file")
	maxSteps := flag.Int("max-steps", 0,
		"reject programs whose certified worst-case step count exceeds this (0 = no limit; image/asm modes)")
	serveAddr := flag.String("serve", "",
		"after the verdicts, serve the live ops endpoint (/metrics, /snapshot.json, /flight, /why, /healthz) on this address and block (spec/-e modes)")
	var sets setFlags
	flag.Var(&sets, "set", "feature store assignment key=value (repeatable)")
	flag.Parse()

	if *imagePath != "" || *asmPath != "" {
		runRaw(*imagePath, *asmPath, *maxSteps, sets)
		return
	}

	var src string
	switch {
	case *expr != "":
		src = *expr
	case *specPath != "":
		data, err := os.ReadFile(*specPath)
		if err != nil {
			fail("%v", err)
		}
		src = string(data)
	default:
		fail("usage: grailvm (-spec file.grail | -e 'spec' | -image m.img | -asm m.s) [-set key=value]...")
	}

	sys := guardrails.NewSystem()
	sink := sys.AttachTelemetry(256)
	// Always-on provenance for a one-shot evaluation: every decision
	// (healthy included) keeps its "why" record for /why and explain.
	sys.AttachProvenance(256, 1)
	for _, kv := range sets {
		parts := strings.SplitN(kv, "=", 2)
		if len(parts) != 2 {
			fail("bad -set %q (want key=value)", kv)
		}
		v, err := strconv.ParseFloat(parts[1], 64)
		if err != nil {
			fail("bad -set value %q: %v", parts[1], err)
		}
		sys.Store.Save(parts[0], v)
	}

	mons, err := sys.LoadGuardrails(src, guardrails.Options{})
	if err != nil {
		fail("%v", err)
	}
	exit := 0
	for _, m := range mons {
		held := m.Evaluate(0)
		verdict := "HOLDS"
		if !held {
			verdict = "VIOLATED"
			exit = 1
		}
		fmt.Printf("guardrail %-24s %s (%d VM steps)\n", m.Name(), verdict, m.Stats().VMSteps)
	}
	if log := sys.Runtime.Log.Recent(10); len(log) > 0 {
		fmt.Println("\nreported violations:")
		for _, v := range log {
			fmt.Println(" ", v)
		}
	}
	if snap := sys.Store.Snapshot(); len(snap) > 0 {
		fmt.Println("\nfeature store after evaluation:")
		fmt.Print(indent(sys.Store.Dump()))
	}
	t := sink.Snapshot()
	fmt.Printf("\ntelemetry: %d evals, %d violations, %d actions fired, %d VM steps, %d store loads, %d store saves\n",
		t.Counters["evals_total"], t.Counters["violations_total"], t.Counters["actions_fired_total"],
		t.Counters["vm_steps_total"], t.Counters["featurestore_loads_total"], t.Counters["featurestore_saves_total"])
	if *serveAddr != "" {
		srv, err := sys.ServeOps(*serveAddr)
		if err != nil {
			fail("serve: %v", err)
		}
		fmt.Fprintf(os.Stderr, "serving ops endpoint on http://%s (/metrics /snapshot.json /flight /why /healthz); ^C to stop\n", srv.Addr())
		select {} // serve until interrupted
	}
	os.Exit(exit)
}

// rawEnv executes a bare program against a feature store: cells resolve
// by symbol, helpers run math builtins, and action dispatches are
// counted.
type rawEnv struct {
	store   *featurestore.Store
	cells   []featurestore.ID
	actions int
	reports int
}

func (e *rawEnv) LoadCell(i int32) float64     { return e.store.LoadID(e.cells[i]) }
func (e *rawEnv) StoreCell(i int32, v float64) { e.store.SaveID(e.cells[i], v) }
func (e *rawEnv) Helper(h vm.HelperID, args *[5]float64) (float64, error) {
	switch h {
	case vm.HelperNow:
		return 0, nil
	case vm.HelperSqrt:
		if args[0] < 0 {
			return 0, nil
		}
		return math.Sqrt(args[0]), nil
	case vm.HelperLog2:
		if args[0] <= 0 {
			return 0, nil
		}
		return math.Log2(args[0]), nil
	case vm.HelperReport:
		e.reports++
	case vm.HelperAction:
		e.actions++
	}
	return 0, nil
}

// runRaw evaluates a monitor image or assembly file once. Decoded
// images carry no trusted proof (Program.Meta is not serialized), but a
// certified image's proof is restored by vm.CheckCertificate in one
// linear pass; images without a certificate — and assembly — are
// re-verified through the full abstract interpreter before any
// instruction runs. maxSteps > 0 additionally rejects programs whose
// certified worst-case step bound exceeds the budget.
func runRaw(imagePath, asmPath string, maxSteps int, sets setFlags) {
	var p *vm.Program
	switch {
	case imagePath != "":
		f, err := os.Open(imagePath)
		if err != nil {
			fail("%v", err)
		}
		defer f.Close()
		if p, err = vm.Decode(f); err != nil {
			fail("%v", err)
		}
	default:
		data, err := os.ReadFile(asmPath)
		if err != nil {
			fail("%v", err)
		}
		if p, err = vm.Assemble(string(data)); err != nil {
			fail("%v", err)
		}
	}
	proof := "re-verified"
	if p.Cert != nil && vm.CheckCertificate(p, vm.NumBuiltinHelpers) == nil {
		proof = "certificate checked"
		if maxSteps > 0 && p.Meta.MaxSteps > maxSteps {
			fail("program rejected: certified worst-case step count %d exceeds the budget of %d steps",
				p.Meta.MaxSteps, maxSteps)
		}
	} else if maxSteps > 0 {
		if err := vm.VerifySteps(p, vm.NumBuiltinHelpers, maxSteps); err != nil {
			fail("program rejected by verifier: %v", err)
		}
	} else if err := vm.Verify(p, vm.NumBuiltinHelpers); err != nil {
		fail("program rejected by verifier: %v", err)
	}
	store := featurestore.New()
	for _, kv := range sets {
		parts := strings.SplitN(kv, "=", 2)
		if len(parts) != 2 {
			fail("bad -set %q (want key=value)", kv)
		}
		v, err := strconv.ParseFloat(parts[1], 64)
		if err != nil {
			fail("bad -set value %q: %v", parts[1], err)
		}
		store.Save(parts[0], v)
	}
	env := &rawEnv{store: store, cells: make([]featurestore.ID, len(p.Symbols))}
	for i, sym := range p.Symbols {
		env.cells[i] = store.Intern(sym)
	}
	var m vm.Machine
	out, err := m.Run(p, env, 0)
	if err != nil {
		fail("%v", err)
	}
	verdict := "HOLDS"
	exit := 0
	if out == 0 {
		verdict = "VIOLATED"
		exit = 1
	}
	fmt.Printf("program %-24s %s (%d VM steps, %d report(s), %d action dispatch(es); proof: %s)\n",
		p.Name, verdict, m.Steps, env.reports, env.actions, proof)
	fmt.Println("\nfeature store after evaluation:")
	fmt.Print(indent(store.Dump()))
	os.Exit(exit)
}

func indent(s string) string {
	lines := strings.Split(strings.TrimRight(s, "\n"), "\n")
	return "  " + strings.Join(lines, "\n  ") + "\n"
}

func fail(format string, args ...any) {
	fmt.Fprintf(os.Stderr, format+"\n", args...)
	os.Exit(2)
}
