// Command linnos-demo reproduces the paper's Figure 2 end to end:
// train a LinnOS-style I/O latency classifier on a calm flash workload,
// deploy it with and without the Listing 2 false-submit guardrail,
// shift the workload write-heavy mid-run, and print the latency
// moving-average series for both systems plus the guardrail trigger
// point.
//
// Usage:
//
//	linnos-demo [-seed N] [-calm SECONDS] [-shift SECONDS] [-tsv]
package main

import (
	"flag"
	"fmt"
	"os"

	"guardrails/internal/experiments"
)

func main() {
	seed := flag.Int64("seed", 1, "experiment seed")
	calm := flag.Int("calm", 20, "calm phase duration (seconds)")
	shift := flag.Int("shift", 40, "shifted phase duration (seconds)")
	tsv := flag.Bool("tsv", false, "emit only the tab-separated series (for plotting)")
	flag.Parse()

	cfg := experiments.DefaultFig2Config(*seed)
	cfg.CalmSeconds = *calm
	cfg.ShiftSeconds = *shift

	fmt.Fprintln(os.Stderr, "training classifier and running both systems (takes a few seconds)...")
	res, err := experiments.RunFig2(cfg)
	if err != nil {
		fmt.Fprintln(os.Stderr, "error:", err)
		os.Exit(1)
	}
	if *tsv {
		fmt.Println("time_s\tlinnos_us\tlinnos_w_guardrails_us")
		for _, p := range res.Series {
			fmt.Printf("%.2f\t%.1f\t%.1f\n", p.TimeS, p.UnguardedUS, p.GuardedUS)
		}
		return
	}
	fmt.Print(res.Render())
}
