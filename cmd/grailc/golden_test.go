package main

import (
	"flag"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

var update = flag.Bool("update", false, "rewrite golden files")

// TestListing2PassDumpGolden pins the complete -S output for the paper's
// Listing 2: the IR after lowering and after every -O1 pass, then the
// annotated disassembly. Any change to the pass pipeline's behavior on
// the flagship example shows up as a diff here.
func TestListing2PassDumpGolden(t *testing.T) {
	var sb strings.Builder
	if err := processOne(&sb, "t.grail", testSpec, options{asm: true, level: 1}); err != nil {
		t.Fatal(err)
	}
	got := sb.String()

	path := filepath.Join("testdata", "listing2_dump.golden")
	if *update {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("%v (run with -update to regenerate)", err)
	}
	if got != string(want) {
		t.Errorf("-S dump drifted from golden file (run with -update to regenerate)\n--- got ---\n%s\n--- want ---\n%s", got, want)
	}

	// Sanity: the dump names every pipeline stage and ends optimized.
	for _, stage := range []string{
		"; after lower", "; after constfold", "; after algebra", "; after cse",
		"; after copyprop", "; after immsel", "; after dce",
		"; -O1: 9 insns before optimization",
		"jgti",
	} {
		if !strings.Contains(got, stage) {
			t.Errorf("-S dump missing %q", stage)
		}
	}
}
