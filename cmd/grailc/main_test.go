package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"guardrails/internal/vm"
)

const testSpec = `
guardrail low-false-submit {
    trigger: { TIMER(start_time, 1e9) },
    rule: { LOAD(false_submit_rate) <= 0.05 },
    action: { SAVE(ml_enabled, false) }
}`

func TestProcessOneSummary(t *testing.T) {
	var sb strings.Builder
	if err := processOne(&sb, "t.grail", testSpec, options{}); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{"low-false-submit", "1 trigger(s)", "1 rule(s)", "1 action(s)"} {
		if !strings.Contains(out, want) {
			t.Errorf("summary missing %q:\n%s", want, out)
		}
	}
}

func TestProcessOneDisassembly(t *testing.T) {
	var sb strings.Builder
	if err := processOne(&sb, "t.grail", testSpec, options{asm: true}); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"load", "[false_submit_rate]", "exit"} {
		if !strings.Contains(sb.String(), want) {
			t.Errorf("asm missing %q:\n%s", want, sb.String())
		}
	}
}

func TestProcessOneJSON(t *testing.T) {
	var sb strings.Builder
	if err := processOne(&sb, "t.grail", testSpec, options{jsonOut: true}); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), `"Symbols"`) {
		t.Errorf("json output wrong:\n%s", sb.String())
	}
}

func TestProcessOneCheckOnly(t *testing.T) {
	var sb strings.Builder
	if err := processOne(&sb, "t.grail", testSpec, options{checkOnly: true}); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "1 guardrail(s) OK") {
		t.Errorf("check-only output wrong: %s", sb.String())
	}
}

// TestProcessOneInterfere covers -interfere: a clean single-guardrail
// file passes, and a file whose two guardrails SAVE contradictory
// values to one key on the same hook site fails with GI001.
func TestProcessOneInterfere(t *testing.T) {
	var sb strings.Builder
	if err := processOne(&sb, "t.grail", testSpec, options{interfere: true, level: 1}); err != nil {
		t.Fatalf("clean spec failed -interfere: %v\n%s", err, sb.String())
	}
	if !strings.Contains(sb.String(), "interfere: no findings") {
		t.Errorf("missing interfere summary:\n%s", sb.String())
	}

	const conflicting = `
guardrail ml-off {
    trigger: { FUNCTION(io_submit) },
    rule: { LOAD(err_rate) <= 0.01 },
    action: { SAVE(ml_enabled, 0) }
}
guardrail ml-on {
    trigger: { FUNCTION(io_submit) },
    rule: { LOAD(lat_p99) <= 5e6 },
    action: { SAVE(ml_enabled, 1) }
}`
	sb.Reset()
	err := processOne(&sb, "t.grail", conflicting, options{interfere: true, level: 1})
	if err == nil {
		t.Fatal("-interfere accepted a conflicting deployment")
	}
	if !strings.Contains(sb.String(), "GI001") {
		t.Errorf("missing GI001 diagnostic:\n%s", sb.String())
	}
}

func TestProcessOneErrors(t *testing.T) {
	var sb strings.Builder
	if err := processOne(&sb, "t.grail", "guardrail g { rule: { 5 } }", options{}); err == nil {
		t.Error("invalid spec accepted")
	}
	if err := processOne(&sb, "t.grail", "not a spec", options{}); err == nil {
		t.Error("garbage accepted")
	}
}

func TestProcessOneImageOutput(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "monitor.img")
	var sb strings.Builder
	if err := processOne(&sb, "t.grail", testSpec, options{imageOut: path}); err != nil {
		t.Fatal(err)
	}
	f, err := os.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	p, err := vm.Decode(f)
	if err != nil {
		t.Fatal(err)
	}
	if p.Name != "low-false-submit" {
		t.Errorf("decoded name = %q", p.Name)
	}
	if err := vm.Verify(p, vm.NumBuiltinHelpers); err != nil {
		t.Errorf("image fails verification: %v", err)
	}
}

func TestProcessOneImageMultiple(t *testing.T) {
	dir := t.TempDir()
	base := filepath.Join(dir, "out")
	two := testSpec + `
guardrail second {
    trigger: { TIMER(0, 1e9) },
    rule: { LOAD(y) < 1 },
    action: { REPORT() }
}`
	var sb strings.Builder
	if err := processOne(&sb, "t.grail", two, options{imageOut: base}); err != nil {
		t.Fatal(err)
	}
	for _, name := range []string{"out.low-false-submit.img", "out.second.img"} {
		if _, err := os.Stat(filepath.Join(dir, name)); err != nil {
			t.Errorf("missing image %s: %v", name, err)
		}
	}
}
