package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// TestVetGoldenDiagnostics pins the complete -vet output for a spec
// built to trip every interesting linter check: always-true and
// always-false rules, contradictory per-key intervals, a tautological
// comparison, a constant-zero divisor, a duplicate rule, a SAVE/LOAD
// feedback loop, and an unread SAVEd key. Diagnostic codes, ordering,
// positions, and wording are all covered by the golden file.
func TestVetGoldenDiagnostics(t *testing.T) {
	src, err := os.ReadFile(filepath.Join("testdata", "vet_diags.grail"))
	if err != nil {
		t.Fatal(err)
	}
	var sb strings.Builder
	perr := processOne(&sb, "vet_diags.grail", string(src), options{vet: true, level: 1})
	if perr == nil {
		t.Fatal("vet accepted a spec with warning diagnostics")
	}
	got := sb.String()

	path := filepath.Join("testdata", "vet_diags.golden")
	if *update {
		if err := os.WriteFile(path, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("%v (run with -update to regenerate)", err)
	}
	if got != string(want) {
		t.Errorf("-vet diagnostics drifted from golden file (run with -update to regenerate)\n--- got ---\n%s\n--- want ---\n%s", got, want)
	}

	// Sanity independent of the golden file: every expected code fires
	// and each diagnostic carries a source position.
	for _, code := range []string{
		"GV001", "GV002", "GV003", "GV004", "GV005", "GV006", "GV007", "GV008", "GV009",
	} {
		if !strings.Contains(got, code) {
			t.Errorf("-vet output missing %s", code)
		}
	}
}

// TestVetRangeGolden pins the -vet output for the declared-range check
// (GV010): a threshold the declared feature range always satisfies, a
// threshold it can never satisfy, and a third guardrail whose threshold
// cuts the range properly and stays silent.
func TestVetRangeGolden(t *testing.T) {
	src, err := os.ReadFile(filepath.Join("testdata", "vet_range.grail"))
	if err != nil {
		t.Fatal(err)
	}
	var sb strings.Builder
	perr := processOne(&sb, "vet_range.grail", string(src), options{vet: true, level: 1})
	if perr == nil {
		t.Fatal("vet accepted out-of-range thresholds")
	}
	got := sb.String()

	path := filepath.Join("testdata", "vet_range.golden")
	if *update {
		if err := os.WriteFile(path, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("%v (run with -update to regenerate)", err)
	}
	if got != string(want) {
		t.Errorf("-vet range diagnostics drifted from golden file (run with -update to regenerate)\n--- got ---\n%s\n--- want ---\n%s", got, want)
	}
	if strings.Contains(got, "ok-watch") {
		t.Errorf("GV010 flagged a threshold inside the declared range:\n%s", got)
	}
}

// TestVetCleanSpec runs the linter over the paper's Listing 2: it must
// produce no warnings (the SAVEd ml_enabled control knob is Info-level
// by design — the instrumented policy reads it, not the spec).
func TestVetCleanSpec(t *testing.T) {
	src, err := os.ReadFile(filepath.Join("testdata", "listing2.grail"))
	if err != nil {
		t.Fatal(err)
	}
	var sb strings.Builder
	if err := processOne(&sb, "listing2.grail", string(src), options{vet: true, level: 1}); err != nil {
		t.Fatalf("clean spec failed vet: %v\n%s", err, sb.String())
	}
	if !strings.Contains(sb.String(), "vet:") {
		t.Errorf("missing vet summary line:\n%s", sb.String())
	}
}

// TestVetWitnessGolden pins the -vet -witness output: the GV003
// contradiction on a compilable guardrail must come back CONFIRMED with
// a concrete input and the replayed trace, while the GV002 on a
// guardrail that fails verification (constant-zero divisor) must be
// downgraded to PLAUSIBLE — the static finding is never dropped.
func TestVetWitnessGolden(t *testing.T) {
	src, err := os.ReadFile(filepath.Join("testdata", "vet_witness.grail"))
	if err != nil {
		t.Fatal(err)
	}
	var sb strings.Builder
	perr := processOne(&sb, "vet_witness.grail", string(src), options{vet: true, witness: true, checkOnly: true, level: 1})
	if perr == nil {
		t.Fatal("vet accepted a spec with warning diagnostics")
	}
	got := sb.String()

	path := filepath.Join("testdata", "vet_witness.golden")
	if *update {
		if err := os.WriteFile(path, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("%v (run with -update to regenerate)", err)
	}
	if got != string(want) {
		t.Errorf("-vet -witness diagnostics drifted from golden file (run with -update to regenerate)\n--- got ---\n%s\n--- want ---\n%s", got, want)
	}

	if !strings.Contains(got, "[GV003]") || !strings.Contains(got, "CONFIRMED: inputs {qdepth=") {
		t.Errorf("GV003 not CONFIRMED with a concrete input:\n%s", got)
	}
	if !strings.Contains(got, "rule conjunction evaluates to 0 (violated) on the real VM") {
		t.Errorf("confirmed witness missing the replay narration:\n%s", got)
	}
	if !strings.Contains(got, "[GV002]") || !strings.Contains(got, "PLAUSIBLE: no witness within search bounds") {
		t.Errorf("GV002 on the unverifiable guardrail not downgraded to PLAUSIBLE:\n%s", got)
	}
}

// TestVetWitnessOffByDefault: without -witness no status annotations
// appear, so existing diagnostics output is unchanged.
func TestVetWitnessOffByDefault(t *testing.T) {
	src, err := os.ReadFile(filepath.Join("testdata", "vet_witness.grail"))
	if err != nil {
		t.Fatal(err)
	}
	var sb strings.Builder
	_ = processOne(&sb, "vet_witness.grail", string(src), options{vet: true, checkOnly: true, level: 1})
	if strings.Contains(sb.String(), "CONFIRMED") || strings.Contains(sb.String(), "PLAUSIBLE") {
		t.Errorf("witness annotations appeared without -witness:\n%s", sb.String())
	}
}

// TestVetAggregatesFlag: -aggregates wires deployment aggregate
// registrations into the GV011 check.
func TestVetAggregatesFlag(t *testing.T) {
	src := `guardrail agg-watch {
    trigger: { TIMER(0, 1e9) },
    rule: { LOAD(err_rate_global) <= 0.5 },
    action: { REPORT(1) }
}`
	var sb strings.Builder
	if err := processOne(&sb, "agg.grail", src, options{vet: true, checkOnly: true, level: 1, aggregates: "err_rate"}); err != nil {
		t.Fatalf("registered aggregate flagged: %v\n%s", err, sb.String())
	}
	sb.Reset()
	if err := processOne(&sb, "agg.grail", src, options{vet: true, checkOnly: true, level: 1, aggregates: "qdepth"}); err == nil {
		t.Fatalf("unregistered *_global LOAD passed vet:\n%s", sb.String())
	}
	if !strings.Contains(sb.String(), "[GV011]") {
		t.Errorf("missing GV011 diagnostic:\n%s", sb.String())
	}
	sb.Reset()
	if err := processOne(&sb, "agg.grail", src, options{vet: true, checkOnly: true, level: 1}); err != nil {
		t.Fatalf("GV011 fired without aggregate context: %v\n%s", err, sb.String())
	}
}
