// Command grailc is the guardrail compiler: it parses, checks, compiles,
// and verifies guardrail specification files, printing the compiled
// monitor programs.
//
// Usage:
//
//	grailc [-O0|-O1] [-S] [-json] [-check-only] [-vet] [-interfere] [-witness] [-check] [-o out.img] file.grail...
//	grailc -e 'guardrail g { ... }'
//
// With no flags it reports each guardrail's name, trigger count, and
// program size (plus the pre-optimization size at -O1). -S dumps the IR
// after lowering and after each optimization pass, then the annotated
// disassembly; -json the program as JSON; -o writes binary monitor
// images (one file per guardrail, named <out>.<guardrail>.img when
// multiple); -check-only stops after semantic checking; -vet lints the
// checked specs (package internal/spec/vet) and fails on any
// warning-severity diagnostic; -interfere treats each file as one
// deployment and runs the whole-deployment interference analysis
// (package internal/spec/interfere, GI001… diagnostics — cross-file
// deployments use cmd/grailcheck), failing on warnings; -witness
// augments -vet, -interfere, and -check findings with bounded
// counterexample synthesis (CONFIRMED with a replayable concrete
// input, or PLAUSIBLE when none exists within bounds), and
// -witness-budget caps the assignments tried per finding; -check runs
// the bounded temporal model checker over the file's "assert" property
// blocks, treating the file as one deployment (GM001… diagnostics,
// cross-file deployments use cmd/grailcheck -check), failing on
// refuted or inconclusive properties; -aggregates names the
// deployment's registered cross-shard aggregates so -vet can flag
// LOADs of unregistered *_global keys (GV011). -O1 (constant
// folding, algebraic simplification, CSE, copy propagation, immediate
// selection, DCE, and a bytecode peephole) is the default; -O0 compiles
// by straight lowering and codegen.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	"guardrails/internal/compile"
	"guardrails/internal/spec"
	"guardrails/internal/spec/interfere"
	"guardrails/internal/spec/modelcheck"
	"guardrails/internal/spec/vet"
	"guardrails/internal/vm"
)

func main() {
	asm := flag.Bool("S", false, "dump per-pass IR and program disassembly")
	jsonOut := flag.Bool("json", false, "emit compiled programs as JSON")
	checkOnly := flag.Bool("check-only", false, "parse and check only; do not compile")
	vetFlag := flag.Bool("vet", false, "lint specifications (GV001… diagnostics); warnings fail the build")
	interfereFlag := flag.Bool("interfere", false, "analyze each file as one deployment (GI001… diagnostics); warnings fail the build")
	witnessFlag := flag.Bool("witness", false, "with -vet/-interfere/-check: synthesize replayable counterexamples, annotating findings CONFIRMED or PLAUSIBLE")
	witnessBudget := flag.Int("witness-budget", 0, "max concrete assignments tried per finding during witness synthesis (0 = default)")
	checkFlag := flag.Bool("check", false, "model-check the file's assert property blocks (GM001… diagnostics); refuted or inconclusive properties fail the build")
	aggregatesFlag := flag.String("aggregates", "", "with -vet: comma-separated registered aggregate names; LOADs of unregistered *_global keys flag GV011")
	expr := flag.String("e", "", "compile specification text from the command line")
	imgOut := flag.String("o", "", "write binary monitor image(s) to this path")
	o0 := flag.Bool("O0", false, "disable optimization (straight lowering and codegen)")
	o1 := flag.Bool("O1", false, "full optimization (the default)")
	flag.Parse()

	if *o0 && *o1 {
		fail("grailc: -O0 and -O1 are mutually exclusive")
	}
	level := 1
	if *o0 {
		level = 0
	}

	sources := map[string]string{}
	if *expr != "" {
		sources["<command line>"] = *expr
	}
	for _, path := range flag.Args() {
		data, err := os.ReadFile(path)
		if err != nil {
			fail("%v", err)
		}
		sources[path] = string(data)
	}
	if len(sources) == 0 {
		fail("usage: grailc [-O0|-O1] [-S] [-json] [-check-only] file.grail... | grailc -e 'spec'")
	}

	exit := 0
	for name, src := range sources {
		if err := processOne(os.Stdout, name, src, options{
			asm: *asm, jsonOut: *jsonOut, checkOnly: *checkOnly, imageOut: *imgOut,
			level: level, vet: *vetFlag, interfere: *interfereFlag,
			witness: *witnessFlag, witnessBudget: *witnessBudget,
			check: *checkFlag, aggregates: *aggregatesFlag,
		}); err != nil {
			fmt.Fprintf(os.Stderr, "%s: %v\n", name, err)
			exit = 1
		}
	}
	os.Exit(exit)
}

type options struct {
	asm       bool
	jsonOut   bool
	checkOnly bool
	imageOut  string
	level     int
	vet       bool
	interfere bool
	// witness requests counterexample synthesis for -vet/-interfere/
	// -check findings with replayable claims.
	witness bool
	// witnessBudget caps the assignments tried per finding (0 =
	// each analysis' default).
	witnessBudget int
	// check runs the bounded temporal model checker over the file's
	// assert property blocks.
	check bool
	// aggregates is the -aggregates list ("" = unknown; GV011 off).
	aggregates string
}

func processOne(w io.Writer, name, src string, opt options) error {
	f, err := spec.Parse(src)
	if err != nil {
		return err
	}
	if err := spec.Check(f); err != nil {
		return err
	}
	if opt.vet {
		var cfg *vet.Config
		if opt.aggregates != "" {
			cfg = &vet.Config{Aggregates: splitList(opt.aggregates)}
		}
		ds := vet.FileConfig(f, cfg)
		if opt.witness {
			ds = vet.Witnesses(f, ds, opt.witnessBudget)
		}
		warns := 0
		for _, d := range ds {
			fmt.Fprintf(w, "%s:%s\n", name, d)
			if d.Severity == vet.Warn {
				warns++
			}
		}
		fmt.Fprintf(w, "%s: vet: %s\n", name, vet.Summary(ds))
		if warns > 0 {
			return fmt.Errorf("vet: %d warning(s)", warns)
		}
		if opt.checkOnly && !opt.interfere && !opt.check {
			return nil
		}
	}
	// Interference analysis and model checking need the compiled
	// programs' certificates, so -interfere/-check compile even under
	// -check-only.
	if opt.checkOnly && !opt.interfere && !opt.check {
		fmt.Fprintf(w, "%s: %d guardrail(s) OK\n", name, len(f.Guardrails))
		return nil
	}
	copts := compile.Options{Level: opt.level}
	if opt.asm {
		// -S shows the compiler's work: the IR after lowering and after
		// each pass, then the final annotated bytecode below.
		copts.Trace = w
	}
	compiled, err := compile.FileWith(f, copts)
	if err != nil {
		return err
	}
	if opt.interfere {
		report := interfere.Analyze(&interfere.Deployment{
			Monitors: compiled, Features: f.Features, Witness: opt.witness,
			WitnessBudget: opt.witnessBudget})
		for _, d := range report.Diagnostics {
			fmt.Fprintf(w, "%s:%s\n", name, d)
		}
		fmt.Fprintf(w, "%s: interfere: %s\n", name, report.Summary())
		if warns := report.Warnings(); warns > 0 {
			return fmt.Errorf("interfere: %d warning(s)", warns)
		}
	}
	if opt.check {
		rep := modelcheck.Check(&interfere.Deployment{
			Monitors: compiled, Features: f.Features,
		}, modelcheck.Config{
			Properties:    f.Properties,
			Witness:       opt.witness,
			WitnessBudget: opt.witnessBudget,
		})
		for _, d := range rep.Diagnostics {
			fmt.Fprintf(w, "%s:%s\n", name, d)
			for _, line := range d.Trace {
				fmt.Fprintf(w, "    %s\n", line)
			}
		}
		for _, p := range rep.Properties {
			line := fmt.Sprintf("%s: property %s: %s", name, p.Property, p.Status)
			if p.Reason != "" {
				line += " (" + p.Reason + ")"
			}
			fmt.Fprintln(w, line)
		}
		fmt.Fprintf(w, "%s: %s\n", name, rep.Summary())
		if !rep.Clean() {
			return fmt.Errorf("modelcheck: %d warning(s), %d propert%s not proved",
				rep.Warnings(), notProved(rep), plural(notProved(rep), "y", "ies"))
		}
	}
	if (opt.interfere || opt.check) && opt.checkOnly {
		return nil
	}
	for _, c := range compiled {
		if opt.imageOut != "" {
			path := opt.imageOut
			if len(compiled) > 1 {
				path = fmt.Sprintf("%s.%s.img", opt.imageOut, c.Name)
			}
			// Attach the verification certificate so the image carries its
			// proof: loaders restore the proven fast path with a single
			// CheckCertificate pass instead of a full re-analysis.
			if err := vm.Certify(c.Program, vm.NumBuiltinHelpers); err != nil {
				return fmt.Errorf("certify %s: %w", c.Name, err)
			}
			out, err := os.Create(path)
			if err != nil {
				return err
			}
			if err := c.Program.Encode(out); err != nil {
				out.Close()
				return err
			}
			if err := out.Close(); err != nil {
				return err
			}
			fmt.Fprintf(w, "%s: wrote %s (certified: max %d steps)\n", c.Name, path, c.Program.Meta.MaxSteps)
			continue
		}
		switch {
		case opt.jsonOut:
			enc := json.NewEncoder(w)
			enc.SetIndent("", "  ")
			if err := enc.Encode(c.Program); err != nil {
				return err
			}
		case opt.asm:
			fmt.Fprint(w, c.Program.Annotated())
			fmt.Fprintln(w)
		default:
			line := fmt.Sprintf("%s: guardrail %q: %d trigger(s), %d rule(s), %d action(s), %d insns, %d symbols",
				name, c.Name, len(c.Triggers), len(c.Source.Rules), len(c.Actions),
				len(c.Program.Code), len(c.Program.Symbols))
			if m := c.Program.Meta; m.OptLevel > 0 && m.PreOptInsns > m.PostOptInsns {
				line += fmt.Sprintf(" (-O%d: %d before optimization)", m.OptLevel, m.PreOptInsns)
			}
			fmt.Fprintln(w, line)
		}
	}
	return nil
}

// notProved counts a model-checking report's non-PROVED properties.
func notProved(rep *modelcheck.Report) int {
	n := 0
	for _, p := range rep.Properties {
		if p.Status != modelcheck.StatusProved {
			n++
		}
	}
	return n
}

func plural(n int, one, many string) string {
	if n == 1 {
		return one
	}
	return many
}

// splitList parses a comma-separated flag value, dropping empty items.
func splitList(s string) []string {
	var out []string
	for _, item := range strings.Split(s, ",") {
		if item = strings.TrimSpace(item); item != "" {
			out = append(out, item)
		}
	}
	return out
}

func fail(format string, args ...any) {
	fmt.Fprintf(os.Stderr, format+"\n", args...)
	os.Exit(2)
}
