package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// TestCheckCleanFile: -check proves the escalation ladder's assert
// blocks and succeeds.
func TestCheckCleanFile(t *testing.T) {
	src, err := os.ReadFile(filepath.Join("testdata", "check_clean.grail"))
	if err != nil {
		t.Fatal(err)
	}
	var sb strings.Builder
	if err := processOne(&sb, "t.grail", string(src), options{check: true, checkOnly: true, level: 1}); err != nil {
		t.Fatalf("clean -check failed: %v\n%s", err, sb.String())
	}
	out := sb.String()
	for _, want := range []string{"PROVED", "2 proved, 0 refuted"} {
		if !strings.Contains(out, want) {
			t.Errorf("-check output missing %q:\n%s", want, out)
		}
	}
	if strings.Contains(out, "insns") {
		t.Errorf("-check-only still printed compiled programs:\n%s", out)
	}
}

// TestCheckOscillatingFile: -check refutes the oscillating pair's
// property, prints the multi-step trace, and fails the build; -witness
// confirms on the real interpreter.
func TestCheckOscillatingFile(t *testing.T) {
	src, err := os.ReadFile(filepath.Join("testdata", "check_osc.grail"))
	if err != nil {
		t.Fatal(err)
	}
	var sb strings.Builder
	err = processOne(&sb, "t.grail", string(src), options{check: true, witness: true, checkOnly: true, level: 1})
	if err == nil {
		t.Fatalf("oscillating -check did not fail:\n%s", sb.String())
	}
	out := sb.String()
	for _, want := range []string{"[GM001]", "[GM003]", "REFUTED", "CONFIRMED", "step 1 [timer[osc-up]]"} {
		if !strings.Contains(out, want) {
			t.Errorf("-check output missing %q:\n%s", want, out)
		}
	}
	if !strings.Contains(err.Error(), "not proved") {
		t.Errorf("err = %v", err)
	}
}

// TestCheckWitnessBudgetPlumbed: the oscillation's witness is the very
// first candidate assignment (mode's store default 0), so even a
// one-trial budget must confirm it — pinning that the budget option
// flows through to the model checker without disabling synthesis.
func TestCheckWitnessBudgetPlumbed(t *testing.T) {
	src, err := os.ReadFile(filepath.Join("testdata", "check_osc.grail"))
	if err != nil {
		t.Fatal(err)
	}
	var sb strings.Builder
	err = processOne(&sb, "t.grail", string(src), options{check: true, witness: true, witnessBudget: 1, checkOnly: true, level: 1})
	if err == nil {
		t.Fatal("oscillating -check did not fail")
	}
	if !strings.Contains(sb.String(), "CONFIRMED") {
		t.Errorf("trivial witness not found at budget 1:\n%s", sb.String())
	}
}
