package main

import (
	"encoding/json"
	"io"
	"sort"

	"guardrails/internal/spec/interfere"
	"guardrails/internal/spec/modelcheck"
)

// SARIF 2.1.0 emission. The static-analysis results interchange format
// is what CI code-scanning uploads consume; grailcheck maps every
// diagnostic family onto it with the stable GV/GI/GM codes as rule
// ids, so gates and dashboards key on codes, never message text.

type sarifLog struct {
	Schema  string     `json:"$schema"`
	Version string     `json:"version"`
	Runs    []sarifRun `json:"runs"`
}

type sarifRun struct {
	Tool    sarifTool     `json:"tool"`
	Results []sarifResult `json:"results"`
}

type sarifTool struct {
	Driver sarifDriver `json:"driver"`
}

type sarifDriver struct {
	Name           string      `json:"name"`
	InformationURI string      `json:"informationUri,omitempty"`
	Rules          []sarifRule `json:"rules"`
}

type sarifRule struct {
	ID               string       `json:"id"`
	ShortDescription sarifMessage `json:"shortDescription"`
}

type sarifMessage struct {
	Text string `json:"text"`
}

type sarifResult struct {
	RuleID    string          `json:"ruleId"`
	Level     string          `json:"level"`
	Message   sarifMessage    `json:"message"`
	Locations []sarifLocation `json:"locations,omitempty"`
}

type sarifLocation struct {
	PhysicalLocation sarifPhysical `json:"physicalLocation"`
}

type sarifPhysical struct {
	ArtifactLocation sarifArtifact `json:"artifactLocation"`
	Region           *sarifRegion  `json:"region,omitempty"`
}

type sarifArtifact struct {
	URI string `json:"uri"`
}

type sarifRegion struct {
	StartLine   int `json:"startLine"`
	StartColumn int `json:"startColumn,omitempty"`
}

// ruleMeta maps every stable diagnostic code to its one-line rule
// description. Codes missing here (future additions) still emit, with
// the code itself as the description.
var ruleMeta = map[string]string{
	"GI001": "contradictory SAVEs of one key by co-firing monitors",
	"GI002": "conflicting policy REPLACEs by co-firing monitors",
	"GI003": "duplicate subject actions by co-firing monitors",
	"GI004": "SAVE→LOAD feedback cycle across monitors",
	"GI005": "hook site certified step budget exceeded",
	"GI006": "guardrail never fires (dead rule)",
	"GI007": "duplicate guardrail names across files",
	"GI008": "program fails verification under deployment-certified input ranges",
	"GM001": "safety property violated in a reachable deployment state",
	"GM002": "liveness property misses its step bound",
	"GM003": "non-convergent SAVE oscillation on a reachable cycle",
	"GM004": "property predicate undecidable in every reachable state",
	"GV001": "rule is always true: guards nothing",
	"GV002": "rule is always false: fires every evaluation",
	"GV003": "two rules cannot hold together",
	"GV011": "LOAD of a *_global key with no registered aggregate",
}

// writeSARIF renders the combined interference + temporal report as a
// SARIF 2.1.0 log. Output is deterministic: rules sorted by id,
// results in report order.
func writeSARIF(w io.Writer, rep *interfere.Report, temporal *modelcheck.Report, fileOf map[string]string) error {
	var diags []interfere.Diagnostic
	diags = append(diags, rep.Diagnostics...)
	if temporal != nil {
		diags = append(diags, temporal.Diagnostics...)
	}

	codes := map[string]bool{}
	for _, d := range diags {
		codes[d.Code] = true
	}
	ids := make([]string, 0, len(codes))
	for c := range codes {
		ids = append(ids, c)
	}
	sort.Strings(ids)
	rules := make([]sarifRule, 0, len(ids))
	for _, id := range ids {
		desc := ruleMeta[id]
		if desc == "" {
			desc = id
		}
		rules = append(rules, sarifRule{ID: id, ShortDescription: sarifMessage{Text: desc}})
	}

	results := make([]sarifResult, 0, len(diags))
	for _, d := range diags {
		level := "note"
		if d.Severity == interfere.Warn {
			level = "warning"
		}
		msg := d.Message
		if d.Status != "" {
			msg += " [" + string(d.Status) + "]"
		}
		r := sarifResult{
			RuleID:  d.Code,
			Level:   level,
			Message: sarifMessage{Text: msg},
		}
		if uri := fileOf[d.Guardrail]; uri != "" {
			var region *sarifRegion
			if d.Pos.Line > 0 {
				region = &sarifRegion{StartLine: d.Pos.Line, StartColumn: d.Pos.Col}
			}
			r.Locations = []sarifLocation{{
				PhysicalLocation: sarifPhysical{
					ArtifactLocation: sarifArtifact{URI: uri},
					Region:           region,
				},
			}}
		}
		results = append(results, r)
	}

	log := sarifLog{
		Schema:  "https://json.schemastore.org/sarif-2.1.0.json",
		Version: "2.1.0",
		Runs: []sarifRun{{
			Tool:    sarifTool{Driver: sarifDriver{Name: "grailcheck", Rules: rules}},
			Results: results,
		}},
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(log)
}
