package main

import (
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func readFile(t *testing.T, path string) string {
	t.Helper()
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	return string(data)
}

// TestTemporalCleanProves: the escalation ladder's declared properties
// (two assert blocks in the spec plus one manifest property) must all
// come back PROVED with certificates, exit 0.
func TestTemporalCleanProves(t *testing.T) {
	out, errb, code := runCheck(t, "-check", "-manifest", filepath.Join("testdata", "temporal_clean.json"))
	if code != 0 {
		t.Fatalf("clean temporal deployment exited %d\nstdout:\n%s\nstderr:\n%s", code, out, errb)
	}
	for _, want := range []string{
		"assert always (LOAD(quarantined) <= 1): PROVED",
		"assert eventually (LOAD(quarantined) == 1) within 2: PROVED",
		"assert eventually (LOAD(alert_level) == 1) within 1: PROVED",
		"3 proved, 0 refuted, 0 inconclusive",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("clean temporal output missing %q:\n%s", want, out)
		}
	}
}

// TestTemporalOscillationGolden pins the full -check -witness output
// for the seeded oscillating pair: GM001 with a CONFIRMED multi-step
// witness, GM003 with the confirmed cycle, the declared property
// REFUTED, exit 1.
func TestTemporalOscillationGolden(t *testing.T) {
	out, _, code := runCheck(t, "-check", "-witness", filepath.Join("testdata", "temporal_osc.grail"))
	if code != 1 {
		t.Fatalf("oscillating deployment exited %d, want 1\n%s", code, out)
	}
	compareGolden(t, filepath.Join("testdata", "temporal_osc.golden"), out)
	for _, want := range []string{
		"[GM001]", "[GM003]",
		"CONFIRMED: inputs",
		"steps 1..2 form a cycle",
		"REFUTED",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("oscillation output missing %q:\n%s", want, out)
		}
	}
}

// TestTemporalJSONArtifact: -json carries the temporal report beside
// the interference report.
func TestTemporalJSONArtifact(t *testing.T) {
	out, _, code := runCheck(t, "-check", "-json", "-warn", filepath.Join("testdata", "temporal_osc.grail"))
	if code != 0 {
		t.Fatalf("-warn exited %d\n%s", code, out)
	}
	var rep struct {
		Temporal *struct {
			Properties []struct {
				Status string `json:"status"`
			} `json:"properties"`
			Diagnostics []struct {
				Code string `json:"code"`
			} `json:"diagnostics"`
			States int `json:"states"`
		} `json:"temporal"`
	}
	if err := json.Unmarshal([]byte(out), &rep); err != nil {
		t.Fatalf("bad JSON: %v\n%s", err, out)
	}
	if rep.Temporal == nil {
		t.Fatal("JSON artifact missing temporal report")
	}
	if len(rep.Temporal.Properties) != 1 || rep.Temporal.Properties[0].Status != "REFUTED" {
		t.Errorf("temporal properties = %+v", rep.Temporal.Properties)
	}
	if rep.Temporal.States == 0 {
		t.Error("temporal report missing state count")
	}
}

// TestSARIFGolden pins the SARIF 2.1.0 artifact for the oscillating
// deployment: stable GM rule ids, warning-level results, resolvable
// locations.
func TestSARIFGolden(t *testing.T) {
	dir := t.TempDir()
	sarif := filepath.Join(dir, "out.sarif")
	_, _, code := runCheck(t, "-check", "-witness", "-warn", "-sarif", sarif, filepath.Join("testdata", "temporal_osc.grail"))
	if code != 0 {
		t.Fatalf("-warn -sarif exited %d", code)
	}
	got := readFile(t, sarif)
	compareGolden(t, filepath.Join("testdata", "temporal_osc.sarif.golden"), got)
	for _, want := range []string{`"version": "2.1.0"`, `"ruleId": "GM003"`, `"level": "warning"`, "temporal_osc.grail"} {
		if !strings.Contains(got, want) {
			t.Errorf("SARIF missing %q:\n%s", want, got)
		}
	}
}

// TestWitnessBudgetUpgrade: the deep-conflict pair's GI003 needs a
// specific joint assignment (both signals at 100, the last seed
// candidate) — a tiny budget exhausts before finding it (PLAUSIBLE),
// a full budget confirms it.
func TestWitnessBudgetUpgrade(t *testing.T) {
	path := filepath.Join("testdata", "deep_witness.grail")
	small, _, code := runCheck(t, "-witness", "-witness-budget", "8", path)
	if code != 1 {
		t.Fatalf("deep conflict exited %d, want 1\n%s", code, small)
	}
	if !strings.Contains(small, "PLAUSIBLE") || strings.Contains(small, "CONFIRMED") {
		t.Errorf("budget 8 should exhaust before the witness:\n%s", small)
	}
	big, _, _ := runCheck(t, "-witness", "-witness-budget", "64", path)
	if !strings.Contains(big, "CONFIRMED") {
		t.Errorf("budget 64 should confirm the witness:\n%s", big)
	}
}
