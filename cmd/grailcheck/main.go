// Command grailcheck is the whole-deployment interference checker: it
// takes the set of guardrail specification files that will be deployed
// together and reports cross-guardrail interference no per-file check
// can see — contradictory co-firing actions, SAVE→LOAD feedback cycles
// across monitors, hook sites whose aggregate certified worst-case cost
// exceeds their step budget, dead guardrails, and duplicate names —
// as stable GI-coded diagnostics (package internal/spec/interfere).
//
// Usage:
//
//	grailcheck [-budget N] [-shards N] [-warn] [-json] [-witness] [-check] file.grail...
//	grailcheck -manifest deploy.json
//
// A deployment manifest names the spec files and budgets in one place:
//
//	{
//	  "specs": ["latency.grail", "failover.grail"],
//	  "hook_budget": 200,
//	  "hook_budgets": {"io_uring_submit": 64},
//	  "shards": 4,
//	  "aggregates": ["err_rate"],
//	  "properties": ["always LOAD(mode) <= 1"],
//	  "shadow": ["candidate-monitor"]
//	}
//
// "aggregates", when present, lists the cross-shard aggregate names the
// deployment registers; every LOAD of a *_global key with no matching
// registration is then flagged GV011 (the cell is never written).
// -witness attempts bounded counterexample synthesis for co-firing
// findings (GI001–GI003): each is annotated CONFIRMED — with a concrete
// joint input whose replay through the real VM reproduces the
// interference, including both dispatch orders for SAVE conflicts — or
// downgraded to PLAUSIBLE when no witness exists within the search
// bounds (the sound static finding is kept either way). -witness-budget
// caps the concrete assignments tried per finding (0 = default).
//
// -check runs the bounded temporal model checker
// (internal/spec/modelcheck) over the whole deployment: declared
// properties — "assert always <pred>" / "assert eventually <pred>
// within K" blocks in the spec files plus the manifest's "properties"
// list — are PROVED (with an exploration certificate), REFUTED (with a
// GM-coded diagnostic carrying a multi-step abstract trace, upgraded to
// CONFIRMED by -witness when a concrete schedule replays), or
// INCONCLUSIVE (bounds hit). Non-convergent SAVE oscillations (GM003)
// are reported even without declared properties. "shadow" names
// monitors excluded from the temporal transition relation (deployed to
// observe, not act).
//
// -sarif writes the combined report as SARIF 2.1.0 to the given path
// ("-" = stdout), the CI code-scanning artifact format; rule ids are
// the stable GV/GI/GM codes.
//
// Spec paths in a manifest resolve relative to the manifest's
// directory. -budget sets the default per-hook-site certified step
// budget (0 = unlimited); the manifest's hook_budget, when present,
// takes precedence. Budgets declare one event loop's per-firing step
// capacity; shards (or -shards) declares the kernel pool width the
// deployment runs on, so the GI005 aggregate-budget check scales each
// site's effective budget by the shard count instead of silently
// assuming one loop. -json emits the full report (diagnostics plus the
// per-site worst-case load table) as JSON, the CI artifact format.
//
// Exit status: 0 when the deployment checks clean, 1 when the analysis
// finds warnings, 2 on usage or spec errors. With -warn, findings are
// reported but warnings do not fail the check (exit 0) — the
// counterpart of loading with guardrails.DeployWarn, which quarantines
// the implicated monitors instead of refusing the deployment.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"

	"guardrails/internal/compile"
	"guardrails/internal/spec"
	"guardrails/internal/spec/interfere"
	"guardrails/internal/spec/modelcheck"
	"guardrails/internal/spec/vet"
)

func main() {
	os.Exit(run(os.Stdout, os.Stderr, os.Args[1:]))
}

// manifest is the deployment manifest file format.
type manifest struct {
	Specs       []string       `json:"specs"`
	HookBudget  int            `json:"hook_budget"`
	HookBudgets map[string]int `json:"hook_budgets"`
	// Shards is the kernel pool width the deployment targets (0 or 1 =
	// single loop); GI005 budgets scale with it.
	Shards int `json:"shards"`
	// Aggregates lists the cross-shard aggregate names the deployment
	// registers (featurestore.RegisterAggregate). When present (even
	// empty), every LOAD of a *_global key with no matching registration
	// is flagged GV011: the cell is never written, so it reads 0 forever.
	Aggregates []string `json:"aggregates"`
	// Properties declares temporal properties over the deployment
	// ("always <pred>", "eventually <pred> within K"), checked by the
	// bounded model checker alongside any assert blocks in the specs.
	Properties []string `json:"properties"`
	// Shadow names monitors excluded from the temporal transition
	// relation (deployed in shadow: they observe but do not act).
	Shadow []string `json:"shadow"`
}

// combinedReport is the -json artifact shape: the interference report
// plus, under -check, the temporal model-checking report.
type combinedReport struct {
	*interfere.Report
	Temporal *modelcheck.Report `json:"temporal,omitempty"`
}

func run(stdout, stderr io.Writer, args []string) int {
	fs := flag.NewFlagSet("grailcheck", flag.ContinueOnError)
	fs.SetOutput(stderr)
	budget := fs.Int("budget", 0, "default per-hook-site certified step budget (0 = unlimited)")
	shards := fs.Int("shards", 0, "kernel pool width the deployment runs on (scales hook budgets; 0 or 1 = single loop)")
	warnOnly := fs.Bool("warn", false, "report findings but do not fail on warnings")
	jsonOut := fs.Bool("json", false, "emit the full report as JSON")
	witness := fs.Bool("witness", false, "attempt counterexample synthesis: annotate co-firing findings CONFIRMED (with a replayable witness) or PLAUSIBLE")
	witnessBudget := fs.Int("witness-budget", 0, "max concrete assignments tried per finding during witness synthesis (0 = default)")
	check := fs.Bool("check", false, "run the bounded temporal model checker over declared properties (assert blocks and the manifest's properties list)")
	sarifPath := fs.String("sarif", "", "write the combined report as SARIF 2.1.0 to this path (\"-\" = stdout)")
	manifestPath := fs.String("manifest", "", "deployment manifest (JSON: specs, hook_budget, hook_budgets, shards, aggregates, properties, shadow)")
	if err := fs.Parse(args); err != nil {
		return 2
	}

	paths := fs.Args()
	dep := &interfere.Deployment{HookBudget: *budget, Shards: *shards, Witness: *witness, WitnessBudget: *witnessBudget}
	var aggregates []string
	var properties []*spec.PropertyDecl
	var shadow []string
	if *manifestPath != "" {
		data, err := os.ReadFile(*manifestPath)
		if err != nil {
			fmt.Fprintf(stderr, "grailcheck: %v\n", err)
			return 2
		}
		var m manifest
		if err := json.Unmarshal(data, &m); err != nil {
			fmt.Fprintf(stderr, "grailcheck: %s: %v\n", *manifestPath, err)
			return 2
		}
		dir := filepath.Dir(*manifestPath)
		for _, p := range m.Specs {
			if !filepath.IsAbs(p) {
				p = filepath.Join(dir, p)
			}
			paths = append(paths, p)
		}
		if m.HookBudget != 0 {
			dep.HookBudget = m.HookBudget
		}
		dep.HookBudgets = m.HookBudgets
		if m.Shards != 0 {
			dep.Shards = m.Shards
		}
		aggregates = m.Aggregates
		shadow = m.Shadow
		for _, src := range m.Properties {
			d, err := spec.ParseProperty(src)
			if err != nil {
				fmt.Fprintf(stderr, "grailcheck: %s: property %q: %v\n", *manifestPath, src, err)
				return 2
			}
			properties = append(properties, d)
		}
	}
	if len(paths) == 0 {
		fmt.Fprintln(stderr, "usage: grailcheck [-budget N] [-warn] [-json] [-witness] file.grail... | grailcheck -manifest deploy.json")
		return 2
	}

	// fileOf attributes each guardrail to its source file so multi-file
	// diagnostics print a resolvable position.
	fileOf := map[string]string{}
	type parsedFile struct {
		path string
		f    *spec.File
	}
	var parsed []parsedFile
	for _, path := range paths {
		data, err := os.ReadFile(path)
		if err != nil {
			fmt.Fprintf(stderr, "grailcheck: %v\n", err)
			return 2
		}
		f, err := spec.Parse(string(data))
		if err != nil {
			fmt.Fprintf(stderr, "grailcheck: %s: %v\n", path, err)
			return 2
		}
		if err := spec.Check(f); err != nil {
			fmt.Fprintf(stderr, "grailcheck: %s: %v\n", path, err)
			return 2
		}
		cs, err := compile.File(f)
		if err != nil {
			fmt.Fprintf(stderr, "grailcheck: %s: %v\n", path, err)
			return 2
		}
		for _, c := range cs {
			if _, dup := fileOf[c.Name]; !dup {
				fileOf[c.Name] = path
			}
		}
		parsed = append(parsed, parsedFile{path: path, f: f})
		dep.Monitors = append(dep.Monitors, cs...)
		dep.Features = append(dep.Features, f.Features...)
		properties = append(properties, f.Properties...)
	}

	report := interfere.Analyze(dep)

	// -check: bounded temporal model checking over the deployment's
	// declared properties (assert blocks + manifest list). GM003
	// oscillation detection runs even with no properties declared.
	var temporal *modelcheck.Report
	if *check {
		temporal = modelcheck.Check(dep, modelcheck.Config{
			Properties:    properties,
			Shadow:        shadow,
			Witness:       *witness,
			WitnessBudget: *witnessBudget,
		})
	}

	// A manifest that declares its registered aggregates (even an empty
	// set) opts into GV011: every LOAD of a *_global key with no matching
	// registration reads a cell the aggregation step never writes. The
	// findings are folded into the deployment report so exit status and
	// the JSON artifact treat them like any other deployment warning.
	if aggregates != nil {
		cfg := &vet.Config{Aggregates: aggregates}
		for _, pf := range parsed {
			for _, d := range vet.FileConfig(pf.f, cfg) {
				if d.Code != vet.CodeUnknownGlobal {
					continue
				}
				report.Diagnostics = append(report.Diagnostics, interfere.Diagnostic{
					Code: d.Code, Severity: interfere.Warn,
					Pos: d.Pos, Guardrail: d.Guardrail, Message: d.Message,
				})
			}
		}
	}

	if *sarifPath != "" {
		out := stdout
		var file *os.File
		if *sarifPath != "-" {
			var err error
			file, err = os.Create(*sarifPath)
			if err != nil {
				fmt.Fprintf(stderr, "grailcheck: %v\n", err)
				return 2
			}
			out = file
		}
		err := writeSARIF(out, report, temporal, fileOf)
		if file != nil {
			if cerr := file.Close(); err == nil {
				err = cerr
			}
		}
		if err != nil {
			fmt.Fprintf(stderr, "grailcheck: %v\n", err)
			return 2
		}
	}

	if *jsonOut {
		enc := json.NewEncoder(stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(combinedReport{Report: report, Temporal: temporal}); err != nil {
			fmt.Fprintf(stderr, "grailcheck: %v\n", err)
			return 2
		}
	} else {
		for _, d := range report.Diagnostics {
			fmt.Fprintf(stdout, "%s:%s\n", fileOf[d.Guardrail], d)
		}
		for _, s := range report.Sites {
			line := fmt.Sprintf("hook %s: worst case %d certified steps", s.Site, s.Total)
			switch {
			case s.Budget > 0 && s.Shards > 1:
				line += fmt.Sprintf(" (budget %d × %d shards = %d)", s.Budget, s.Shards, s.EffectiveBudget)
			case s.Budget > 0:
				line += fmt.Sprintf(" (budget %d)", s.Budget)
			}
			for _, l := range s.Monitors {
				line += fmt.Sprintf(" %s=%d", l.Guardrail, l.MaxSteps)
			}
			fmt.Fprintln(stdout, line)
		}
		if temporal != nil {
			for _, d := range temporal.Diagnostics {
				fmt.Fprintf(stdout, "%s:%s\n", fileOf[d.Guardrail], d)
				for _, line := range d.Trace {
					fmt.Fprintf(stdout, "    %s\n", line)
				}
			}
			for _, p := range temporal.Properties {
				line := fmt.Sprintf("property %s: %s", p.Property, p.Status)
				if p.Reason != "" {
					line += " (" + p.Reason + ")"
				}
				if p.Certificate != nil {
					line += fmt.Sprintf(" [%d states, depth %d]", p.Certificate.States, p.Certificate.Depth)
				}
				fmt.Fprintln(stdout, line)
			}
			fmt.Fprintf(stdout, "grailcheck: %s\n", temporal.Summary())
		}
		fmt.Fprintf(stdout, "grailcheck: %d guardrail(s): %s\n", len(dep.Monitors), report.Summary())
	}

	failed := report.Warnings() > 0
	if temporal != nil && !temporal.Clean() {
		failed = true
	}
	if failed && !*warnOnly {
		return 1
	}
	return 0
}
