package main

import (
	"encoding/json"
	"flag"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

var update = flag.Bool("update", false, "rewrite golden files")

func runCheck(t *testing.T, args ...string) (stdout, stderr string, code int) {
	t.Helper()
	var out, errb strings.Builder
	code = run(&out, &errb, args)
	return out.String(), errb.String(), code
}

// TestCleanDeployment: the P1-P6-style deployment must check clean —
// six guardrails, zero warnings, exit 0 — and the report must carry the
// hook-site load table within budget.
func TestCleanDeployment(t *testing.T) {
	out, errb, code := runCheck(t, "-manifest", filepath.Join("testdata", "clean.json"))
	if code != 0 {
		t.Fatalf("clean deployment exited %d\nstdout:\n%s\nstderr:\n%s", code, out, errb)
	}
	for _, want := range []string{"6 guardrail(s)", "no findings", "hook io_uring_submit", "(budget 64)"} {
		if !strings.Contains(out, want) {
			t.Errorf("clean output missing %q:\n%s", want, out)
		}
	}
}

// TestConflictingPairGolden pins the complete output for the seeded
// conflicting pair: contradictory SAVEs of ml_enabled (GI001) and a
// REPLACE ping-pong (GI002) on one hook site, exit 1.
func TestConflictingPairGolden(t *testing.T) {
	out, _, code := runCheck(t, "-manifest", filepath.Join("testdata", "conflict.json"))
	if code != 1 {
		t.Fatalf("conflicting deployment exited %d, want 1\n%s", code, out)
	}
	compareGolden(t, filepath.Join("testdata", "conflict.golden"), out)
	for _, want := range []string{"GI001", "GI002", "ml_enabled", "dispatch order"} {
		if !strings.Contains(out, want) {
			t.Errorf("conflict output missing %q:\n%s", want, out)
		}
	}
}

// TestFeedbackCycleGolden pins the output for the seeded SAVE→LOAD
// feedback cycle (GI004), exit 1.
func TestFeedbackCycleGolden(t *testing.T) {
	out, _, code := runCheck(t, filepath.Join("testdata", "feedback.grail"))
	if code != 1 {
		t.Fatalf("feedback deployment exited %d, want 1\n%s", code, out)
	}
	compareGolden(t, filepath.Join("testdata", "feedback.golden"), out)
	if !strings.Contains(out, "GI004") || !strings.Contains(out, "feedback cycle") {
		t.Errorf("feedback output missing GI004 finding:\n%s", out)
	}
}

// TestBudgetManifest: a per-site override below the pair's summed
// certified steps adds GI005 on top of the conflicts.
func TestBudgetManifest(t *testing.T) {
	out, _, code := runCheck(t, "-manifest", filepath.Join("testdata", "budget.json"))
	if code != 1 {
		t.Fatalf("over-budget deployment exited %d, want 1\n%s", code, out)
	}
	if !strings.Contains(out, "GI005") || !strings.Contains(out, "exceeds its budget of 4") {
		t.Errorf("budget output missing GI005 finding:\n%s", out)
	}
}

// TestShardedManifest: the same deployment that overflows the per-site
// budget on one loop (budget.json) checks within budget when the
// manifest declares the 4-shard pool it actually runs on — the GI005
// budget scales to budget × shards and the site table shows the
// arithmetic. The -shards flag is the manifest-less spelling.
func TestShardedManifest(t *testing.T) {
	out, _, code := runCheck(t, "-manifest", filepath.Join("testdata", "sharded.json"))
	if code != 1 {
		t.Fatalf("sharded deployment exited %d, want 1 (the GI001/GI002 conflicts remain)\n%s", code, out)
	}
	if strings.Contains(out, "GI005") {
		t.Errorf("budget within shard-scaled capacity still flagged:\n%s", out)
	}
	if !strings.Contains(out, "(budget 4 × 4 shards = 16)") {
		t.Errorf("site table does not show the scaled budget:\n%s", out)
	}

	flagged, _, _ := runCheck(t, "-manifest", filepath.Join("testdata", "budget.json"))
	if !strings.Contains(flagged, "GI005") {
		t.Fatalf("single-loop baseline lost its GI005 finding:\n%s", flagged)
	}
	cleared, _, _ := runCheck(t, "-shards", "4", "-manifest", filepath.Join("testdata", "budget.json"))
	if strings.Contains(cleared, "GI005") {
		t.Errorf("-shards flag did not scale the manifest budget:\n%s", cleared)
	}
}

// TestWarnFlag: -warn reports the findings but exits 0, mirroring the
// runtime's DeployWarn quarantine-instead-of-refuse policy.
func TestWarnFlag(t *testing.T) {
	out, _, code := runCheck(t, "-warn", "-manifest", filepath.Join("testdata", "conflict.json"))
	if code != 0 {
		t.Fatalf("-warn exited %d, want 0\n%s", code, out)
	}
	if !strings.Contains(out, "GI001") {
		t.Errorf("-warn suppressed the findings:\n%s", out)
	}
}

// TestJSONReport: -json emits a machine-readable report whose
// diagnostics carry the stable codes — the CI artifact format.
func TestJSONReport(t *testing.T) {
	out, _, code := runCheck(t, "-json", "-manifest", filepath.Join("testdata", "conflict.json"))
	if code != 1 {
		t.Fatalf("-json exited %d, want 1", code)
	}
	var report struct {
		Diagnostics []struct {
			Code     string `json:"code"`
			Severity string `json:"severity"`
		} `json:"diagnostics"`
		Sites []struct {
			Site  string `json:"site"`
			Total int    `json:"total_max_steps"`
		} `json:"sites"`
	}
	if err := json.Unmarshal([]byte(out), &report); err != nil {
		t.Fatalf("bad JSON report: %v\n%s", err, out)
	}
	codes := map[string]bool{}
	for _, d := range report.Diagnostics {
		codes[d.Code] = true
		if d.Severity != "warning" {
			t.Errorf("diagnostic %s severity = %q, want warning", d.Code, d.Severity)
		}
	}
	if !codes["GI001"] || !codes["GI002"] {
		t.Errorf("JSON report missing codes: %v", codes)
	}
	if len(report.Sites) != 1 || report.Sites[0].Site != "io_uring_submit" || report.Sites[0].Total != 16 {
		t.Errorf("JSON site table wrong: %+v", report.Sites)
	}
}

// TestDuplicateAcrossFiles: the same guardrail name in two files of one
// deployment is GI007 — per-file checking cannot see it.
func TestDuplicateAcrossFiles(t *testing.T) {
	dir := t.TempDir()
	src, err := os.ReadFile(filepath.Join("testdata", "clean_hook.grail"))
	if err != nil {
		t.Fatal(err)
	}
	a := filepath.Join(dir, "a.grail")
	b := filepath.Join(dir, "b.grail")
	for _, p := range []string{a, b} {
		if err := os.WriteFile(p, src, 0o644); err != nil {
			t.Fatal(err)
		}
	}
	out, _, code := runCheck(t, a, b)
	if code != 1 {
		t.Fatalf("duplicate deployment exited %d, want 1\n%s", code, out)
	}
	if !strings.Contains(out, "GI007") || !strings.Contains(out, "appears twice") {
		t.Errorf("missing GI007 finding:\n%s", out)
	}
}

// TestUsageErrors: no inputs, unreadable files, and broken specs or
// manifests exit 2.
func TestUsageErrors(t *testing.T) {
	cases := [][]string{
		{},
		{"testdata/does_not_exist.grail"},
		{"-manifest", "testdata/does_not_exist.json"},
	}
	for _, args := range cases {
		if _, _, code := runCheck(t, args...); code != 2 {
			t.Errorf("run(%q) exited %d, want 2", args, code)
		}
	}
	dir := t.TempDir()
	bad := filepath.Join(dir, "bad.grail")
	if err := os.WriteFile(bad, []byte("guardrail g { rule: { 5 } }"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, _, code := runCheck(t, bad); code != 2 {
		t.Errorf("broken spec exited %d, want 2", 2)
	}
}

func compareGolden(t *testing.T, path, got string) {
	t.Helper()
	if *update {
		if err := os.WriteFile(path, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("%v (run with -update to regenerate)", err)
	}
	if got != string(want) {
		t.Errorf("output drifted from golden file %s (run with -update to regenerate)\n--- got ---\n%s\n--- want ---\n%s", path, got, want)
	}
}

// TestWitnessGolden pins the -witness output for the two-pair witness
// deployment: the co-firing SAVE conflict must come back CONFIRMED with
// a concrete joint input and both order-swapped sequential replays
// (different final values), and the jointly-infeasible pair must be
// downgraded to PLAUSIBLE while keeping its warning.
func TestWitnessGolden(t *testing.T) {
	out, _, code := runCheck(t, "-witness", filepath.Join("testdata", "witness.grail"))
	if code != 1 {
		t.Fatalf("witness deployment exited %d, want 1\n%s", code, out)
	}
	compareGolden(t, filepath.Join("testdata", "witness.golden"), out)
	if !strings.Contains(out, "CONFIRMED: inputs {err_rate=1}") {
		t.Errorf("co-firing GI001 not CONFIRMED with the joint input:\n%s", out)
	}
	if !strings.Contains(out, "final serving_mode = 2") || !strings.Contains(out, "final serving_mode = 1") {
		t.Errorf("confirmed witness missing the order-swapped replays:\n%s", out)
	}
	if !strings.Contains(out, "PLAUSIBLE: no witness within search bounds") {
		t.Errorf("jointly-infeasible GI001 not downgraded to PLAUSIBLE:\n%s", out)
	}
	// The downgrade never drops the finding: both GI001 warnings remain.
	if strings.Count(out, "[GI001]") != 2 {
		t.Errorf("expected both GI001 findings to survive, got:\n%s", out)
	}
}

// TestWitnessJSONReport: witness annotations ride the JSON artifact as
// witness_status and a replayable witness object.
func TestWitnessJSONReport(t *testing.T) {
	out, _, code := runCheck(t, "-witness", "-json", filepath.Join("testdata", "witness.grail"))
	if code != 1 {
		t.Fatalf("-witness -json exited %d, want 1", code)
	}
	var report struct {
		Diagnostics []struct {
			Code    string `json:"code"`
			Status  string `json:"witness_status"`
			Witness *struct {
				Inputs map[string]float64 `json:"inputs"`
				Steps  []string           `json:"steps"`
			} `json:"witness"`
		} `json:"diagnostics"`
	}
	if err := json.Unmarshal([]byte(out), &report); err != nil {
		t.Fatalf("bad JSON report: %v\n%s", err, out)
	}
	var confirmed, plausible int
	for _, d := range report.Diagnostics {
		switch d.Status {
		case "CONFIRMED":
			confirmed++
			if d.Witness == nil || len(d.Witness.Inputs) == 0 || len(d.Witness.Steps) == 0 {
				t.Errorf("CONFIRMED %s carries no replayable witness", d.Code)
			}
		case "PLAUSIBLE":
			plausible++
			if d.Witness != nil {
				t.Errorf("PLAUSIBLE %s carries a witness", d.Code)
			}
		}
	}
	if confirmed == 0 || plausible == 0 {
		t.Errorf("want both CONFIRMED and PLAUSIBLE diagnostics, got %d/%d", confirmed, plausible)
	}
}

// TestAggregateManifests: a manifest that declares its registered
// aggregates opts into GV011 — the clean manifest registers err_rate
// and checks clean; the dirty one registers only qdepth, so the
// err_rate_global LOAD flags and fails the check.
func TestAggregateManifests(t *testing.T) {
	out, errb, code := runCheck(t, "-manifest", filepath.Join("testdata", "aggregates_clean.json"))
	if code != 0 {
		t.Fatalf("clean aggregate manifest exited %d\nstdout:\n%s\nstderr:\n%s", code, out, errb)
	}
	if strings.Contains(out, "GV011") {
		t.Errorf("registered aggregate flagged:\n%s", out)
	}

	out, _, code = runCheck(t, "-manifest", filepath.Join("testdata", "aggregates_dirty.json"))
	if code != 1 {
		t.Fatalf("dirty aggregate manifest exited %d, want 1\n%s", code, out)
	}
	compareGolden(t, filepath.Join("testdata", "aggregates_dirty.golden"), out)
	if !strings.Contains(out, "[GV011]") || !strings.Contains(out, "err_rate_global") {
		t.Errorf("missing GV011 finding:\n%s", out)
	}
}
