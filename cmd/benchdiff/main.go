// Command benchdiff compares two shard-throughput benchmark snapshots
// (BENCH_shards.json) and fails on regressions:
//
//	benchdiff [-tol 0.15] committed.json fresh.json
//	benchdiff -fig2 committed.json fresh.json
//
// With -fig2 both files are BENCH_fig2.json snapshots instead: every
// quantity in them is derived from simulated time and seeded
// randomness, so the two files must match exactly, field for field. CI
// uses this to prove that attaching the decision-provenance recorder
// (guardrail-bench -only fig2 -prov) perturbs nothing — the
// instrumented rerun must reproduce the committed snapshot bit for
// bit.
//
// The deterministic simulated quantities (events, hook fires, evals,
// simulated duration) must match exactly for every shard count the two
// snapshots share — a mismatch means the workload itself changed and
// the committed snapshot must be regenerated deliberately. The
// wall-clock fires/sec rate is machine-dependent: it is compared only
// when both snapshots were measured under the same GOMAXPROCS, and
// only downward — the fresh rate may beat the committed one freely but
// must not fall more than the tolerance below it (default 15%).
//
// Shard counts present in only one snapshot (a different core count
// swept a different NumCPU point) are reported but are not failures.
// CI regenerates the snapshot on every run and diffs it against the
// committed file, so a quiet throughput regression fails the build.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"

	"guardrails/internal/experiments"
)

func load(path string) (*experiments.BenchShards, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var b experiments.BenchShards
	if err := json.Unmarshal(data, &b); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	if len(b.Entries) == 0 {
		return nil, fmt.Errorf("%s: no entries", path)
	}
	return &b, nil
}

// compare returns the failures (empty = pass) and the informational
// notes from diffing fresh against committed.
func compare(committed, fresh *experiments.BenchShards, tol float64) (failures, notes []string) {
	old := map[int]experiments.ShardThroughputResult{}
	for _, e := range committed.Entries {
		old[e.Shards] = e
	}
	matched := 0
	for _, n := range fresh.Entries {
		o, ok := old[n.Shards]
		if !ok {
			notes = append(notes, fmt.Sprintf("shards=%d: only in fresh snapshot (different sweep), skipped", n.Shards))
			continue
		}
		matched++
		delete(old, n.Shards)
		if o.SimMS != n.SimMS || o.Events != n.Events || o.HookFires != n.HookFires || o.Evals != n.Evals {
			failures = append(failures, fmt.Sprintf(
				"shards=%d: deterministic quantities diverged: committed sim_ms=%g events=%d fires=%d evals=%d, fresh sim_ms=%g events=%d fires=%d evals=%d",
				n.Shards, o.SimMS, o.Events, o.HookFires, o.Evals, n.SimMS, n.Events, n.HookFires, n.Evals))
			continue
		}
		if committed.GOMAXPROCS != fresh.GOMAXPROCS {
			notes = append(notes, fmt.Sprintf("shards=%d: GOMAXPROCS %d vs %d, throughput not compared",
				n.Shards, committed.GOMAXPROCS, fresh.GOMAXPROCS))
			continue
		}
		floor := o.FiresPerSec * (1 - tol)
		switch {
		case n.FiresPerSec < floor:
			failures = append(failures, fmt.Sprintf(
				"shards=%d: throughput regression: %.0f fires/sec vs committed %.0f (floor %.0f at tol %.0f%%)",
				n.Shards, n.FiresPerSec, o.FiresPerSec, floor, tol*100))
		default:
			notes = append(notes, fmt.Sprintf("shards=%d: %.0f fires/sec vs committed %.0f, ok",
				n.Shards, n.FiresPerSec, o.FiresPerSec))
		}
	}
	for s := range old {
		notes = append(notes, fmt.Sprintf("shards=%d: only in committed snapshot (different sweep), skipped", s))
	}
	if matched == 0 {
		failures = append(failures, "no shard count is present in both snapshots; nothing was compared")
	}
	return failures, notes
}

// loadFig2 reads one BENCH_fig2.json snapshot.
func loadFig2(path string) (*experiments.BenchFig2, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var b experiments.BenchFig2
	if err := json.Unmarshal(data, &b); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	if len(b.Configs) == 0 {
		return nil, fmt.Errorf("%s: no configs", path)
	}
	return &b, nil
}

// compareFig2 exact-diffs two fig2 snapshots. Everything in a
// BENCH_fig2.json is deterministic, so any divergence is a failure.
func compareFig2(committed, fresh *experiments.BenchFig2) (failures []string) {
	check := func(name string, old, new any) {
		if old != new {
			failures = append(failures, fmt.Sprintf("%s: committed %v, fresh %v", name, old, new))
		}
	}
	check("seed", committed.Seed, fresh.Seed)
	check("shift_at_s", committed.ShiftAtS, fresh.ShiftAtS)
	check("guardrail_fired_at_s", committed.GuardrailFiredAtS, fresh.GuardrailFiredAtS)
	check("false_submit_rate_at_trigger", committed.FalseSubmitRate, fresh.FalseSubmitRate)
	check("calm_mean_us", committed.CalmUS, fresh.CalmUS)
	check("guarded_tail_us", committed.GuardedTailUS, fresh.GuardedTailUS)
	check("unguarded_tail_us", committed.UnguardedTailUS, fresh.UnguardedTailUS)
	check("len(configs)", len(committed.Configs), len(fresh.Configs))
	for i := 0; i < len(committed.Configs) && i < len(fresh.Configs); i++ {
		o, n := committed.Configs[i], fresh.Configs[i]
		check(fmt.Sprintf("configs[%d]", i), o, n)
	}
	return failures
}

func main() {
	tol := flag.Float64("tol", 0.15, "allowed fractional throughput drop before failing")
	fig2 := flag.Bool("fig2", false, "compare BENCH_fig2.json snapshots (exact, field-for-field)")
	flag.Parse()
	if flag.NArg() != 2 {
		fmt.Fprintln(os.Stderr, "usage: benchdiff [-tol 0.15] [-fig2] committed.json fresh.json")
		os.Exit(2)
	}
	if *fig2 {
		committed, err := loadFig2(flag.Arg(0))
		if err != nil {
			fmt.Fprintln(os.Stderr, "benchdiff:", err)
			os.Exit(2)
		}
		fresh, err := loadFig2(flag.Arg(1))
		if err != nil {
			fmt.Fprintln(os.Stderr, "benchdiff:", err)
			os.Exit(2)
		}
		failures := compareFig2(committed, fresh)
		for _, f := range failures {
			fmt.Println("FAIL:", f)
		}
		if len(failures) > 0 {
			os.Exit(1)
		}
		fmt.Println("benchdiff: fig2 snapshots identical")
		return
	}
	committed, err := load(flag.Arg(0))
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchdiff:", err)
		os.Exit(2)
	}
	fresh, err := load(flag.Arg(1))
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchdiff:", err)
		os.Exit(2)
	}
	failures, notes := compare(committed, fresh, *tol)
	for _, n := range notes {
		fmt.Println("note:", n)
	}
	for _, f := range failures {
		fmt.Println("FAIL:", f)
	}
	if len(failures) > 0 {
		os.Exit(1)
	}
	fmt.Printf("benchdiff: ok (%d note(s))\n", len(notes))
}
