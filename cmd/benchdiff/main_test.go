package main

import (
	"strings"
	"testing"

	"guardrails/internal/experiments"
)

func snap(gomaxprocs int, entries ...experiments.ShardThroughputResult) *experiments.BenchShards {
	return &experiments.BenchShards{GOMAXPROCS: gomaxprocs, Entries: entries}
}

func entry(shards int, fires uint64, rate float64) experiments.ShardThroughputResult {
	return experiments.ShardThroughputResult{
		Shards:      shards,
		SimMS:       200,
		Events:      int(shards) * 20000,
		HookFires:   fires,
		Evals:       fires,
		WallMS:      10,
		FiresPerSec: rate,
	}
}

func TestCompareIdenticalPasses(t *testing.T) {
	a := snap(4, entry(1, 160000, 6e6), entry(4, 640000, 1.8e7))
	fails, notes := compare(a, a, 0.15)
	if len(fails) != 0 {
		t.Fatalf("identical snapshots failed: %v", fails)
	}
	if len(notes) != 2 {
		t.Fatalf("want one ok-note per entry, got %v", notes)
	}
}

func TestCompareFlagsDeterministicDrift(t *testing.T) {
	old := snap(4, entry(4, 640000, 1.8e7))
	fresh := snap(4, entry(4, 640001, 1.8e7))
	fails, _ := compare(old, fresh, 0.15)
	if len(fails) != 1 || !strings.Contains(fails[0], "deterministic quantities diverged") {
		t.Fatalf("fires drift not flagged: %v", fails)
	}
}

func TestCompareThroughputRegressionOnly(t *testing.T) {
	old := snap(4, entry(4, 640000, 1e7))
	// 20% drop fails at 15% tolerance...
	fails, _ := compare(old, snap(4, entry(4, 640000, 0.8e7)), 0.15)
	if len(fails) != 1 || !strings.Contains(fails[0], "throughput regression") {
		t.Fatalf("20%% drop not flagged: %v", fails)
	}
	// ...a 10% drop passes...
	if fails, _ := compare(old, snap(4, entry(4, 640000, 0.9e7)), 0.15); len(fails) != 0 {
		t.Fatalf("10%% drop flagged: %v", fails)
	}
	// ...and a speedup always passes.
	if fails, _ := compare(old, snap(4, entry(4, 640000, 5e7)), 0.15); len(fails) != 0 {
		t.Fatalf("speedup flagged: %v", fails)
	}
}

func TestCompareSkipsThroughputAcrossCoreCounts(t *testing.T) {
	old := snap(1, entry(4, 640000, 6e6))
	fresh := snap(8, entry(4, 640000, 1e6)) // would be an 83% "drop"
	fails, notes := compare(old, fresh, 0.15)
	if len(fails) != 0 {
		t.Fatalf("cross-GOMAXPROCS rates compared: %v", fails)
	}
	found := false
	for _, n := range notes {
		if strings.Contains(n, "GOMAXPROCS") {
			found = true
		}
	}
	if !found {
		t.Fatalf("no GOMAXPROCS skip note: %v", notes)
	}
}

func TestCompareDisjointSweepsFail(t *testing.T) {
	old := snap(4, entry(1, 160000, 6e6))
	fresh := snap(4, entry(8, 1280000, 3e7))
	fails, notes := compare(old, fresh, 0.15)
	if len(fails) != 1 || !strings.Contains(fails[0], "nothing was compared") {
		t.Fatalf("disjoint sweeps passed: %v", fails)
	}
	if len(notes) != 2 {
		t.Fatalf("want both unmatched entries noted, got %v", notes)
	}
}
