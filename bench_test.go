package guardrails

// Benchmark harness: one macro-benchmark per reproduced table/figure
// (each iteration runs the full experiment and reports its headline
// numbers via b.ReportMetric) plus microbenchmarks for the monitor
// pipeline hot paths. Run with:
//
//	go test -bench=. -benchmem
//
// Macro benchmarks take seconds per iteration; use -benchtime=1x for a
// single replication of every experiment.

import (
	"testing"

	"guardrails/internal/compile"
	"guardrails/internal/experiments"
	"guardrails/internal/featurestore"
	"guardrails/internal/kernel"
	"guardrails/internal/linnos"
	"guardrails/internal/monitor"
	"guardrails/internal/nn"
	"guardrails/internal/storage"
	"guardrails/internal/vm"
)

// --- macro benchmarks: one per table/figure --------------------------

// BenchmarkFig2LinnOSGuardrail regenerates Figure 2.
func BenchmarkFig2LinnOSGuardrail(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, err := experiments.RunFig2(experiments.DefaultFig2Config(1))
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(r.GuardedTailUS, "guarded_tail_us")
		b.ReportMetric(r.UnguardedTailUS, "unguarded_tail_us")
		b.ReportMetric(float64(r.GuardrailFiredAt-r.ShiftAt)/float64(kernel.Second), "detect_s")
	}
}

// BenchmarkP1DriftDetection regenerates the P1 row of Figure 1.
func BenchmarkP1DriftDetection(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, err := experiments.RunP1Drift(1)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(r.ShiftedPSI, "peak_psi")
		b.ReportMetric(float64(r.DetectedAt-r.ShiftAt)/float64(kernel.Millisecond), "detect_ms")
	}
}

// BenchmarkP2Robustness regenerates the P2 row at noise sigma 0.3.
func BenchmarkP2Robustness(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := experiments.RunP2Robustness(1, []float64{0.3})
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(rows[0].LearnedCoV, "learned_cov")
		b.ReportMetric(rows[0].AIMDCoV, "aimd_cov")
		b.ReportMetric(rows[0].GuardedCoV, "guarded_cov")
	}
}

// BenchmarkP3OutOfBounds regenerates the P3 row.
func BenchmarkP3OutOfBounds(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, err := experiments.RunP3OutOfBounds(1)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(float64(r.UnguardedIllegal), "unguarded_illegal")
		b.ReportMetric(float64(r.GuardedIllegal), "guarded_illegal")
	}
}

// BenchmarkP4DecisionQuality regenerates the P4 row.
func BenchmarkP4DecisionQuality(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, err := experiments.RunP4Quality(1)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(r.CalmLearnedHit-r.CalmRandomHit, "calm_advantage")
		b.ReportMetric(r.ShiftLearnedHit-r.ShiftRandomHit, "shift_advantage")
	}
}

// BenchmarkP5Overhead regenerates the P5 row at the profitable and
// unprofitable inference costs.
func BenchmarkP5Overhead(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := experiments.RunP5Overhead(1, []kernel.Time{
			6 * kernel.Microsecond, 400 * kernel.Microsecond,
		})
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(rows[0].OverheadRatio, "cheap_ratio")
		b.ReportMetric(b2f(rows[1].MLFinal), "costly_ml_final")
	}
}

// BenchmarkP6Fairness regenerates the P6 row.
func BenchmarkP6Fairness(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, err := experiments.RunP6Fairness(1)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(float64(r.LearnedMaxWait)/float64(kernel.Millisecond), "learned_max_wait_ms")
		b.ReportMetric(float64(r.GuardedMaxWait)/float64(kernel.Millisecond), "guarded_max_wait_ms")
	}
}

// BenchmarkOscillation regenerates the §6 feedback-loop study.
func BenchmarkOscillation(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, err := experiments.RunOscillation(1)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(float64(r.TogglesNoHysteresis), "toggles_raw")
		b.ReportMetric(float64(r.TogglesWithHysteresis), "toggles_hysteresis")
	}
}

// BenchmarkTriggerSweep regenerates the §6 trigger-mechanism study.
func BenchmarkTriggerSweep(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := experiments.RunTriggerSweep(1)
		if err != nil {
			b.Fatal(err)
		}
		for _, r := range rows {
			if r.Mechanism == "dependency" {
				b.ReportMetric(float64(r.Detection)/float64(kernel.Millisecond), "dep_detect_ms")
			}
		}
	}
}

func b2f(v bool) float64 {
	if v {
		return 1
	}
	return 0
}

// --- microbenchmarks: monitor pipeline hot paths ----------------------

const benchSpec = `
guardrail low-false-submit {
    trigger: { TIMER(start_time, 1e9) },
    rule: { LOAD(false_submit_rate) <= 0.05 },
    action: { SAVE(ml_enabled, false) }
}`

// BenchmarkVMMonitor measures one Listing-2 monitor evaluation against a
// live feature store — the in-kernel hot path.
func BenchmarkVMMonitor(b *testing.B) {
	k := kernel.New()
	st := featurestore.New()
	rt := monitor.New(k, st)
	ms, err := rt.LoadSource(benchSpec, monitor.Options{})
	if err != nil {
		b.Fatal(err)
	}
	st.Save("false_submit_rate", 0.01)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ms[0].Evaluate(0)
	}
}

// BenchmarkVMMonitorViolated measures the violated path including the
// inlined SAVE action.
func BenchmarkVMMonitorViolated(b *testing.B) {
	k := kernel.New()
	st := featurestore.New()
	rt := monitor.New(k, st)
	ms, err := rt.LoadSource(benchSpec, monitor.Options{})
	if err != nil {
		b.Fatal(err)
	}
	st.Save("false_submit_rate", 0.9)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ms[0].Evaluate(0)
	}
}

// BenchmarkCompile measures spec-to-verified-program compilation.
func BenchmarkCompile(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := compile.Source(benchSpec); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkVerify measures the static verifier alone.
func BenchmarkVerify(b *testing.B) {
	cs, err := compile.Source(benchSpec)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := vm.Verify(cs[0].Program, vm.NumBuiltinHelpers); err != nil {
			b.Fatal(err)
		}
	}
}

// benchRunEnv is a minimal Env for benchmarking the raw interpreter
// loops without feature-store or helper overhead in the way.
type benchRunEnv struct{ cells [4]float64 }

func (e *benchRunEnv) LoadCell(i int32) float64                         { return e.cells[i] }
func (e *benchRunEnv) StoreCell(i int32, v float64)                     { e.cells[i] = v }
func (e *benchRunEnv) Helper(vm.HelperID, *[5]float64) (float64, error) { return 0, nil }

// BenchmarkRunProven vs BenchmarkRunGuarded isolate the payoff of
// verifier-proven trap-freedom: the same compiled Listing-2 program run
// on the interpreter's guard-free fast path (Meta carries the proof)
// and on the fully-guarded fallback path (Meta cleared, as for a
// decoded image).
func BenchmarkRunProven(b *testing.B) {
	cs, err := compile.Source(benchSpec)
	if err != nil {
		b.Fatal(err)
	}
	p := cs[0].Program
	if !p.Meta.TrapFree {
		b.Fatal("compiled program carries no proof")
	}
	var m vm.Machine
	env := &benchRunEnv{}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := m.Run(p, env, 0); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkRunGuarded(b *testing.B) {
	cs, err := compile.Source(benchSpec)
	if err != nil {
		b.Fatal(err)
	}
	p := *cs[0].Program
	p.Meta = vm.ProgramMeta{}
	var m vm.Machine
	env := &benchRunEnv{}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := m.Run(&p, env, 0); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFeatureStore measures the SAVE/LOAD fast path by interned ID.
func BenchmarkFeatureStore(b *testing.B) {
	st := featurestore.New()
	id := st.Intern("k")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		st.SaveID(id, float64(i))
		_ = st.LoadID(id)
	}
}

// BenchmarkNNInferenceFloat measures float inference of the LinnOS-size
// classifier.
func BenchmarkNNInferenceFloat(b *testing.B) {
	c := linnos.NewClassifier(1)
	in := make([]float64, linnos.NumFeatures)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.PredictSlow(in)
	}
}

// BenchmarkNNInferenceQuantized measures int16 fixed-point inference
// (the in-kernel deployment mode whose cost P5 accounts for).
func BenchmarkNNInferenceQuantized(b *testing.B) {
	c := linnos.NewClassifier(1)
	if err := c.EnableQuantized(); err != nil {
		b.Fatal(err)
	}
	in := make([]float64, linnos.NumFeatures)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.PredictSlow(in)
	}
}

// BenchmarkNNTraining measures one SGD epoch on a small batch.
func BenchmarkNNTraining(b *testing.B) {
	inputs := make([][]float64, 256)
	targets := make([][]float64, 256)
	for i := range inputs {
		inputs[i] = []float64{float64(i % 7), float64(i % 3)}
		targets[i] = []float64{float64(i % 2)}
	}
	net := nn.New(nn.Config{Layers: []int{2, 16, 1}, Hidden: nn.ReLU, Output: nn.Sigmoid, Loss: nn.BCE, Seed: 1})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := net.Train(inputs, targets, nn.TrainOpts{Epochs: 1, BatchSize: 32, LearningRate: 0.01}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSSDSubmit measures the analytical flash model's per-I/O cost.
func BenchmarkSSDSubmit(b *testing.B) {
	d, err := storage.NewDevice(storage.DefaultDeviceConfig("bench", 1))
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		d.Submit(kernel.Time(i)*100, uint64(i), i%8 == 0)
	}
}

// BenchmarkKernelHookFire measures an attached hook-site firing.
func BenchmarkKernelHookFire(b *testing.B) {
	k := kernel.New()
	var sink float64
	k.Attach("site", func(_ *kernel.Kernel, _ string, args []float64) { sink += args[0] })
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		k.Fire("site", 1)
	}
	_ = sink
}
