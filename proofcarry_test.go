package guardrails

// Integration tests for proof-carrying bytecode: a certified program's
// proof survives the Encode/Decode image round-trip, the monitor
// runtime's admission restores the proven fast path from the shipped
// certificate (visible in the proven/guarded telemetry split), and a
// tampered certificate falls back to guarded execution instead of
// being trusted.

import (
	"bytes"
	"strings"
	"testing"

	"guardrails/internal/vm"
)

const proofCarrySpec = `
guardrail proof-carry-watch {
    trigger: { TIMER(0, 1e8) },
    rule: { LOAD(err_rate) / 100.0 <= 0.25 },
    action: { SAVE(pc_tripped, 1), REPORT(LOAD(err_rate)) }
}`

// imageRoundTrip compiles the spec, certifies and serializes the
// program, and returns the decoded (untrusted) image.
func imageRoundTrip(t *testing.T) *vm.Program {
	t.Helper()
	cs, err := CompileSpec(proofCarrySpec)
	if err != nil {
		t.Fatal(err)
	}
	p := cs[0].Program
	if err := vm.Certify(p, vm.NumBuiltinHelpers); err != nil {
		t.Fatalf("certify: %v", err)
	}
	var img bytes.Buffer
	if err := p.Encode(&img); err != nil {
		t.Fatal(err)
	}
	q, err := vm.Decode(&img)
	if err != nil {
		t.Fatal(err)
	}
	if q.Meta.TrapFree {
		t.Fatal("decoded image trusted before its certificate was checked")
	}
	if q.Cert == nil {
		t.Fatal("certificate did not survive the image round-trip")
	}
	return q
}

// TestDecodedCertifiedImageLoadsProven: a decoded image whose
// certificate checks lands on the proven fast path at load time — the
// same Prometheus counter split the compiled-path test pins down.
func TestDecodedCertifiedImageLoadsProven(t *testing.T) {
	q := imageRoundTrip(t)

	cs, err := CompileSpec(proofCarrySpec)
	if err != nil {
		t.Fatal(err)
	}
	fromImage := *cs[0]
	q.Name = "decoded-certified"
	fromImage.Program = q
	fromImage.Name = q.Name

	sys := NewSystem()
	sink := sys.AttachTelemetry(64)
	if _, err := sys.Runtime.Load(&fromImage, Options{}); err != nil {
		t.Fatal(err)
	}
	m := sys.Runtime.Monitor("decoded-certified")
	if m == nil {
		t.Fatal("monitor not loaded")
	}
	if !q.Meta.TrapFree || q.Meta.MaxSteps <= 0 {
		t.Fatalf("admission did not restore the proof: %+v", q.Meta)
	}

	// The proven monitor must behave identically to a compiled one.
	sys.Store.Save("err_rate", 30)
	sys.Store.Save("req_rate", 100)
	if held := m.Evaluate(0); held {
		t.Error("30% error rate should violate the 25% ceiling")
	}
	if v := sys.Store.Load("pc_tripped"); v != 1 {
		t.Errorf("pc_tripped = %v, want 1", v)
	}
	sys.Store.Save("err_rate", 1)
	if held := m.Evaluate(0); !held {
		t.Error("1% error rate should hold")
	}

	var sb strings.Builder
	if err := sink.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	if out := sb.String(); !strings.Contains(out, "monitor_loads_proven_total 1") {
		t.Errorf("decoded certified image not counted as a proven load:\n%s", out)
	}
}

// TestTamperedImageLoadsGuarded: corrupt the certificate and the same
// image must still load — but guarded, with the tamper visible in the
// guarded-fallback counter.
func TestTamperedImageLoadsGuarded(t *testing.T) {
	q := imageRoundTrip(t)
	q.Cert.MaxSteps++ // stale claim

	cs, err := CompileSpec(proofCarrySpec)
	if err != nil {
		t.Fatal(err)
	}
	fromImage := *cs[0]
	q.Name = "decoded-tampered"
	fromImage.Program = q
	fromImage.Name = q.Name

	sys := NewSystem()
	sink := sys.AttachTelemetry(64)
	if _, err := sys.Runtime.Load(&fromImage, Options{}); err != nil {
		t.Fatal(err)
	}
	if q.Meta.TrapFree {
		t.Fatal("tampered certificate restored the proven path")
	}

	m := sys.Runtime.Monitor("decoded-tampered")
	sys.Store.Save("err_rate", 30)
	sys.Store.Save("req_rate", 100)
	if held := m.Evaluate(0); held {
		t.Error("guarded fallback must still evaluate the rule correctly")
	}

	var sb strings.Builder
	if err := sink.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	if out := sb.String(); !strings.Contains(out, "monitor_loads_guarded_total 1") {
		t.Errorf("tampered image not counted as a guarded load:\n%s", out)
	}
}
