package guardrails

import (
	"strings"
	"testing"
)

const demoSpec = `
guardrail low-false-submit {
    trigger: { TIMER(start_time, 1e9) },
    rule: { LOAD(false_submit_rate) <= 0.05 },
    action: { SAVE(ml_enabled, false) }
}`

func TestSystemEndToEnd(t *testing.T) {
	sys := NewSystem()
	sys.Store.Save("ml_enabled", 1)
	sys.Store.Save("false_submit_rate", 0.01)
	mons, err := sys.LoadGuardrails(demoSpec, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(mons) != 1 || mons[0].Name() != "low-false-submit" {
		t.Fatalf("monitors = %v", mons)
	}
	sys.Kernel.RunUntil(3 * Second)
	if sys.Store.Load("ml_enabled") != 1 {
		t.Error("guardrail acted while healthy")
	}
	sys.Store.Save("false_submit_rate", 0.2)
	sys.Kernel.RunUntil(5 * Second)
	if sys.Store.Load("ml_enabled") != 0 {
		t.Error("guardrail did not act")
	}
	s := mons[0].Stats()
	if s.Evals == 0 || s.Violations == 0 {
		t.Errorf("stats = %+v", s)
	}
}

func TestParseSpecPublicAPI(t *testing.T) {
	f, err := ParseSpec(demoSpec)
	if err != nil {
		t.Fatal(err)
	}
	if len(f.Guardrails) != 1 {
		t.Fatal("wrong guardrail count")
	}
	if _, err := ParseSpec("guardrail g { rule: { 5 } }"); err == nil {
		t.Error("invalid spec accepted")
	}
}

func TestCompileSpecPublicAPI(t *testing.T) {
	cs, err := CompileSpec(demoSpec)
	if err != nil {
		t.Fatal(err)
	}
	if len(cs) != 1 {
		t.Fatal("wrong compiled count")
	}
	if err := Verify(cs[0].Program); err != nil {
		t.Errorf("verified program rejected: %v", err)
	}
	asm := cs[0].Program.String()
	if !strings.Contains(asm, "false_submit_rate") {
		t.Errorf("disassembly missing symbol:\n%s", asm)
	}
}

func TestRuntimeActionComponentsExposed(t *testing.T) {
	sys := NewSystem()
	if sys.Runtime.Log == nil || sys.Runtime.Policies == nil ||
		sys.Runtime.Retrainer == nil || sys.Runtime.Deprioritizer == nil {
		t.Error("action components not wired")
	}
}

// TestFaultInjectionPublicAPI is the README's fault-injection example:
// a seeded plan trips the breaker, fail-closed forces the safe config,
// the cooldown re-arms the monitor, and the audit sees every fault.
func TestFaultInjectionPublicAPI(t *testing.T) {
	sys := NewSystem()
	sys.Store.Save("ml_enabled", 1)
	sys.Store.Save("false_submit_rate", 0.01)
	mons, err := sys.LoadGuardrails(demoSpec, Options{
		OnFault:          FailClosed,
		BreakerThreshold: 3,
		BreakerWindow:    10 * Second,
		Cooldown:         3 * Second,
		RetryMax:         2,
	})
	if err != nil {
		t.Fatal(err)
	}
	mon := mons[0]

	plan := &FaultPlan{Seed: 42, Rules: []FaultRule{
		{Kind: FaultEvalTrap, Guardrail: "low-false-submit",
			From: 5 * Second, Until: 9 * Second},
	}}
	inj := sys.InjectFaults(plan)

	// The trap burst at 5..8s trips the 3-fault breaker.
	sys.Kernel.RunUntil(8 * Second)
	if mon.State() != StateQuarantined {
		t.Fatalf("state = %v, want quarantined", mon.State())
	}
	// FailClosed forced the guardrail's own action: model disabled.
	if sys.Store.Load("ml_enabled") != 0 {
		t.Error("fail-closed quarantine did not force the safe config")
	}
	if got := inj.Count(FaultEvalTrap); got != 3 {
		t.Errorf("delivered traps = %d, want 3 (breaker stops evaluation)", got)
	}

	// The 3s cooldown re-arms it; the injection window is over.
	sys.Kernel.RunUntil(15 * Second)
	if mon.State() != StateActive {
		t.Errorf("state = %v after cooldown, want active", mon.State())
	}
	st := mon.Stats()
	if st.Traps != 3 || st.Quarantines != 1 || st.Rearms != 1 {
		t.Errorf("stats = %+v", st)
	}
	if sys.Runtime.DeadLetter == nil {
		t.Fatal("dead-letter queue not wired")
	}
}
