// Package guardrails is an open-source implementation of "How I learned
// to stop worrying and love learned OS policies" (HotOS '25): a
// framework that lets kernel developers declaratively specify
// system-level properties over learned OS policies and corrective
// actions to take when a property is violated, and compiles those
// guardrails into verified monitors that run inside the kernel.
//
// # The abstraction
//
// A guardrail is a property (triggers saying when to check + rules
// saying what must hold) paired with one or more actions (Listing 1 of
// the paper):
//
//	guardrail low-false-submit {
//	    trigger: {
//	        TIMER(start_time, 1e9) // Periodically check every 1s.
//	    },
//	    rule: {
//	        LOAD(false_submit_rate) <= 0.05
//	    },
//	    action: {
//	        SAVE(ml_enabled, false)
//	    }
//	}
//
// Rules are numeric predicates over a global feature store accessed
// with LOAD(key); subsystems and learned policies publish their signals
// with SAVE(key, value). Actions cover the paper's taxonomy: REPORT
// (log context), REPLACE (swap a misbehaving policy for a fallback),
// RETRAIN (queue rate-limited retraining), DEPRIORITIZE (demote or kill
// a task group), plus SAVE for control knobs.
//
// # The pipeline
//
// Specification text is parsed and checked (ParseSpec), compiled to a
// register bytecode program (CompileSpec), statically verified for
// in-kernel safety — loop freedom, bounded length, initialized
// registers, bounds-checked cell accesses (Verify) — and loaded into a
// Runtime that binds TIMER triggers to kernel timers and FUNCTION
// triggers to kprobe-style hook sites.
//
// # Quick start
//
//	sys := guardrails.NewSystem()
//	sys.Store.Save("false_submit_rate", 0.01)
//	mons, err := sys.LoadGuardrails(spec, guardrails.Options{})
//	...
//	sys.Kernel.RunUntil(10 * guardrails.Second) // simulated kernel
//
// This repository ships a deterministic simulated kernel plus substrate
// simulators (flash storage with a LinnOS-style latency predictor, a CPU
// scheduler, tiered memory, cache replacement, congestion control) that
// reproduce the paper's Figure 2 and instantiate every row of its
// property/action taxonomy; see DESIGN.md and EXPERIMENTS.md.
package guardrails

import (
	"guardrails/internal/actions"
	"guardrails/internal/compile"
	"guardrails/internal/faults"
	"guardrails/internal/featurestore"
	"guardrails/internal/kernel"
	"guardrails/internal/monitor"
	"guardrails/internal/provenance"
	"guardrails/internal/rollout"
	"guardrails/internal/spec"
	"guardrails/internal/spec/interfere"
	"guardrails/internal/spec/modelcheck"
	"guardrails/internal/telemetry"
	"guardrails/internal/vm"
)

// Re-exported core types. The type aliases make the internal
// implementations part of the public API surface.
type (
	// Kernel is the deterministic discrete-event simulated kernel that
	// hosts hook points, timers, and tasks.
	Kernel = kernel.Kernel
	// Time is simulated time in nanoseconds.
	Time = kernel.Time
	// Store is the global feature store (SAVE/LOAD surface, §4.3).
	Store = featurestore.Store
	// Runtime hosts loaded guardrail monitors and the action machinery.
	Runtime = monitor.Runtime
	// Monitor is one loaded guardrail.
	Monitor = monitor.Monitor
	// Options tune monitor loading (hysteresis, dependency triggers,
	// result publication).
	Options = monitor.Options
	// MonitorStats summarizes a monitor's activity.
	MonitorStats = monitor.Stats
	// Guardrail is a parsed guardrail specification.
	Guardrail = spec.Guardrail
	// File is a parsed specification source.
	File = spec.File
	// Compiled is a guardrail lowered to a verified monitor program.
	Compiled = compile.Compiled
	// Program is a monitor VM program.
	Program = vm.Program
	// Violation is one recorded property violation (REPORT output).
	Violation = actions.Violation
	// Recorder is the feature-store flight recorder whose snapshot is
	// attached to violations (Options.Recorder).
	Recorder = featurestore.Recorder
	// Write is one recorded feature-store write.
	Write = featurestore.Write
	// ReportLog is the bounded violation log.
	ReportLog = actions.ReportLog
	// PolicyRegistry backs the REPLACE action.
	PolicyRegistry = actions.Registry
	// Retrainer backs the RETRAIN action.
	Retrainer = actions.Retrainer
	// Deprioritizer backs the DEPRIORITIZE action.
	Deprioritizer = actions.Deprioritizer
	// MonitorState is a monitor's position on the degradation ladder
	// (active → shadow → quarantined).
	MonitorState = monitor.State
	// FaultPolicy selects a guardrail's failure semantics when its
	// circuit breaker quarantines it (Options.OnFault).
	FaultPolicy = monitor.FaultPolicy
	// FaultInjector intercepts monitor operations for fault injection;
	// FaultInjectorImpl (faults.Injector) is the standard implementation.
	FaultInjector = monitor.FaultInjector
	// FailedAction is one permanently failed action dispatch.
	FailedAction = actions.FailedAction
	// DeadLetter is the bounded ring of actions that exhausted their
	// retries (Runtime.DeadLetter).
	DeadLetter = actions.DeadLetter
	// FaultKind classifies an injectable fault.
	FaultKind = faults.Kind
	// FaultRule schedules one class of injected faults.
	FaultRule = faults.Rule
	// FaultPlan is a seeded set of fault rules armed against a system.
	FaultPlan = faults.Plan
	// FaultInjectorImpl is the deterministic seeded injector that
	// implements FaultInjector.
	FaultInjectorImpl = faults.Injector
	// Injection is one delivered fault, for auditing.
	Injection = faults.Injection
	// Telemetry is the kernel-wide observability plane: counters,
	// latency histograms, and a flight-recorder event ring. A nil
	// *Telemetry is the disabled plane (zero overhead); attach one with
	// System.AttachTelemetry.
	Telemetry = telemetry.Sink
	// TelemetrySnapshot is a point-in-time, diffable export of a
	// telemetry sink.
	TelemetrySnapshot = telemetry.Snapshot
	// TelemetryEvent is one flight-recorder event.
	TelemetryEvent = telemetry.Event
	// FlightRecorder is the bounded event ring inside a telemetry sink.
	FlightRecorder = telemetry.Flight
	// Provenance is the decision-record plane: a bounded ring of
	// per-fire "why" records (feature values LOADed, VM branch path,
	// actions emitted or suppressed, rollout gate verdicts). A nil
	// *Provenance is the disabled plane; attach one with
	// System.AttachProvenance.
	Provenance = provenance.Recorder
	// ProvenanceRecord is one decision record.
	ProvenanceRecord = provenance.Record
	// ProvenanceRecordJSON is the wire form served by /why and decoded
	// by grailctl explain.
	ProvenanceRecordJSON = provenance.RecordJSON
	// OpsConfig wires the live ops HTTP endpoint (System.ServeOps).
	OpsConfig = telemetry.OpsConfig
	// OpsServer is a live ops endpoint bound to a listener.
	OpsServer = telemetry.OpsServer
	// Deployment is the whole-deployment interference analyzer's input:
	// the compiled guardrails that will run together plus declared
	// feature ranges and hook budgets.
	Deployment = interfere.Deployment
	// DeploymentReport is the analyzer's output: GI-coded diagnostics
	// plus the per-hook-site worst-case load table.
	DeploymentReport = interfere.Report
	// DeploymentDiagnostic is one deployment-level finding (GI001…).
	DeploymentDiagnostic = interfere.Diagnostic
	// PropertyDecl is a declared temporal property: "assert always
	// <pred>" or "assert eventually <pred> within K".
	PropertyDecl = spec.PropertyDecl
	// TemporalConfig parameterizes the bounded temporal model checker
	// (properties, exploration bounds, witness synthesis).
	TemporalConfig = modelcheck.Config
	// TemporalReport is the model checker's output: per-property
	// PROVED/REFUTED/INCONCLUSIVE verdicts with certificates, plus
	// GM-coded diagnostics carrying multi-step abstract traces.
	TemporalReport = modelcheck.Report
	// TemporalPropertyResult is one declared property's verdict.
	TemporalPropertyResult = modelcheck.PropertyResult
	// DeployConfig parameterizes System.LoadDeployment.
	DeployConfig = monitor.DeployConfig
	// DeployResult reports what LoadDeployment loaded, shadowed,
	// disabled, or skipped.
	DeployResult = monitor.DeployResult
	// DeployError is LoadDeployment's refusal under DeployEnforce.
	DeployError = monitor.DeployError
	// DuplicateLoadError is the GI007-coded duplicate-load refusal.
	DuplicateLoadError = monitor.DuplicateLoadError
	// FeatureDecl is a declared feature range (feature k range(lo, hi)).
	FeatureDecl = spec.FeatureDecl
	// AdmissionError is the kernel's aggregate-budget refusal.
	AdmissionError = kernel.AdmissionError
	// HookLoad is one monitor's intended hook attachment with its
	// certified cost, the kernel admission test's input.
	HookLoad = kernel.HookLoad
	// RolloutController stages candidate deployments through
	// shadow → canary → fleet-wide with telemetry-gated promotion,
	// auto-rollback to the last good generation, and breakglass
	// quarantine (see internal/rollout and cmd/grailctl).
	RolloutController = rollout.Controller
	// RolloutConfig parameterizes one staged rollout (windows, canary
	// share, gates, admission retry policy).
	RolloutConfig = rollout.Config
	// RolloutGates are the telemetry thresholds a candidate must clear
	// at each stage boundary.
	RolloutGates = rollout.Gates
	// RolloutPhase is the rollout state machine's position.
	RolloutPhase = rollout.Phase
	// RolloutRecord is one timestamped rollout history event.
	RolloutRecord = rollout.Record
	// RolloutRefusedError is Begin's synchronous refusal when the scoped
	// interference re-analysis finds warnings in the changed slice.
	RolloutRefusedError = rollout.RefusedError
	// DeploymentDiff is the semantic diff between two compiled
	// generations (added/removed/retuned/modified guardrails).
	DeploymentDiff = rollout.Diff
	// DeploymentChange is one guardrail's classified change.
	DeploymentChange = rollout.Change
)

// Deployment analysis policies (DeployConfig.Policy).
const (
	// DeployEnforce refuses the whole deployment on any interference
	// warning.
	DeployEnforce = monitor.DeployEnforce
	// DeployWarn loads the deployment but quarantines implicated
	// monitors (shadow mode, or disabled for over-budget hooks).
	DeployWarn = monitor.DeployWarn
)

// Rollout state-machine phases (RolloutController.Phase).
const (
	RolloutIdle       = rollout.PhaseIdle
	RolloutAdmitting  = rollout.PhaseAdmitting
	RolloutShadow     = rollout.PhaseShadow
	RolloutCanary     = rollout.PhaseCanary
	RolloutPromoted   = rollout.PhasePromoted
	RolloutRolledBack = rollout.PhaseRolledBack
	RolloutFailed     = rollout.PhaseFailed
)

// Simulated-time units.
const (
	Microsecond = kernel.Microsecond
	Millisecond = kernel.Millisecond
	Second      = kernel.Second
)

// Monitor degradation-ladder states.
const (
	StateActive      = monitor.StateActive
	StateShadow      = monitor.StateShadow
	StateQuarantined = monitor.StateQuarantined
)

// Fault policies for quarantined guardrails: FailOpen leaves the
// guarded system running unguarded; FailClosed forces the safe
// configuration (Options.Fallback, or the guardrail's own actions)
// before standing down.
const (
	FailOpen   = monitor.FailOpen
	FailClosed = monitor.FailClosed
)

// Injectable fault kinds (see internal/faults and DESIGN.md's "Fault
// model & degradation ladder").
const (
	FaultEvalTrap    = faults.EvalTrap
	FaultHelperFail  = faults.HelperFail
	FaultLoadNaN     = faults.LoadNaN
	FaultLoadStale   = faults.LoadStale
	FaultActionFail  = faults.ActionFail
	FaultReplicaFail = faults.ReplicaFail
	FaultReplicaHeal = faults.ReplicaHeal
)

// NewFaultInjector returns a deterministic seeded fault injector whose
// time windows are evaluated against the system's simulated clock.
// Install it with Runtime.SetFaultInjector.
func (s *System) NewFaultInjector(seed int64) *FaultInjectorImpl {
	return faults.NewInjector(seed, s.Kernel.Now)
}

// InjectFaults arms a fault plan against the system: monitor-facing
// rules are served by the returned injector (installed on the
// runtime), and replica fail/heal rules are scheduled on the kernel
// clock against the given arrays.
func (s *System) InjectFaults(p *FaultPlan, arrays ...faults.Target) *FaultInjectorImpl {
	inj := p.Arm(s.Kernel, arrays...)
	s.Runtime.SetFaultInjector(inj)
	return inj
}

// StandardChaos is the chaos experiment's standard fault plan: an
// eval-trap burst, a NaN window on the false-submit signal, a retrain
// outage, and a replica loss/heal cycle.
func StandardChaos(seed int64) *FaultPlan {
	return faults.StandardChaos(seed)
}

// System bundles a kernel, a feature store, and a guardrail runtime —
// everything needed to run guarded learned policies.
type System struct {
	Kernel  *Kernel
	Store   *Store
	Runtime *Runtime
}

// NewSystem returns a fresh simulated system with an empty feature
// store and no loaded guardrails.
func NewSystem() *System {
	k := kernel.New()
	st := featurestore.New()
	return &System{Kernel: k, Store: st, Runtime: monitor.New(k, st)}
}

// LoadGuardrails parses, checks, compiles, verifies, and arms every
// guardrail in src.
func (s *System) LoadGuardrails(src string, opts Options) ([]*Monitor, error) {
	return s.Runtime.LoadSource(src, opts)
}

// AnalyzeDeployment runs the whole-deployment interference analysis on
// specification text without loading anything: cross-guardrail action
// conflicts, SAVE→LOAD feedback cycles, aggregate hook budgets, and
// dead guardrails, reported as stable GI-coded diagnostics. Declared
// feature ranges in src refine the analysis. This is the library
// surface behind cmd/grailcheck and grailc -interfere.
func AnalyzeDeployment(src string, hookBudget int, hookBudgets map[string]int) (*DeploymentReport, error) {
	f, err := ParseSpec(src)
	if err != nil {
		return nil, err
	}
	cs, err := compile.File(f)
	if err != nil {
		return nil, err
	}
	return interfere.Analyze(&Deployment{
		Monitors:    cs,
		Features:    f.Features,
		HookBudget:  hookBudget,
		HookBudgets: hookBudgets,
	}), nil
}

// ModelCheckDeployment parses and compiles src, then model-checks the
// deployment's declared "assert" property blocks plus any extra
// manifest-style properties ("always LOAD(k) <= 1", "eventually
// LOAD(k) == 1 within 4") over one timer hyperperiod of abstract
// execution. This is the library surface behind grailcheck -check and
// grailc -check.
func ModelCheckDeployment(src string, extra ...string) (*TemporalReport, error) {
	f, err := ParseSpec(src)
	if err != nil {
		return nil, err
	}
	cs, err := compile.File(f)
	if err != nil {
		return nil, err
	}
	props := append([]*PropertyDecl{}, f.Properties...)
	for _, s := range extra {
		p, err := spec.ParseProperty(s)
		if err != nil {
			return nil, err
		}
		props = append(props, p)
	}
	return modelcheck.Check(&Deployment{
		Monitors: cs,
		Features: f.Features,
	}, TemporalConfig{Properties: props, Witness: true}), nil
}

// LoadDeployment parses, compiles, and loads every guardrail in src as
// one deployment: the interference analysis and the kernel's
// aggregate-budget admission test run before anything arms, so a
// conflicting deployment is refused atomically (DeployEnforce) or
// loaded with the implicated monitors quarantined (DeployWarn).
// Declared feature ranges in src feed the analysis automatically.
func (s *System) LoadDeployment(src string, cfg DeployConfig) (*DeployResult, error) {
	f, err := ParseSpec(src)
	if err != nil {
		return nil, err
	}
	cs, err := compile.File(f)
	if err != nil {
		return nil, err
	}
	cfg.Features = append(cfg.Features, f.Features...)
	return s.Runtime.LoadDeployment(cs, cfg)
}

// AttachTelemetry builds a telemetry sink whose flight recorder retains
// eventCap events, binds its clock to the system's simulated kernel,
// and wires it into the kernel's hook dispatch, the monitor runtime,
// and the feature store. Storage devices and arrays are wired
// separately (Device.SetTelemetry / Array.SetTelemetry) since the
// System does not own them. Returns the sink for export
// (WriteJSON / WritePrometheus / WriteTrace).
func (s *System) AttachTelemetry(eventCap int) *Telemetry {
	sink := telemetry.New(func() telemetry.Time { return int64(s.Kernel.Now()) }, eventCap)
	s.Kernel.SetTelemetry(sink)
	s.Store.SetTelemetry(sink)
	s.Runtime.SetTelemetry(sink)
	return sink
}

// Telemetry returns the sink attached to the system's runtime, or nil.
func (s *System) Telemetry() *Telemetry { return s.Runtime.Telemetry() }

// AttachProvenance builds a decision-record recorder retaining the
// last recordCap records, sampling 1 in healthyEvery healthy
// evaluations per monitor (violations, faults, rollout gates, and
// rollbacks are always recorded; healthyEvery <= 0 drops all healthy
// fires), and attaches it to the runtime. Returns the recorder for
// export.
func (s *System) AttachProvenance(recordCap, healthyEvery int) *Provenance {
	rec := provenance.New(recordCap, healthyEvery)
	s.Runtime.SetProvenance(rec)
	return rec
}

// Provenance returns the attached decision recorder, or nil (the
// disabled plane).
func (s *System) Provenance() *Provenance { return s.Runtime.Provenance() }

// ServeOps starts the live ops HTTP endpoint on addr (":9090",
// "127.0.0.1:0", ...): /metrics (Prometheus), /snapshot.json,
// /flight, /why?monitor=<name>[&n=N] (decision provenance), and
// /healthz. It serves whatever telemetry sink and provenance recorder
// are attached at request time.
func (s *System) ServeOps(addr string) (*OpsServer, error) {
	return telemetry.ServeOps(addr, OpsConfig{
		Sink: func() *telemetry.Sink { return s.Telemetry() },
		Why: func(name string, n int) (any, error) {
			return provenance.Views(s.Provenance().ForMonitor(name, n)), nil
		},
	})
}

// NewRolloutController returns a fleet rollout controller over the
// system's runtime: Begin stages a candidate deployment through
// shadow → canary → fleet-wide on the simulated clock, gating each
// promotion on telemetry deltas and rolling back to the incumbent
// generation on regression; Breakglass quarantines a named guardrail
// fleet-wide in one call.
func (s *System) NewRolloutController() *RolloutController {
	return rollout.NewController(s.Runtime)
}

// CompareDeployments computes the semantic diff between two compiled
// deployment generations: which guardrails were added, removed, retuned
// (same structure, different thresholds), or structurally modified,
// with per-threshold deltas in the change details.
func CompareDeployments(old, new []*Compiled) *DeploymentDiff {
	return rollout.Compare(old, new)
}

// ParseSpec parses and semantically checks guardrail specification text.
func ParseSpec(src string) (*File, error) {
	f, err := spec.Parse(src)
	if err != nil {
		return nil, err
	}
	if err := spec.Check(f); err != nil {
		return nil, err
	}
	return f, nil
}

// CompileSpec parses, checks, compiles, and verifies guardrail
// specification text, returning one monitor image per guardrail.
func CompileSpec(src string) ([]*Compiled, error) {
	return compile.Source(src)
}

// Verify statically checks a monitor program for in-kernel safety; it
// is run automatically by CompileSpec and at load time. On success the
// program's Meta carries the verifier proof (certified worst-case step
// bound, trap-freedom, proven-nonzero divisors) and the interpreter
// runs it without per-step runtime guards.
func Verify(p *Program) error {
	return vm.Verify(p, vm.NumBuiltinHelpers)
}

// VerifySteps verifies p and additionally rejects it when the certified
// worst-case step count exceeds maxSteps — a load-time admission test
// for hook sites with a hard per-evaluation budget.
func VerifySteps(p *Program, maxSteps int) error {
	return vm.VerifySteps(p, vm.NumBuiltinHelpers, maxSteps)
}
