module guardrails

go 1.22
